//! # xqr — streaming XML query processing
//!
//! A from-scratch reproduction of the architecture presented in the ICDE
//! 2004 seminar *XML Query Processing* (the XQRL/BEA streaming XQuery
//! engine): the XQuery data model, a TokenStream/TokenIterator execution
//! substrate, a rewrite-rule compiler, a push-based lazy evaluator, and
//! the structural/holistic twig join algorithms from the talk's reading
//! list.
//!
//! Start with [`Engine`]:
//!
//! ```
//! use xqr::Engine;
//! let engine = Engine::new();
//! let out = engine.query_xml("<a><b>hi</b></a>", "string(//b)").unwrap();
//! assert_eq!(out, "hi");
//! ```
//!
//! The layer crates are re-exported for direct use:
//! [`xqr_xdm`] (data model), [`xqr_xmlparse`] (XML parser),
//! [`xqr_tokenstream`] (the token substrate), [`xqr_store`] (labeled
//! node store), [`xqr_joins`] (structural/twig joins), [`xqr_xqparser`]
//! (XQuery front-end), [`xqr_compiler`], [`xqr_runtime`],
//! [`xqr_xmlgen`] (workload generators), [`xqr_parallel`] (the
//! morsel-driven parallel join executor and worker pool), and [`xqr_service`] (the
//! concurrent query service: plan cache, document catalog, admission
//! control), [`xqr_subscribe`] (standing continuous queries over
//! document streams), and [`xqr_ingest`] (chunked push-based ingestion:
//! resumable lexing over a bounded, backpressured token channel).

pub use xqr_core::*;

pub use xqr_compiler;
pub use xqr_index;
pub use xqr_ingest;
pub use xqr_joins;
pub use xqr_parallel;
pub use xqr_pressure;
pub use xqr_runtime;
pub use xqr_service;
pub use xqr_store;
pub use xqr_subscribe;
pub use xqr_tokenstream;
pub use xqr_xdm;
pub use xqr_xmlgen;
pub use xqr_xmlparse;
pub use xqr_xqparser;
