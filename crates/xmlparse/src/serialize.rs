//! Event-driven XML serializer ("(DM4) Serialize" in the talk's processing
//! picture). Consumes [`XmlEvent`]s — from the reader, the TokenStream, or
//! query results — and produces well-formed markup with correct escaping.

use crate::event::{NamespaceDecl, XmlEvent};
use xqr_xdm::{Error, QName, Result};

/// Escape character data content.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Escape attribute values (double-quote delimited).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\t' => out.push_str("&#9;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Serialization options.
#[derive(Debug, Clone, Default)]
pub struct WriterOptions {
    /// Pretty-print with this indent string per depth level; `None`
    /// writes everything on one line (lossless).
    pub indent: Option<String>,
    /// Emit an XML declaration first.
    pub declaration: bool,
}

/// Streaming writer: feed events in document order; read the buffer at
/// any point (the streaming benches measure time-to-first-byte this way).
pub struct XmlWriter {
    out: String,
    opts: WriterOptions,
    depth: usize,
    /// Start tag is open, awaiting `>`; lets `<a/>` collapse.
    tag_open: bool,
    /// The element just opened had no children yet (drives indenting and
    /// empty-tag collapsing).
    last_was_start: bool,
    /// Pending element name stack for end tags.
    stack: Vec<QName>,
    /// True once any non-whitespace content was written into the current
    /// element, which suppresses pretty-printing inside mixed content.
    mixed: Vec<bool>,
}

impl XmlWriter {
    pub fn new(opts: WriterOptions) -> Self {
        let mut out = String::new();
        if opts.declaration {
            out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
            if opts.indent.is_some() {
                out.push('\n');
            }
        }
        XmlWriter {
            out,
            opts,
            depth: 0,
            tag_open: false,
            last_was_start: false,
            stack: Vec::new(),
            mixed: vec![false],
        }
    }

    pub fn into_string(self) -> String {
        self.out
    }

    pub fn as_str(&self) -> &str {
        &self.out
    }

    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn close_tag_if_open(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn newline_indent(&mut self) {
        if let Some(indent) = &self.opts.indent {
            if !self.out.is_empty() && !self.mixed.last().copied().unwrap_or(false) {
                self.out.push('\n');
                for _ in 0..self.depth {
                    self.out.push_str(indent);
                }
            }
        }
    }

    /// Write one event. Events must arrive balanced and in order.
    pub fn write(&mut self, event: &XmlEvent) -> Result<()> {
        match event {
            XmlEvent::StartDocument | XmlEvent::EndDocument => {}
            XmlEvent::StartElement {
                name,
                attributes,
                namespaces,
                ..
            } => {
                self.close_tag_if_open();
                self.newline_indent();
                self.out.push('<');
                self.out.push_str(&name.lexical());
                for d in namespaces {
                    self.write_ns_decl(d);
                }
                for a in attributes {
                    self.out.push(' ');
                    self.out.push_str(&a.name.lexical());
                    self.out.push_str("=\"");
                    escape_attr(&a.value, &mut self.out);
                    self.out.push('"');
                }
                self.tag_open = true;
                self.last_was_start = true;
                self.depth += 1;
                self.stack.push(name.clone());
                self.mixed.push(false);
            }
            XmlEvent::EndElement { .. } => {
                let name = self
                    .stack
                    .pop()
                    .ok_or_else(|| Error::internal("unbalanced EndElement in serializer"))?;
                self.depth -= 1;
                let was_mixed = self.mixed.pop().unwrap_or(false);
                if self.tag_open {
                    self.out.push_str("/>");
                    self.tag_open = false;
                } else {
                    if !self.last_was_start && !was_mixed {
                        self.newline_indent();
                    }
                    self.out.push_str("</");
                    self.out.push_str(&name.lexical());
                    self.out.push('>');
                }
                self.last_was_start = false;
            }
            XmlEvent::Text(t) => {
                self.close_tag_if_open();
                if let Some(m) = self.mixed.last_mut() {
                    *m = true;
                }
                escape_text(t, &mut self.out);
                self.last_was_start = false;
            }
            XmlEvent::Comment(c) => {
                self.close_tag_if_open();
                self.newline_indent();
                self.out.push_str("<!--");
                self.out.push_str(c);
                self.out.push_str("-->");
                self.last_was_start = false;
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                self.close_tag_if_open();
                self.newline_indent();
                self.out.push_str("<?");
                self.out.push_str(target);
                if !data.is_empty() {
                    self.out.push(' ');
                    self.out.push_str(data);
                }
                self.out.push_str("?>");
                self.last_was_start = false;
            }
        }
        Ok(())
    }

    fn write_ns_decl(&mut self, d: &NamespaceDecl) {
        self.out.push(' ');
        match &d.prefix {
            None => self.out.push_str("xmlns"),
            Some(p) => {
                self.out.push_str("xmlns:");
                self.out.push_str(p);
            }
        }
        self.out.push_str("=\"");
        escape_attr(&d.uri, &mut self.out);
        self.out.push('"');
    }
}

/// Serialize a whole event stream to a string.
pub fn serialize_events<'a>(
    events: impl IntoIterator<Item = &'a XmlEvent>,
    opts: WriterOptions,
) -> Result<String> {
    let mut w = XmlWriter::new(opts);
    for ev in events {
        w.write(ev)?;
    }
    Ok(w.into_string())
}

/// Parse and re-serialize: the canonicalization used by roundtrip tests.
pub fn reserialize(input: &str) -> Result<String> {
    let events = crate::reader::parse_events(input)?;
    serialize_events(&events, WriterOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_events;

    #[test]
    fn roundtrip_simple() {
        let doc = r#"<a b="1"><c>text</c><d/></a>"#;
        assert_eq!(reserialize(doc).unwrap(), doc);
    }

    #[test]
    fn escaping_in_text_and_attrs() {
        let events = parse_events("<a b=\"&quot;&lt;\">x &amp; y &lt; z</a>").unwrap();
        let out = serialize_events(&events, WriterOptions::default()).unwrap();
        assert_eq!(out, "<a b=\"&quot;&lt;\">x &amp; y &lt; z</a>");
        // and it parses back to the same content
        assert_eq!(reserialize(&out).unwrap(), out);
    }

    #[test]
    fn namespace_decls_roundtrip() {
        let doc = r#"<b:a xmlns:b="urn:b" b:x="1"><b:c/></b:a>"#;
        assert_eq!(reserialize(doc).unwrap(), doc);
    }

    #[test]
    fn empty_element_collapses() {
        assert_eq!(reserialize("<a></a>").unwrap(), "<a/>");
        assert_eq!(reserialize("<a> </a>").unwrap(), "<a> </a>");
    }

    #[test]
    fn indentation() {
        let events = parse_events("<a><b><c/></b><d>t</d></a>").unwrap();
        let out = serialize_events(
            &events,
            WriterOptions {
                indent: Some("  ".into()),
                declaration: false,
            },
        )
        .unwrap();
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n  <d>t</d>\n</a>");
    }

    #[test]
    fn declaration_emitted() {
        let events = parse_events("<a/>").unwrap();
        let out = serialize_events(
            &events,
            WriterOptions {
                indent: None,
                declaration: true,
            },
        )
        .unwrap();
        assert!(out.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn comment_and_pi_roundtrip() {
        let doc = "<a><!-- note --><?t d?></a>";
        assert_eq!(reserialize(doc).unwrap(), doc);
    }

    #[test]
    fn cdata_becomes_escaped_text() {
        assert_eq!(
            reserialize("<a><![CDATA[<x>&]]></a>").unwrap(),
            "<a>&lt;x&gt;&amp;</a>"
        );
    }

    #[test]
    fn mixed_content_not_reindented() {
        let events = parse_events("<p>one <b>two</b> three</p>").unwrap();
        let out = serialize_events(
            &events,
            WriterOptions {
                indent: Some("  ".into()),
                declaration: false,
            },
        )
        .unwrap();
        assert_eq!(out, "<p>one <b>two</b> three</p>");
    }
}
