//! # xqr-xmlparse — XML 1.0 + Namespaces, from scratch
//!
//! A single-pass, namespace-resolving pull parser ([`XmlReader`]) and an
//! event-driven serializer ([`XmlWriter`]). This is the "(DM1) parse" /
//! "(DM4) serialize" pair of the talk's data-model life cycle; the
//! TokenStream crate builds the "(DM2) generate data model" step on top
//! of these events.
//!
//! Deliberately out of scope (per DESIGN.md): DTD entity definitions and
//! external subsets (skipped, never fetched), XML 1.1.

pub mod event;
pub mod reader;
pub mod serialize;

pub use event::{Attribute, NamespaceDecl, XmlEvent};
pub use reader::{
    is_name_char, is_name_start, parse_events, parse_events_chunked, XmlReader, XML_NS,
};
pub use serialize::{
    escape_attr, escape_text, reserialize, serialize_events, WriterOptions, XmlWriter,
};
