//! Parser events: the namespace-resolved pull interface.
//!
//! The reader yields one [`XmlEvent`] at a time; the TokenStream layer
//! maps these 1:1 onto data-model tokens. Events carry fully resolved
//! [`QName`]s — prefix lookup happens inside the reader against the
//! live namespace stack, so consumers never see raw prefixes.

use std::sync::Arc;
use xqr_xdm::QName;

/// One namespace declaration appearing on a start tag:
/// `(prefix, uri)`; `prefix = None` is the default namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceDecl {
    pub prefix: Option<Arc<str>>,
    pub uri: Arc<str>,
}

/// A resolved attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: QName,
    pub value: Arc<str>,
}

/// A pull-parser event. `StartDocument`/`EndDocument` bracket the stream
/// even for fragments, matching the data model's document node.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlEvent {
    StartDocument,
    EndDocument,
    StartElement {
        name: QName,
        attributes: Vec<Attribute>,
        namespaces: Vec<NamespaceDecl>,
        /// True for `<a/>`; the reader still emits a matching
        /// `EndElement` so consumers see balanced events.
        empty: bool,
    },
    EndElement {
        name: QName,
    },
    Text(Arc<str>),
    Comment(Arc<str>),
    ProcessingInstruction {
        target: Arc<str>,
        data: Arc<str>,
    },
}

impl XmlEvent {
    pub fn is_start_element(&self) -> bool {
        matches!(self, XmlEvent::StartElement { .. })
    }

    pub fn is_end_element(&self) -> bool {
        matches!(self, XmlEvent::EndElement { .. })
    }
}
