//! A hand-written, namespace-aware XML 1.0 pull parser.
//!
//! Single pass over a `&str`, no lookahead buffer beyond one byte, no
//! allocation for structure — strings are allocated only for the content
//! that reaches the consumer. DTDs are skipped (internal subsets are
//! tolerated but not interpreted; external entities are never fetched).

use crate::event::{Attribute, NamespaceDecl, XmlEvent};
use std::sync::Arc;
use xqr_xdm::{Error, ErrorCode, QName, QueryGuard, Result};

pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// Hard cap on element nesting regardless of any [`QueryGuard`] limit:
/// downstream consumers (store build, serializer) recurse over element
/// structure, so unbounded depth is a stack-overflow vector. Deep enough
/// for any sane document, far below any thread's stack budget.
pub const DEFAULT_MAX_DEPTH: usize = 10_000;

/// Pull parser over an in-memory document or fragment.
pub struct XmlReader<'a> {
    input: &'a [u8],
    src: &'a str,
    pos: usize,
    /// Stack of open element names (lexical, for end-tag matching) plus
    /// the number of namespace bindings each frame pushed.
    open: Vec<(QName, usize)>,
    /// Namespace bindings, innermost last: (prefix, uri). `None` prefix is
    /// the default namespace; an empty uri un-declares.
    ns: Vec<(Option<Arc<str>>, Arc<str>)>,
    started: bool,
    finished: bool,
    /// Pending EndElement to emit after an empty-element tag.
    pending_end: Option<QName>,
    seen_root: bool,
    /// Hard nesting cap; always enforced (see [`DEFAULT_MAX_DEPTH`]).
    max_depth: usize,
    /// Optional per-execution budget: nesting depth, document size.
    guard: Option<QueryGuard>,
}

impl<'a> XmlReader<'a> {
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            input: input.as_bytes(),
            src: input,
            pos: 0,
            open: Vec::new(),
            ns: Vec::new(),
            started: false,
            finished: false,
            pending_end: None,
            seen_root: false,
            max_depth: DEFAULT_MAX_DEPTH,
            guard: None,
        }
    }

    /// Attach a per-execution guard; the reader then also enforces the
    /// guard's XML depth and document-size limits.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Override the hard nesting cap (tests; embedders with odd inputs).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Current byte offset, for error reporting.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::syntax(msg.into()).at(self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Pull the next event. After `EndDocument`, keeps returning
    /// `EndDocument`.
    pub fn next_event(&mut self) -> Result<XmlEvent> {
        xqr_faults::faultpoint!("xml.read");
        if let Some(guard) = &self.guard {
            guard
                .check_document_bytes(self.pos as u64)
                .map_err(|e| e.at(self.pos))?;
        }
        if !self.started {
            self.started = true;
            self.skip_prolog()?;
            return Ok(XmlEvent::StartDocument);
        }
        if let Some(name) = self.pending_end.take() {
            self.pop_element();
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            return Ok(XmlEvent::EndDocument);
        }
        // Between-root-content handling: at top level, whitespace,
        // comments and PIs are allowed; anything else after the root
        // closed is an error.
        loop {
            if self.at_eof() {
                if !self.open.is_empty() {
                    return Err(self.err("unexpected end of input: unclosed elements"));
                }
                if !self.seen_root {
                    return Err(self.err("document has no root element"));
                }
                self.finished = true;
                return Ok(XmlEvent::EndDocument);
            }
            if self.open.is_empty() {
                // Only misc allowed at top level besides the single root.
                let save = self.pos;
                self.skip_ws();
                if self.at_eof() {
                    continue;
                }
                if self.peek() != Some(b'<') {
                    return Err(self.err("text content outside the root element"));
                }
                self.pos = if self.pos > save { self.pos } else { save };
            }
            match self.peek() {
                Some(b'<') => {
                    if self.eat("<!--") {
                        return self.read_comment();
                    }
                    if self.eat("<![CDATA[") {
                        return self.read_cdata();
                    }
                    if self.eat("<?") {
                        return self.read_pi();
                    }
                    if self.input.get(self.pos + 1) == Some(&b'/') {
                        self.pos += 2;
                        return self.read_end_tag();
                    }
                    if self.input.get(self.pos + 1) == Some(&b'!') {
                        return Err(self.err("unexpected markup declaration in content"));
                    }
                    self.pos += 1;
                    return self.read_start_tag();
                }
                Some(_) => return self.read_text(),
                None => continue,
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        // Optional XML declaration.
        if self.input[self.pos..].starts_with(b"<?xml")
            && matches!(
                self.input.get(self.pos + 5),
                Some(b' ' | b'\t' | b'\r' | b'\n' | b'?')
            )
        {
            let end = self
                .find("?>")
                .ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.pos = end + 2;
        }
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.input[self.pos..].starts_with(b"<!--") {
                self.pos += 4;
                let end = self
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.input[self.pos..].starts_with(b"<?") {
                let end = self.find("?>").ok_or_else(|| self.err("unterminated PI"))?;
                self.pos = end + 2;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<()> {
        self.pos += "<!DOCTYPE".len();
        let mut depth = 1usize;
        let mut in_internal = false;
        while let Some(b) = self.bump() {
            match b {
                b'[' => in_internal = true,
                b']' => in_internal = false,
                b'<' if in_internal => depth += 1,
                b'>' if !in_internal => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    fn find(&self, needle: &str) -> Option<usize> {
        self.src[self.pos..].find(needle).map(|i| self.pos + i)
    }

    /// Read a (possibly prefixed) name; `:` is accepted here and the
    /// prefix/local split is validated by `split_name`.
    fn read_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let mut chars = self.src[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            _ => return Err(self.err("expected a name")),
        }
        let mut end = self.src.len();
        for (i, c) in chars {
            if !(is_name_char(c) || c == ':') {
                end = start + i;
                break;
            }
        }
        self.pos = end;
        Ok(&self.src[start..end])
    }

    fn split_name(&self, name: &'a str) -> Result<(Option<&'a str>, &'a str)> {
        match name.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    Err(self.err(format!("invalid QName {name:?}")))
                } else {
                    Ok((Some(p), l))
                }
            }
            None => Ok((None, name)),
        }
    }

    fn resolve(&self, prefix: Option<&str>, local: &str, is_attr: bool) -> Result<QName> {
        match prefix {
            None => {
                if is_attr {
                    // Unprefixed attributes are in no namespace.
                    return Ok(QName::local(local));
                }
                // Default namespace for elements.
                for (p, uri) in self.ns.iter().rev() {
                    if p.is_none() {
                        if uri.is_empty() {
                            return Ok(QName::local(local));
                        }
                        return Ok(QName::ns(uri, local));
                    }
                }
                Ok(QName::local(local))
            }
            Some("xml") => Ok(QName::prefixed(XML_NS, "xml", local)),
            Some(p) => {
                for (bp, uri) in self.ns.iter().rev() {
                    if bp.as_deref() == Some(p) {
                        if uri.is_empty() {
                            return Err(Error::new(
                                ErrorCode::UnboundPrefix,
                                format!("prefix {p:?} has been undeclared"),
                            )
                            .at(self.pos));
                        }
                        return Ok(QName::prefixed(uri, p, local));
                    }
                }
                Err(
                    Error::new(ErrorCode::UnboundPrefix, format!("unbound prefix {p:?}"))
                        .at(self.pos),
                )
            }
        }
    }

    fn read_start_tag(&mut self) -> Result<XmlEvent> {
        let raw_name = self.read_name()?;
        let mut raw_attrs: Vec<(&'a str, String)> = Vec::new();
        let mut decls: Vec<NamespaceDecl> = Vec::new();
        loop {
            let ws_start = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return self.finish_start_tag(raw_name, raw_attrs, decls, false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return self.finish_start_tag(raw_name, raw_attrs, decls, true);
                }
                Some(_) => {
                    if self.pos == ws_start {
                        return Err(self.err("expected whitespace before attribute"));
                    }
                    if matches!(self.peek(), Some(b'>' | b'/')) {
                        continue;
                    }
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    // Namespace declarations are bindings, not attributes.
                    if attr_name == "xmlns" {
                        decls.push(NamespaceDecl {
                            prefix: None,
                            uri: Arc::from(value.as_str()),
                        });
                    } else if let Some(p) = attr_name.strip_prefix("xmlns:") {
                        if p.is_empty() {
                            return Err(self.err("empty namespace prefix"));
                        }
                        decls.push(NamespaceDecl {
                            prefix: Some(Arc::from(p)),
                            uri: Arc::from(value.as_str()),
                        });
                    } else {
                        raw_attrs.push((attr_name, value));
                    }
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn finish_start_tag(
        &mut self,
        raw_name: &'a str,
        raw_attrs: Vec<(&'a str, String)>,
        decls: Vec<NamespaceDecl>,
        empty: bool,
    ) -> Result<XmlEvent> {
        if self.open.is_empty() {
            if self.seen_root {
                return Err(self.err("multiple root elements"));
            }
            self.seen_root = true;
        }
        let depth = self.open.len() + 1;
        if depth > self.max_depth {
            return Err(Error::limit(format!(
                "XML nesting depth limit of {} exceeded",
                self.max_depth
            ))
            .at(self.pos));
        }
        if let Some(guard) = &self.guard {
            guard
                .enter_depth(depth as u64)
                .map_err(|e| e.at(self.pos))?;
        }
        // Push bindings before resolving names on this element.
        for d in &decls {
            self.ns.push((d.prefix.clone(), d.uri.clone()));
        }
        let (prefix, local) = self.split_name(raw_name)?;
        let name = self.resolve(prefix, local, false)?;
        let mut attributes = Vec::with_capacity(raw_attrs.len());
        for (an, av) in &raw_attrs {
            let (p, l) = self.split_name(an)?;
            let qn = self.resolve(p, l, true)?;
            if attributes.iter().any(|a: &Attribute| a.name == qn) {
                return Err(Error::new(
                    ErrorCode::DuplicateAttribute,
                    format!("duplicate attribute {qn}"),
                )
                .at(self.pos));
            }
            attributes.push(Attribute {
                name: qn,
                value: Arc::from(av.as_str()),
            });
        }
        if empty {
            self.pending_end = Some(name.clone());
            // The frame is popped when the pending end is delivered.
            self.open.push((name.clone(), decls.len()));
        } else {
            self.open.push((name.clone(), decls.len()));
        }
        Ok(XmlEvent::StartElement {
            name,
            attributes,
            namespaces: decls,
            empty,
        })
    }

    fn pop_element(&mut self) {
        if let Some((_, n_decls)) = self.open.pop() {
            for _ in 0..n_decls {
                self.ns.pop();
            }
        }
    }

    fn read_end_tag(&mut self) -> Result<XmlEvent> {
        let raw_name = self.read_name()?;
        self.skip_ws();
        self.expect(">")?;
        let (prefix, local) = self.split_name(raw_name)?;
        let name = self.resolve(prefix, local, false)?;
        match self.open.last() {
            Some((open_name, _)) if *open_name == name => {
                self.pop_element();
                Ok(XmlEvent::EndElement { name })
            }
            Some((open_name, _)) => Err(self.err(format!(
                "mismatched end tag: expected </{}>, found </{}>",
                open_name, name
            ))),
            None => Err(self.err(format!("unmatched end tag </{name}>"))),
        }
    }

    fn read_text(&mut self) -> Result<XmlEvent> {
        if self.open.is_empty() {
            return Err(self.err("text content outside the root element"));
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => {
                    let c = self.read_entity()?;
                    out.push_str(&c);
                }
                Some(b']') if self.input[self.pos..].starts_with(b"]]>") => {
                    return Err(self.err("']]>' not allowed in character data"));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<'
                            || b == b'&'
                            || (b == b']' && self.input[self.pos..].starts_with(b"]]>"))
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.src[start..self.pos]);
                }
            }
        }
        Ok(XmlEvent::Text(normalize_newlines(&out).into()))
    }

    fn read_entity(&mut self) -> Result<String> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = self
            .find(";")
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = &self.src[self.pos..end];
        self.pos = end + 1;
        Ok(match name {
            "lt" => "<".into(),
            "gt" => ">".into(),
            "amp" => "&".into(),
            "quot" => "\"".into(),
            "apos" => "'".into(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err(format!("invalid codepoint in &{name};")))?
                    .to_string()
            }
            _ if name.starts_with('#') => {
                let cp = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err(format!("invalid codepoint in &{name};")))?
                    .to_string()
            }
            _ => return Err(self.err(format!("unknown entity &{name}; (no DTD entity support)"))),
        })
    }

    fn read_attr_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let c = self.read_entity()?;
                    out.push_str(&c);
                }
                Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    // Attribute-value normalization: whitespace → space.
                    out.push(' ');
                    self.pos += 1;
                    if self.src.as_bytes().get(self.pos.wrapping_sub(1)) == Some(&b'\r')
                        && self.peek() == Some(b'\n')
                    {
                        self.pos += 1;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote
                            || b == b'&'
                            || b == b'<'
                            || b == b'\t'
                            || b == b'\n'
                            || b == b'\r'
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.src[start..self.pos]);
                }
            }
        }
        Ok(out)
    }

    fn read_comment(&mut self) -> Result<XmlEvent> {
        let end = self
            .find("--")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let text = &self.src[self.pos..end];
        if !self.src[end..].starts_with("-->") {
            return Err(self.err("'--' not allowed inside a comment"));
        }
        self.pos = end + 3;
        Ok(XmlEvent::Comment(normalize_newlines(text).into()))
    }

    fn read_cdata(&mut self) -> Result<XmlEvent> {
        if self.open.is_empty() {
            return Err(self.err("CDATA outside the root element"));
        }
        let end = self
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let text = &self.src[self.pos..end];
        self.pos = end + 3;
        Ok(XmlEvent::Text(normalize_newlines(text).into()))
    }

    fn read_pi(&mut self) -> Result<XmlEvent> {
        let target = self.read_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err("PI target 'xml' is reserved"));
        }
        let end = self.find("?>").ok_or_else(|| self.err("unterminated PI"))?;
        let data = self.src[self.pos..end].trim_start();
        self.pos = end + 2;
        Ok(XmlEvent::ProcessingInstruction {
            target: Arc::from(target),
            data: Arc::from(normalize_newlines(data).as_str()),
        })
    }
}

/// XML 1.0 end-of-line handling: `\r\n` and `\r` become `\n`.
fn normalize_newlines(s: &str) -> String {
    if !s.contains('\r') {
        return s.to_string();
    }
    s.replace("\r\n", "\n").replace('\r', "\n")
}

pub fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic()
        || c == '_'
        || (!c.is_ascii() && c.is_alphabetic())
        || matches!(c, '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}')
}

pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.' || c == '\u{B7}'
}

/// Convenience: collect all events of a document, failing fast.
pub fn parse_events(input: &str) -> Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::new(input);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event()?;
        let done = ev == XmlEvent::EndDocument;
        events.push(ev);
        if done {
            return Ok(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(events: &[XmlEvent]) -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                XmlEvent::Text(t) => Some(t.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let evs = parse_events("<a><b>hi</b></a>").unwrap();
        assert_eq!(evs.len(), 7); // SD, <a>, <b>, text, </b>, </a>, ED
        assert!(matches!(&evs[1], XmlEvent::StartElement { name, .. } if name.local_name() == "a"));
        assert_eq!(texts(&evs), vec!["hi"]);
    }

    #[test]
    fn empty_element_emits_balanced_events() {
        let evs = parse_events("<a><b/></a>").unwrap();
        let starts = evs.iter().filter(|e| e.is_start_element()).count();
        let ends = evs.iter().filter(|e| e.is_end_element()).count();
        assert_eq!(starts, 2);
        assert_eq!(ends, 2);
    }

    #[test]
    fn attributes_and_duplicates() {
        let evs = parse_events(r#"<book year="1967" title='x'/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(&*attributes[0].value, "1967");
            }
            other => panic!("{other:?}"),
        }
        let err = parse_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateAttribute);
    }

    #[test]
    fn namespace_resolution() {
        let evs = parse_events(
            r#"<book xmlns="urn:b" xmlns:a="urn:a"><a:ref a:isbn="1"/><title/></book>"#,
        )
        .unwrap();
        match &evs[1] {
            XmlEvent::StartElement {
                name, namespaces, ..
            } => {
                assert_eq!(name.namespace(), Some("urn:b"));
                assert_eq!(namespaces.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        match &evs[2] {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name.namespace(), Some("urn:a"));
                assert_eq!(name.local_name(), "ref");
                // prefixed attribute is in the prefix namespace
                assert_eq!(attributes[0].name.namespace(), Some("urn:a"));
            }
            other => panic!("{other:?}"),
        }
        // <title/> inherits the default namespace
        match &evs[4] {
            XmlEvent::StartElement { name, .. } => assert_eq!(name.namespace(), Some("urn:b")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unprefixed_attribute_has_no_namespace() {
        let evs = parse_events(r#"<a xmlns="urn:x" b="1"/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.namespace(), None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_namespace_undeclaration() {
        let evs = parse_events(r#"<a xmlns="urn:x"><b xmlns=""/></a>"#).unwrap();
        match &evs[2] {
            XmlEvent::StartElement { name, .. } => assert_eq!(name.namespace(), None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let err = parse_events("<x:a/>").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnboundPrefix);
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let evs = parse_events(r#"<a xml:lang="en"/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.namespace(), Some(XML_NS));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entities_and_char_refs() {
        let evs = parse_events("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(texts(&evs), vec![r#"<>&"'AB"#]);
        assert!(parse_events("<a>&nope;</a>").is_err());
        assert!(parse_events("<a>&#xD800;</a>").is_err()); // surrogate
    }

    #[test]
    fn cdata_is_text() {
        let evs = parse_events("<a><![CDATA[<not> & markup]]></a>").unwrap();
        assert_eq!(texts(&evs), vec!["<not> & markup"]);
    }

    #[test]
    fn comments_and_pis() {
        let evs = parse_events("<a><!-- note --><?target some data?></a>").unwrap();
        assert!(matches!(&evs[2], XmlEvent::Comment(c) if &**c == " note "));
        assert!(matches!(
            &evs[3],
            XmlEvent::ProcessingInstruction { target, data }
                if &**target == "target" && &**data == "some data"
        ));
        assert!(parse_events("<a><!-- a -- b --></a>").is_err());
    }

    #[test]
    fn prolog_is_skipped() {
        let doc = "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ENTITY x \"y\">]>\n<!-- hi -->\n<a/>";
        let evs = parse_events(doc).unwrap();
        assert!(evs.iter().any(|e| e.is_start_element()));
    }

    #[test]
    fn well_formedness_errors() {
        assert!(parse_events("<a><b></a></b>").is_err());
        assert!(parse_events("<a>").is_err());
        assert!(parse_events("</a>").is_err());
        assert!(parse_events("<a/><b/>").is_err());
        assert!(parse_events("text").is_err());
        assert!(parse_events("").is_err());
        assert!(parse_events("<a>]]></a>").is_err());
        assert!(parse_events("<a b=<c>/>").is_err());
        assert!(parse_events(r#"<a b="x<y"/>"#).is_err());
    }

    #[test]
    fn mixed_content_order_is_preserved() {
        let evs = parse_events("<s>The great <title>P</title> Even facts</s>").unwrap();
        let kinds: Vec<&str> = evs
            .iter()
            .map(|e| match e {
                XmlEvent::StartDocument => "SD",
                XmlEvent::EndDocument => "ED",
                XmlEvent::StartElement { .. } => "SE",
                XmlEvent::EndElement { .. } => "EE",
                XmlEvent::Text(_) => "T",
                XmlEvent::Comment(_) => "C",
                XmlEvent::ProcessingInstruction { .. } => "PI",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["SD", "SE", "T", "SE", "T", "EE", "T", "EE", "ED"]
        );
    }

    #[test]
    fn attribute_value_normalization() {
        let evs = parse_events("<a b=\"x\n\ty\"/>").unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(&*attributes[0].value, "x  y");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn newline_normalization_in_text() {
        let evs = parse_events("<a>x\r\ny\rz</a>").unwrap();
        assert_eq!(texts(&evs), vec!["x\ny\nz"]);
    }

    #[test]
    fn nested_namespace_scopes() {
        // The talk's "nested scopes" slide: same prefix rebound inside.
        let doc = r#"<a xmlns:ns="uri1"><ns:x/><b xmlns:ns="uri2"><ns:x/></b><ns:x/></a>"#;
        let evs = parse_events(doc).unwrap();
        let uris: Vec<Option<String>> = evs
            .iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } if name.local_name() == "x" => {
                    Some(name.namespace().map(str::to_string))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            uris,
            vec![
                Some("uri1".to_string()),
                Some("uri2".to_string()),
                Some("uri1".to_string())
            ]
        );
    }

    #[test]
    fn deep_nesting() {
        let mut doc = String::new();
        for _ in 0..1000 {
            doc.push_str("<a>");
        }
        for _ in 0..1000 {
            doc.push_str("</a>");
        }
        let evs = parse_events(&doc).unwrap();
        assert_eq!(evs.len(), 2002);
    }

    #[test]
    fn pathological_nesting_hits_depth_limit() {
        // 100k-deep would overflow downstream recursion; the reader must
        // refuse it with the stable limit code instead.
        let doc = "<a>".repeat(100_000);
        let mut r = super::XmlReader::new(&doc);
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert!(err.message.contains("depth"), "{err}");
    }

    #[test]
    fn guard_depth_limit_is_tighter_than_hard_cap() {
        use xqr_xdm::{Limits, QueryGuard};
        let doc = format!("{}{}", "<a>".repeat(50), "</a>".repeat(50));
        let guard = QueryGuard::new(Limits::unlimited().with_max_xml_depth(10));
        let mut r = super::XmlReader::new(&doc).with_guard(guard.clone());
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert_eq!(guard.usage().peak_depth, 11);
    }

    #[test]
    fn guard_document_size_limit() {
        use xqr_xdm::{Limits, QueryGuard};
        let doc = format!("<r>{}</r>", "x".repeat(10_000));
        let guard = QueryGuard::new(Limits::unlimited().with_max_document_bytes(100));
        let mut r = super::XmlReader::new(&doc).with_guard(guard);
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert!(err.message.contains("document size"), "{err}");
    }

    #[test]
    fn unicode_names_and_content() {
        let evs = parse_events("<données champ=\"é\">日本語</données>").unwrap();
        assert!(
            matches!(&evs[1], XmlEvent::StartElement { name, .. } if name.local_name() == "données")
        );
        assert_eq!(texts(&evs), vec!["日本語"]);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::parse_events;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn xml_parser_never_panics(s in ".{0,100}") {
            let _ = parse_events(&s);
        }

        #[test]
        fn xml_parser_never_panics_on_markupish(s in "[a-z<>/=\"'& ;!\\[\\]-]{0,80}") {
            let _ = parse_events(&s);
        }
    }
}
