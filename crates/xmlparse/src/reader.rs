//! A hand-written, namespace-aware XML 1.0 pull parser.
//!
//! Single pass, no lookahead buffer beyond one byte, no allocation for
//! structure — strings are allocated only for the content that reaches
//! the consumer. DTDs are skipped (internal subsets are tolerated but
//! not interpreted; external entities are never fetched).
//!
//! The reader runs in one of two modes over the same state machine:
//!
//! * **Whole-document** ([`XmlReader::new`]): the classic pull parser
//!   over a borrowed `&str`. [`XmlReader::next_event`] never blocks on
//!   missing input because the input is complete by construction.
//! * **Incremental** ([`XmlReader::incremental`]): a resumable lexer fed
//!   arbitrary byte chunks via [`XmlReader::feed`]. Tags, attributes,
//!   entities, CDATA sections and multi-byte UTF-8 sequences may
//!   straddle any chunk boundary. [`XmlReader::poll_event`] returns
//!   `Ok(None)` ("need more input") when the buffered bytes end in the
//!   middle of a syntactic unit; the attempt is rolled back and retried
//!   verbatim once more bytes arrive, so the event sequence — including
//!   error codes and byte positions — is identical to parsing the
//!   concatenated document in one piece.
//!
//! Incremental resumption works because the parser mutates durable state
//! (the open-element stack, namespace bindings, `seen_root`,
//! `pending_end`) only *after* a complete syntactic unit has been
//! consumed; an attempt that runs out of buffered bytes only ever moved
//! `pos`, which is restored. Consumed input is drained from the front of
//! the buffer after every delivered event, so memory is bounded by the
//! largest single event plus one chunk, not the document. All error
//! positions are absolute byte offsets from the start of the document
//! (`base + pos`), which stay meaningful when input arrives in chunks.

use crate::event::{Attribute, NamespaceDecl, XmlEvent};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::Arc;
use xqr_xdm::{Error, ErrorCode, QName, QueryGuard, Result};

pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// Hard cap on element nesting regardless of any [`QueryGuard`] limit:
/// downstream consumers (store build, serializer) recurse over element
/// structure, so unbounded depth is a stack-overflow vector. Deep enough
/// for any sane document, far below any thread's stack budget.
pub const DEFAULT_MAX_DEPTH: usize = 10_000;

/// Resume point for an in-progress content scan, so that feeding a large
/// text run / CDATA section / comment one small chunk at a time stays
/// O(n) overall: each retry of the same event resumes scanning where the
/// previous attempt left off instead of rescanning from the event start.
/// Keyed by absolute origin + needle so a stale hint from a different
/// construct can never skip bytes it hasn't proven needle-free.
struct ScanHint {
    /// Absolute offset of `pos` when the failing scan started.
    origin: usize,
    needle: String,
    /// Absolute offset the scan covered (end of buffer at the time).
    scanned_to: usize,
}

/// Pull parser over an in-memory document, fragment, or a growing
/// incremental buffer.
pub struct XmlReader<'a> {
    /// Document text: borrowed for whole-document parsing, owned and
    /// growable for incremental feeding (consumed prefixes are drained).
    buf: Cow<'a, str>,
    /// Absolute byte offset of `buf[0]` within the full document.
    base: usize,
    pos: usize,
    /// Whole input is present (`new`) or `finish()` has been called.
    eof: bool,
    /// Constructed via [`XmlReader::incremental`].
    incremental: bool,
    /// Set by the innermost scanner when an attempt failed only because
    /// the buffer ended mid-construct; `poll_event` turns this into
    /// `Ok(None)` and rolls the attempt back.
    need_more: Cell<bool>,
    /// Trailing bytes of an incomplete UTF-8 sequence from the last
    /// chunk, prepended to the next chunk (≤ 3 bytes).
    carry: Vec<u8>,
    hint: RefCell<Option<ScanHint>>,
    /// Stack of open element names (lexical, for end-tag matching) plus
    /// the number of namespace bindings each frame pushed.
    open: Vec<(QName, usize)>,
    /// Namespace bindings, innermost last: (prefix, uri). `None` prefix is
    /// the default namespace; an empty uri un-declares.
    ns: Vec<(Option<Arc<str>>, Arc<str>)>,
    started: bool,
    finished: bool,
    /// Pending EndElement to emit after an empty-element tag.
    pending_end: Option<QName>,
    seen_root: bool,
    /// Hard nesting cap; always enforced (see [`DEFAULT_MAX_DEPTH`]).
    max_depth: usize,
    /// Optional per-execution budget: nesting depth, document size.
    guard: Option<QueryGuard>,
}

/// `rest` could still grow into `full` with more input.
fn proper_prefix_of(rest: &[u8], full: &[u8]) -> bool {
    rest.len() < full.len() && full.starts_with(rest)
}

impl<'a> XmlReader<'a> {
    pub fn new(input: &'a str) -> Self {
        XmlReader {
            buf: Cow::Borrowed(input),
            base: 0,
            pos: 0,
            eof: true,
            incremental: false,
            need_more: Cell::new(false),
            carry: Vec::new(),
            hint: RefCell::new(None),
            open: Vec::new(),
            ns: Vec::new(),
            started: false,
            finished: false,
            pending_end: None,
            seen_root: false,
            max_depth: DEFAULT_MAX_DEPTH,
            guard: None,
        }
    }

    /// Attach a per-execution guard; the reader then also enforces the
    /// guard's XML depth and document-size limits.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Override the hard nesting cap (tests; embedders with odd inputs).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Current absolute byte offset, for error reporting and progress
    /// accounting. Equals bytes consumed plus the in-progress event's
    /// scan position.
    pub fn position(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes buffered but not yet consumed (incremental mode): the
    /// in-progress event plus any incomplete trailing UTF-8 sequence.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos + self.carry.len()
    }

    fn src(&self) -> &str {
        self.buf.as_ref()
    }

    fn bytes(&self) -> &[u8] {
        self.buf.as_ref().as_bytes()
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::syntax(msg.into()).at(self.base + self.pos)
    }

    /// The buffer ended mid-construct and more input may arrive: flag the
    /// attempt for rollback. Only meaningful when `!self.eof`.
    fn need(&self) -> Error {
        self.need_more.set(true);
        Error::syntax("need more input").at(self.base + self.pos)
    }

    /// Error if the input is complete, otherwise "need more input".
    fn err_or_need(&self, msg: impl Into<String>) -> Error {
        if self.eof {
            self.err(msg)
        } else {
            self.need()
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.bytes()[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else if !self.eof && proper_prefix_of(&self.bytes()[self.pos..], s.as_bytes()) {
            Err(self.need())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Pull the next event. After `EndDocument`, keeps returning
    /// `EndDocument`. Whole-document mode only; incremental readers use
    /// [`XmlReader::poll_event`].
    pub fn next_event(&mut self) -> Result<XmlEvent> {
        debug_assert!(self.eof || self.incremental);
        self.need_more.set(false);
        self.next_event_inner()
    }

    fn next_event_inner(&mut self) -> Result<XmlEvent> {
        xqr_faults::faultpoint!("xml.read");
        if let Some(guard) = &self.guard {
            guard
                .check_document_bytes((self.base + self.pos) as u64)
                .map_err(|e| e.at(self.base + self.pos))?;
        }
        if !self.started {
            self.started = true;
            self.skip_prolog()?;
            return Ok(XmlEvent::StartDocument);
        }
        if let Some(name) = self.pending_end.take() {
            self.pop_element();
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            return Ok(XmlEvent::EndDocument);
        }
        // Between-root-content handling: at top level, whitespace,
        // comments and PIs are allowed; anything else after the root
        // closed is an error.
        loop {
            if self.at_eof() {
                if !self.eof {
                    return Err(self.need());
                }
                if !self.open.is_empty() {
                    return Err(self.err("unexpected end of input: unclosed elements"));
                }
                if !self.seen_root {
                    return Err(self.err("document has no root element"));
                }
                self.finished = true;
                return Ok(XmlEvent::EndDocument);
            }
            if self.open.is_empty() {
                // Only misc allowed at top level besides the single root.
                let save = self.pos;
                self.skip_ws();
                if self.at_eof() {
                    continue;
                }
                if self.peek() != Some(b'<') {
                    return Err(self.err("text content outside the root element"));
                }
                self.pos = if self.pos > save { self.pos } else { save };
            }
            match self.peek() {
                Some(b'<') => {
                    // A truncated buffer may still grow into a longer
                    // marker: wait rather than misparse "<![CD" as a tag.
                    if !self.eof {
                        let rest = &self.bytes()[self.pos..];
                        if proper_prefix_of(rest, b"<!--") || proper_prefix_of(rest, b"<![CDATA[") {
                            return Err(self.need());
                        }
                    }
                    if self.eat("<!--") {
                        return self.read_comment();
                    }
                    if self.eat("<![CDATA[") {
                        return self.read_cdata();
                    }
                    if self.eat("<?") {
                        return self.read_pi();
                    }
                    if self.bytes().get(self.pos + 1) == Some(&b'/') {
                        self.pos += 2;
                        return self.read_end_tag();
                    }
                    if self.bytes().get(self.pos + 1) == Some(&b'!') {
                        return Err(self.err("unexpected markup declaration in content"));
                    }
                    self.pos += 1;
                    return self.read_start_tag();
                }
                Some(_) => return self.read_text(),
                None => continue,
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        // Optional XML declaration. With incomplete input, anything that
        // could still become "<?xml " must wait — misrouting it to the
        // PI path would report "PI target 'xml' is reserved".
        if !self.eof {
            let rest = &self.bytes()[self.pos..];
            if !rest.is_empty() && rest.len() <= 5 && b"<?xml".starts_with(rest) {
                return Err(self.need());
            }
        }
        if self.bytes()[self.pos..].starts_with(b"<?xml")
            && matches!(
                self.bytes().get(self.pos + 5),
                Some(b' ' | b'\t' | b'\r' | b'\n' | b'?')
            )
        {
            let end = self
                .find("?>")
                .ok_or_else(|| self.err_or_need("unterminated XML declaration"))?;
            self.pos = end + 2;
        }
        loop {
            self.skip_ws();
            if !self.eof {
                let rest = &self.bytes()[self.pos..];
                // The prolog is only known complete once the root tag (or
                // a definite error) is in the buffer: an empty tail or a
                // partial misc marker may still grow into more prolog.
                if rest.is_empty()
                    || proper_prefix_of(rest, b"<!DOCTYPE")
                    || proper_prefix_of(rest, b"<!--")
                    || proper_prefix_of(rest, b"<?")
                {
                    return Err(self.need());
                }
            }
            if self.bytes()[self.pos..].starts_with(b"<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.bytes()[self.pos..].starts_with(b"<!--") {
                self.pos += 4;
                let end = self
                    .find("-->")
                    .ok_or_else(|| self.err_or_need("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.bytes()[self.pos..].starts_with(b"<?") {
                let end = self
                    .find("?>")
                    .ok_or_else(|| self.err_or_need("unterminated PI"))?;
                self.pos = end + 2;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<()> {
        self.pos += "<!DOCTYPE".len();
        let mut depth = 1usize;
        let mut in_internal = false;
        while let Some(b) = self.bump() {
            match b {
                b'[' => in_internal = true,
                b']' => in_internal = false,
                b'<' if in_internal => depth += 1,
                b'>' if !in_internal => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        Err(self.err_or_need("unterminated DOCTYPE"))
    }

    fn find(&self, needle: &str) -> Option<usize> {
        let s = self.src();
        let mut from = self.pos;
        if let Some(h) = self.hint.borrow().as_ref() {
            if h.origin == self.base + self.pos && h.needle == needle {
                let scanned = (h.scanned_to - self.base).min(s.len());
                let mut resume = scanned.saturating_sub(needle.len() - 1).max(self.pos);
                while !s.is_char_boundary(resume) {
                    resume -= 1;
                }
                from = resume;
            }
        }
        match s[from..].find(needle) {
            Some(i) => Some(from + i),
            None => {
                if !self.eof {
                    // Remember how far we scanned so the retry after the
                    // next feed() resumes here instead of at `pos`.
                    *self.hint.borrow_mut() = Some(ScanHint {
                        origin: self.base + self.pos,
                        needle: needle.to_string(),
                        scanned_to: self.base + s.len(),
                    });
                }
                None
            }
        }
    }

    /// Read a (possibly prefixed) name; `:` is accepted here and the
    /// prefix/local split is validated by `split_name`. Returns the
    /// buffer range of the name (stable for the rest of this attempt:
    /// compaction only happens between events).
    fn read_name(&mut self) -> Result<Range<usize>> {
        let start = self.pos;
        let mut chars = self.src()[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            None if !self.eof => return Err(self.need()),
            _ => return Err(self.err("expected a name")),
        }
        let mut end = self.src().len();
        for (i, c) in chars {
            if !(is_name_char(c) || c == ':') {
                end = start + i;
                break;
            }
        }
        if end == self.src().len() && !self.eof {
            // The name runs to the end of the buffer and may continue.
            return Err(self.need());
        }
        self.pos = end;
        Ok(start..end)
    }

    fn split_name(&self, r: Range<usize>) -> Result<(Option<Range<usize>>, Range<usize>)> {
        let name = &self.src()[r.clone()];
        match name.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    Err(self.err(format!("invalid QName {name:?}")))
                } else {
                    let split = r.start + p.len();
                    Ok((Some(r.start..split), split + 1..r.end))
                }
            }
            None => Ok((None, r)),
        }
    }

    fn resolve_range(&self, r: Range<usize>, is_attr: bool) -> Result<QName> {
        let (pr, lr) = self.split_name(r)?;
        let prefix = pr.map(|p| &self.src()[p]);
        let local = &self.src()[lr];
        self.resolve(prefix, local, is_attr)
    }

    fn resolve(&self, prefix: Option<&str>, local: &str, is_attr: bool) -> Result<QName> {
        match prefix {
            None => {
                if is_attr {
                    // Unprefixed attributes are in no namespace.
                    return Ok(QName::local(local));
                }
                // Default namespace for elements.
                for (p, uri) in self.ns.iter().rev() {
                    if p.is_none() {
                        if uri.is_empty() {
                            return Ok(QName::local(local));
                        }
                        return Ok(QName::ns(uri, local));
                    }
                }
                Ok(QName::local(local))
            }
            Some("xml") => Ok(QName::prefixed(XML_NS, "xml", local)),
            Some(p) => {
                for (bp, uri) in self.ns.iter().rev() {
                    if bp.as_deref() == Some(p) {
                        if uri.is_empty() {
                            return Err(Error::new(
                                ErrorCode::UnboundPrefix,
                                format!("prefix {p:?} has been undeclared"),
                            )
                            .at(self.base + self.pos));
                        }
                        return Ok(QName::prefixed(uri, p, local));
                    }
                }
                Err(
                    Error::new(ErrorCode::UnboundPrefix, format!("unbound prefix {p:?}"))
                        .at(self.base + self.pos),
                )
            }
        }
    }

    fn read_start_tag(&mut self) -> Result<XmlEvent> {
        let raw_name = self.read_name()?;
        let mut raw_attrs: Vec<(Range<usize>, String)> = Vec::new();
        let mut decls: Vec<NamespaceDecl> = Vec::new();
        loop {
            let ws_start = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return self.finish_start_tag(raw_name, raw_attrs, decls, false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return self.finish_start_tag(raw_name, raw_attrs, decls, true);
                }
                Some(_) => {
                    if self.pos == ws_start {
                        return Err(self.err("expected whitespace before attribute"));
                    }
                    if matches!(self.peek(), Some(b'>' | b'/')) {
                        continue;
                    }
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    // Namespace declarations are bindings, not attributes.
                    // `None` = plain attribute, `Some(prefix)` = binding.
                    let binding: Option<Option<Arc<str>>> = {
                        let an = &self.src()[attr_name.clone()];
                        if an == "xmlns" {
                            Some(None)
                        } else if let Some(p) = an.strip_prefix("xmlns:") {
                            if p.is_empty() {
                                return Err(self.err("empty namespace prefix"));
                            }
                            Some(Some(Arc::from(p)))
                        } else {
                            None
                        }
                    };
                    match binding {
                        Some(prefix) => decls.push(NamespaceDecl {
                            prefix,
                            uri: Arc::from(value.as_str()),
                        }),
                        None => raw_attrs.push((attr_name, value)),
                    }
                }
                None => return Err(self.err_or_need("unterminated start tag")),
            }
        }
    }

    fn finish_start_tag(
        &mut self,
        raw_name: Range<usize>,
        raw_attrs: Vec<(Range<usize>, String)>,
        decls: Vec<NamespaceDecl>,
        empty: bool,
    ) -> Result<XmlEvent> {
        if self.open.is_empty() {
            if self.seen_root {
                return Err(self.err("multiple root elements"));
            }
            self.seen_root = true;
        }
        let depth = self.open.len() + 1;
        if depth > self.max_depth {
            return Err(Error::limit(format!(
                "XML nesting depth limit of {} exceeded",
                self.max_depth
            ))
            .at(self.base + self.pos));
        }
        if let Some(guard) = &self.guard {
            guard
                .enter_depth(depth as u64)
                .map_err(|e| e.at(self.base + self.pos))?;
        }
        // Push bindings before resolving names on this element.
        for d in &decls {
            self.ns.push((d.prefix.clone(), d.uri.clone()));
        }
        let name = self.resolve_range(raw_name, false)?;
        let mut attributes = Vec::with_capacity(raw_attrs.len());
        for (an, av) in &raw_attrs {
            let qn = self.resolve_range(an.clone(), true)?;
            if attributes.iter().any(|a: &Attribute| a.name == qn) {
                return Err(Error::new(
                    ErrorCode::DuplicateAttribute,
                    format!("duplicate attribute {qn}"),
                )
                .at(self.base + self.pos));
            }
            attributes.push(Attribute {
                name: qn,
                value: Arc::from(av.as_str()),
            });
        }
        if empty {
            self.pending_end = Some(name.clone());
            // The frame is popped when the pending end is delivered.
            self.open.push((name.clone(), decls.len()));
        } else {
            self.open.push((name.clone(), decls.len()));
        }
        Ok(XmlEvent::StartElement {
            name,
            attributes,
            namespaces: decls,
            empty,
        })
    }

    fn pop_element(&mut self) {
        if let Some((_, n_decls)) = self.open.pop() {
            for _ in 0..n_decls {
                self.ns.pop();
            }
        }
    }

    fn read_end_tag(&mut self) -> Result<XmlEvent> {
        let raw_name = self.read_name()?;
        self.skip_ws();
        self.expect(">")?;
        let name = self.resolve_range(raw_name, false)?;
        match self.open.last() {
            Some((open_name, _)) if *open_name == name => {
                self.pop_element();
                Ok(XmlEvent::EndElement { name })
            }
            Some((open_name, _)) => Err(self.err(format!(
                "mismatched end tag: expected </{}>, found </{}>",
                open_name, name
            ))),
            None => Err(self.err(format!("unmatched end tag </{name}>"))),
        }
    }

    fn read_text(&mut self) -> Result<XmlEvent> {
        if self.open.is_empty() {
            return Err(self.err("text content outside the root element"));
        }
        // A text run only ends at '<' (or a definite error): until one is
        // buffered the event cannot complete, so skip the accumulation
        // pass entirely. The scan hint makes repeated probes O(new bytes).
        if !self.eof && self.find("<").is_none() {
            return Err(self.need());
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => {
                    let c = self.read_entity()?;
                    out.push_str(&c);
                }
                Some(b']') if self.bytes()[self.pos..].starts_with(b"]]>") => {
                    return Err(self.err("']]>' not allowed in character data"));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<'
                            || b == b'&'
                            || (b == b']' && self.bytes()[self.pos..].starts_with(b"]]>"))
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.src()[start..self.pos]);
                }
            }
        }
        Ok(XmlEvent::Text(normalize_newlines(&out).into()))
    }

    fn read_entity(&mut self) -> Result<String> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let end = self
            .find(";")
            .ok_or_else(|| self.err_or_need("unterminated entity reference"))?;
        let start = self.pos;
        self.pos = end + 1;
        let name = &self.src()[start..end];
        match name {
            "lt" => Ok("<".into()),
            "gt" => Ok(">".into()),
            "amp" => Ok("&".into()),
            "quot" => Ok("\"".into()),
            "apos" => Ok("'".into()),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                Ok(char::from_u32(cp)
                    .ok_or_else(|| self.err(format!("invalid codepoint in &{name};")))?
                    .to_string())
            }
            _ if name.starts_with('#') => {
                let cp = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                Ok(char::from_u32(cp)
                    .ok_or_else(|| self.err(format!("invalid codepoint in &{name};")))?
                    .to_string())
            }
            _ => Err(self.err(format!("unknown entity &{name}; (no DTD entity support)"))),
        }
    }

    fn read_attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            None if !self.eof => return Err(self.need()),
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err_or_need("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let c = self.read_entity()?;
                    out.push_str(&c);
                }
                Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    // Attribute-value normalization: whitespace → space.
                    let was_cr = self.peek() == Some(b'\r');
                    out.push(' ');
                    self.pos += 1;
                    if was_cr {
                        if self.peek() == Some(b'\n') {
                            self.pos += 1;
                        } else if self.at_eof() && !self.eof {
                            // A '\r' at the buffer edge may be the first
                            // half of "\r\n"; wait rather than normalize
                            // it alone. (The whole event rolls back.)
                            return Err(self.need());
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote
                            || b == b'&'
                            || b == b'<'
                            || b == b'\t'
                            || b == b'\n'
                            || b == b'\r'
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.src()[start..self.pos]);
                }
            }
        }
        Ok(out)
    }

    fn read_comment(&mut self) -> Result<XmlEvent> {
        let end = self
            .find("--")
            .ok_or_else(|| self.err_or_need("unterminated comment"))?;
        if end + 3 > self.src().len() && !self.eof {
            // "--" right at the buffer edge may still become "-->".
            return Err(self.need());
        }
        if !self.src()[end..].starts_with("-->") {
            return Err(self.err("'--' not allowed inside a comment"));
        }
        let text = normalize_newlines(&self.src()[self.pos..end]);
        self.pos = end + 3;
        Ok(XmlEvent::Comment(text.into()))
    }

    fn read_cdata(&mut self) -> Result<XmlEvent> {
        if self.open.is_empty() {
            return Err(self.err("CDATA outside the root element"));
        }
        let end = self
            .find("]]>")
            .ok_or_else(|| self.err_or_need("unterminated CDATA section"))?;
        let text = normalize_newlines(&self.src()[self.pos..end]);
        self.pos = end + 3;
        Ok(XmlEvent::Text(text.into()))
    }

    fn read_pi(&mut self) -> Result<XmlEvent> {
        let target = self.read_name()?;
        if self.src()[target.clone()].eq_ignore_ascii_case("xml") {
            return Err(self.err("PI target 'xml' is reserved"));
        }
        let end = self
            .find("?>")
            .ok_or_else(|| self.err_or_need("unterminated PI"))?;
        let target: Arc<str> = Arc::from(&self.src()[target]);
        let data: Arc<str> =
            Arc::from(normalize_newlines(self.src()[self.pos..end].trim_start()).as_str());
        self.pos = end + 2;
        Ok(XmlEvent::ProcessingInstruction { target, data })
    }
}

/// Incremental (chunk-fed) construction and operations.
impl XmlReader<'static> {
    /// A resumable reader with an initially empty buffer: feed bytes with
    /// [`XmlReader::feed`], pull completed events with
    /// [`XmlReader::poll_event`], and mark end-of-input with
    /// [`XmlReader::finish`].
    pub fn incremental() -> Self {
        let mut r = XmlReader::new("");
        r.buf = Cow::Owned(String::new());
        r.eof = false;
        r.incremental = true;
        r
    }

    /// Append a chunk of document bytes. Chunk boundaries are arbitrary:
    /// an incomplete trailing UTF-8 sequence is carried over and joined
    /// with the next chunk. Fails only on definitely-invalid UTF-8.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<()> {
        assert!(self.incremental, "feed() requires XmlReader::incremental()");
        assert!(!self.eof, "feed() after finish()");
        if self.carry.is_empty() {
            self.append_utf8(chunk)
        } else {
            let mut joined = std::mem::take(&mut self.carry);
            joined.extend_from_slice(chunk);
            self.append_utf8(&joined)
        }
    }

    /// `feed` for callers that already hold validated text.
    pub fn feed_str(&mut self, chunk: &str) -> Result<()> {
        if !self.carry.is_empty() || !chunk.is_ascii() {
            return self.feed(chunk.as_bytes());
        }
        assert!(
            self.incremental,
            "feed_str() requires XmlReader::incremental()"
        );
        assert!(!self.eof, "feed_str() after finish()");
        self.buf.to_mut().push_str(chunk);
        Ok(())
    }

    fn append_utf8(&mut self, bytes: &[u8]) -> Result<()> {
        match std::str::from_utf8(bytes) {
            Ok(s) => {
                self.buf.to_mut().push_str(s);
                Ok(())
            }
            Err(e) => {
                let valid = e.valid_up_to();
                if e.error_len().is_some() {
                    // Definitely malformed, not merely truncated.
                    return Err(Error::syntax("invalid UTF-8 in document")
                        .at(self.base + self.buf.len() + valid));
                }
                let (ok, rest) = bytes.split_at(valid);
                self.buf
                    .to_mut()
                    .push_str(std::str::from_utf8(ok).expect("validated prefix"));
                self.carry = rest.to_vec();
                Ok(())
            }
        }
    }

    /// Mark end-of-input: constructs that were waiting for more bytes now
    /// resolve (to completion or to the same error the whole-document
    /// parse would report). Errors if the input ended inside a multi-byte
    /// UTF-8 sequence.
    pub fn finish(&mut self) -> Result<()> {
        self.eof = true;
        if !self.carry.is_empty() {
            self.carry.clear();
            return Err(Error::syntax("incomplete UTF-8 sequence at end of input")
                .at(self.base + self.buf.len()));
        }
        Ok(())
    }

    /// Try to pull the next event from the buffered bytes. `Ok(None)`
    /// means the buffer ends mid-construct: feed more bytes (or call
    /// [`XmlReader::finish`]) and poll again — the attempt was rolled
    /// back, so the eventual event sequence is identical to parsing the
    /// whole document at once. After a real error the reader is poisoned
    /// for document purposes; callers stop at the first `Err`. Once
    /// `EndDocument` has been delivered the stream is over: every later
    /// poll returns `Ok(None)` (unlike [`XmlReader::next_event`], which
    /// repeats `EndDocument` for its fused-iterator callers).
    pub fn poll_event(&mut self) -> Result<Option<XmlEvent>> {
        if self.finished {
            return Ok(None);
        }
        let save_pos = self.pos;
        let save_started = self.started;
        self.need_more.set(false);
        match self.next_event_inner() {
            Ok(ev) => {
                self.compact();
                Ok(Some(ev))
            }
            Err(e) => {
                if self.need_more.get() {
                    self.pos = save_pos;
                    self.started = save_started;
                    Ok(None)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Drop consumed bytes from the front of the buffer so memory tracks
    /// the in-progress event, not the document.
    fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        if let Cow::Owned(s) = &mut self.buf {
            s.drain(..self.pos);
        }
        self.base += self.pos;
        self.pos = 0;
        *self.hint.borrow_mut() = None;
    }
}

/// XML 1.0 end-of-line handling: `\r\n` and `\r` become `\n`.
fn normalize_newlines(s: &str) -> String {
    if !s.contains('\r') {
        return s.to_string();
    }
    s.replace("\r\n", "\n").replace('\r', "\n")
}

pub fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic()
        || c == '_'
        || (!c.is_ascii() && c.is_alphabetic())
        || matches!(c, '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}')
}

pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.' || c == '\u{B7}'
}

/// Convenience: collect all events of a document, failing fast.
pub fn parse_events(input: &str) -> Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::new(input);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event()?;
        let done = ev == XmlEvent::EndDocument;
        events.push(ev);
        if done {
            return Ok(events);
        }
    }
}

/// [`parse_events`] over chunked input: feed each chunk in order, then
/// finish. Used by tests and the differential oracle to check that
/// chunk boundaries never change the result.
pub fn parse_events_chunked<'c>(
    chunks: impl IntoIterator<Item = &'c [u8]>,
) -> Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::incremental();
    let mut events = Vec::new();
    let drain = |reader: &mut XmlReader<'static>, events: &mut Vec<XmlEvent>| -> Result<bool> {
        while let Some(ev) = reader.poll_event()? {
            let done = ev == XmlEvent::EndDocument;
            events.push(ev);
            if done {
                return Ok(true);
            }
        }
        Ok(false)
    };
    for chunk in chunks {
        reader.feed(chunk)?;
        if drain(&mut reader, &mut events)? {
            return Ok(events);
        }
    }
    reader.finish()?;
    loop {
        match reader.poll_event()? {
            Some(ev) => {
                let done = ev == XmlEvent::EndDocument;
                events.push(ev);
                if done {
                    return Ok(events);
                }
            }
            None => return Err(Error::internal("incremental reader stalled after finish()")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(events: &[XmlEvent]) -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                XmlEvent::Text(t) => Some(t.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let evs = parse_events("<a><b>hi</b></a>").unwrap();
        assert_eq!(evs.len(), 7); // SD, <a>, <b>, text, </b>, </a>, ED
        assert!(matches!(&evs[1], XmlEvent::StartElement { name, .. } if name.local_name() == "a"));
        assert_eq!(texts(&evs), vec!["hi"]);
    }

    #[test]
    fn empty_element_emits_balanced_events() {
        let evs = parse_events("<a><b/></a>").unwrap();
        let starts = evs.iter().filter(|e| e.is_start_element()).count();
        let ends = evs.iter().filter(|e| e.is_end_element()).count();
        assert_eq!(starts, 2);
        assert_eq!(ends, 2);
    }

    #[test]
    fn attributes_and_duplicates() {
        let evs = parse_events(r#"<book year="1967" title='x'/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(&*attributes[0].value, "1967");
            }
            other => panic!("{other:?}"),
        }
        let err = parse_events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateAttribute);
    }

    #[test]
    fn namespace_resolution() {
        let evs = parse_events(
            r#"<book xmlns="urn:b" xmlns:a="urn:a"><a:ref a:isbn="1"/><title/></book>"#,
        )
        .unwrap();
        match &evs[1] {
            XmlEvent::StartElement {
                name, namespaces, ..
            } => {
                assert_eq!(name.namespace(), Some("urn:b"));
                assert_eq!(namespaces.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        match &evs[2] {
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name.namespace(), Some("urn:a"));
                assert_eq!(name.local_name(), "ref");
                // prefixed attribute is in the prefix namespace
                assert_eq!(attributes[0].name.namespace(), Some("urn:a"));
            }
            other => panic!("{other:?}"),
        }
        // <title/> inherits the default namespace
        match &evs[4] {
            XmlEvent::StartElement { name, .. } => assert_eq!(name.namespace(), Some("urn:b")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unprefixed_attribute_has_no_namespace() {
        let evs = parse_events(r#"<a xmlns="urn:x" b="1"/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.namespace(), None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_namespace_undeclaration() {
        let evs = parse_events(r#"<a xmlns="urn:x"><b xmlns=""/></a>"#).unwrap();
        match &evs[2] {
            XmlEvent::StartElement { name, .. } => assert_eq!(name.namespace(), None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let err = parse_events("<x:a/>").unwrap_err();
        assert_eq!(err.code, ErrorCode::UnboundPrefix);
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let evs = parse_events(r#"<a xml:lang="en"/>"#).unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.namespace(), Some(XML_NS));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entities_and_char_refs() {
        let evs = parse_events("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(texts(&evs), vec![r#"<>&"'AB"#]);
        assert!(parse_events("<a>&nope;</a>").is_err());
        assert!(parse_events("<a>&#xD800;</a>").is_err()); // surrogate
    }

    #[test]
    fn cdata_is_text() {
        let evs = parse_events("<a><![CDATA[<not> & markup]]></a>").unwrap();
        assert_eq!(texts(&evs), vec!["<not> & markup"]);
    }

    #[test]
    fn comments_and_pis() {
        let evs = parse_events("<a><!-- note --><?target some data?></a>").unwrap();
        assert!(matches!(&evs[2], XmlEvent::Comment(c) if &**c == " note "));
        assert!(matches!(
            &evs[3],
            XmlEvent::ProcessingInstruction { target, data }
                if &**target == "target" && &**data == "some data"
        ));
        assert!(parse_events("<a><!-- a -- b --></a>").is_err());
    }

    #[test]
    fn prolog_is_skipped() {
        let doc = "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ENTITY x \"y\">]>\n<!-- hi -->\n<a/>";
        let evs = parse_events(doc).unwrap();
        assert!(evs.iter().any(|e| e.is_start_element()));
    }

    #[test]
    fn well_formedness_errors() {
        assert!(parse_events("<a><b></a></b>").is_err());
        assert!(parse_events("<a>").is_err());
        assert!(parse_events("</a>").is_err());
        assert!(parse_events("<a/><b/>").is_err());
        assert!(parse_events("text").is_err());
        assert!(parse_events("").is_err());
        assert!(parse_events("<a>]]></a>").is_err());
        assert!(parse_events("<a b=<c>/>").is_err());
        assert!(parse_events(r#"<a b="x<y"/>"#).is_err());
    }

    #[test]
    fn mixed_content_order_is_preserved() {
        let evs = parse_events("<s>The great <title>P</title> Even facts</s>").unwrap();
        let kinds: Vec<&str> = evs
            .iter()
            .map(|e| match e {
                XmlEvent::StartDocument => "SD",
                XmlEvent::EndDocument => "ED",
                XmlEvent::StartElement { .. } => "SE",
                XmlEvent::EndElement { .. } => "EE",
                XmlEvent::Text(_) => "T",
                XmlEvent::Comment(_) => "C",
                XmlEvent::ProcessingInstruction { .. } => "PI",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["SD", "SE", "T", "SE", "T", "EE", "T", "EE", "ED"]
        );
    }

    #[test]
    fn attribute_value_normalization() {
        let evs = parse_events("<a b=\"x\n\ty\"/>").unwrap();
        match &evs[1] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(&*attributes[0].value, "x  y");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn newline_normalization_in_text() {
        let evs = parse_events("<a>x\r\ny\rz</a>").unwrap();
        assert_eq!(texts(&evs), vec!["x\ny\nz"]);
    }

    #[test]
    fn nested_namespace_scopes() {
        // The talk's "nested scopes" slide: same prefix rebound inside.
        let doc = r#"<a xmlns:ns="uri1"><ns:x/><b xmlns:ns="uri2"><ns:x/></b><ns:x/></a>"#;
        let evs = parse_events(doc).unwrap();
        let uris: Vec<Option<String>> = evs
            .iter()
            .filter_map(|e| match e {
                XmlEvent::StartElement { name, .. } if name.local_name() == "x" => {
                    Some(name.namespace().map(str::to_string))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            uris,
            vec![
                Some("uri1".to_string()),
                Some("uri2".to_string()),
                Some("uri1".to_string())
            ]
        );
    }

    #[test]
    fn deep_nesting() {
        let mut doc = String::new();
        for _ in 0..1000 {
            doc.push_str("<a>");
        }
        for _ in 0..1000 {
            doc.push_str("</a>");
        }
        let evs = parse_events(&doc).unwrap();
        assert_eq!(evs.len(), 2002);
    }

    #[test]
    fn pathological_nesting_hits_depth_limit() {
        // 100k-deep would overflow downstream recursion; the reader must
        // refuse it with the stable limit code instead.
        let doc = "<a>".repeat(100_000);
        let mut r = super::XmlReader::new(&doc);
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert!(err.message.contains("depth"), "{err}");
    }

    #[test]
    fn guard_depth_limit_is_tighter_than_hard_cap() {
        use xqr_xdm::{Limits, QueryGuard};
        let doc = format!("{}{}", "<a>".repeat(50), "</a>".repeat(50));
        let guard = QueryGuard::new(Limits::unlimited().with_max_xml_depth(10));
        let mut r = super::XmlReader::new(&doc).with_guard(guard.clone());
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert_eq!(guard.usage().peak_depth, 11);
    }

    #[test]
    fn guard_document_size_limit() {
        use xqr_xdm::{Limits, QueryGuard};
        let doc = format!("<r>{}</r>", "x".repeat(10_000));
        let guard = QueryGuard::new(Limits::unlimited().with_max_document_bytes(100));
        let mut r = super::XmlReader::new(&doc).with_guard(guard);
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert!(err.message.contains("document size"), "{err}");
    }

    #[test]
    fn unicode_names_and_content() {
        let evs = parse_events("<données champ=\"é\">日本語</données>").unwrap();
        assert!(
            matches!(&evs[1], XmlEvent::StartElement { name, .. } if name.local_name() == "données")
        );
        assert_eq!(texts(&evs), vec!["日本語"]);
    }

    // ---- incremental (chunk-fed) mode -------------------------------

    /// Every two-chunk split of `doc` must yield the same events (or the
    /// same error code) as the whole-document parse.
    fn assert_split_invariant(doc: &str) {
        let whole = parse_events(doc);
        let bytes = doc.as_bytes();
        for cut in 0..=bytes.len() {
            let chunked = parse_events_chunked([&bytes[..cut], &bytes[cut..]]);
            match (&whole, &chunked) {
                (Ok(w), Ok(c)) => assert_eq!(w, c, "split at {cut} in {doc:?}"),
                (Err(w), Err(c)) => {
                    assert_eq!(w.code, c.code, "split at {cut} in {doc:?}: {w} vs {c}")
                }
                (w, c) => panic!("split at {cut} in {doc:?}: whole={w:?} chunked={c:?}"),
            }
        }
    }

    #[test]
    fn incremental_matches_whole_document_at_every_split() {
        for doc in [
            "<a><b>hi</b></a>",
            r#"<book year="1967" title='x'/>"#,
            r#"<book xmlns="urn:b" xmlns:a="urn:a"><a:ref a:isbn="1"/><title/></book>"#,
            "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>",
            "<a><![CDATA[<not> & markup]]></a>",
            "<a><!-- note --><?target some data?></a>",
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ENTITY x \"y\">]>\n<!-- hi -->\n<a/>",
            "<données champ=\"é\">日本語</données>",
            "<a>x\r\ny\rz</a>",
            "<a b=\"x\r\ny\"/>",
            "<s>The great <title>P</title> Even facts</s>",
            " <a/> \n<!-- after -->\n<?pi data?> ",
        ] {
            assert_split_invariant(doc);
        }
    }

    #[test]
    fn incremental_split_invariant_holds_for_malformed_docs() {
        for doc in [
            "<a><b></a></b>",
            "<a>",
            "</a>",
            "<a/><b/>",
            "text",
            "",
            "<a>]]></a>",
            "<a b=<c>/>",
            r#"<a b="x<y"/>"#,
            "<a>&nope;</a>",
            "<a><!-- a -- b --></a>",
            "<x:a/>",
            "<a><![CDATA[never closed</a>",
            "<a><?pi never closed</a>",
        ] {
            assert_split_invariant(doc);
        }
    }

    #[test]
    fn one_byte_chunks_match_whole_document() {
        let doc =
            "<?xml version=\"1.0\"?><r a=\"v&amp;w\"><![CDATA[x]]><b>é—&#x42;</b><!--c--></r>";
        let whole = parse_events(doc).unwrap();
        let chunks: Vec<&[u8]> = doc.as_bytes().chunks(1).collect();
        let chunked = parse_events_chunked(chunks).unwrap();
        assert_eq!(whole, chunked);
    }

    #[test]
    fn utf8_codepoint_split_across_chunks() {
        let doc = "<a>日本語</a>";
        let bytes = doc.as_bytes();
        // Cut inside the first multi-byte character ("日" starts at 3).
        let evs = parse_events_chunked([&bytes[..4], &bytes[4..]]).unwrap();
        assert_eq!(texts(&evs), vec!["日本語"]);
    }

    #[test]
    fn truncated_utf8_at_end_of_input_errors() {
        let mut r = XmlReader::incremental();
        r.feed(
            "<a>é"
                .as_bytes()
                .split_last()
                .map(|(_, rest)| rest)
                .unwrap(),
        )
        .unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_utf8_mid_stream_errors() {
        let mut r = XmlReader::incremental();
        assert!(r.feed(b"<a>\xff\xfe</a>").is_err());
    }

    #[test]
    fn error_positions_are_absolute_across_chunks() {
        // "x<y" inside an attribute at a known absolute offset.
        let doc = r#"<root><a b="x<y"/></root>"#;
        let whole_err = parse_events(doc).unwrap_err();
        let bytes = doc.as_bytes();
        let chunked_err = parse_events_chunked([&bytes[..9], &bytes[9..]]).unwrap_err();
        assert_eq!(whole_err.position, chunked_err.position);
        assert!(whole_err.position.unwrap() > 9, "{whole_err:?}");
    }

    #[test]
    fn incremental_buffer_is_compacted_between_events() {
        // Stream a long document; after draining, the buffer must hold
        // only the unconsumed tail, not everything ever fed.
        let mut r = XmlReader::incremental();
        r.feed(b"<r>").unwrap();
        let mut n = 0;
        for _ in 0..1000 {
            r.feed(b"<a>text</a>").unwrap();
            while let Some(_ev) = r.poll_event().unwrap() {
                n += 1;
            }
            assert!(
                r.buffered_bytes() < 64,
                "consumed events must be drained, {} bytes held",
                r.buffered_bytes()
            );
        }
        r.feed(b"</r>").unwrap();
        r.finish().unwrap();
        while let Some(ev) = r.poll_event().unwrap() {
            n += 1;
            if ev == XmlEvent::EndDocument {
                break;
            }
        }
        assert_eq!(n, 2 + 3 * 1000 + 2); // SD <r> (SE T EE)×1000 </r> ED
    }

    #[test]
    fn one_byte_feed_is_not_quadratic_on_large_text() {
        // 200 KiB of text fed one byte at a time: the scan-hint must keep
        // the repeated "is there a '<' yet" probes O(chunk), not O(run²).
        let body = "y".repeat(200 * 1024);
        let doc = format!("<a>{body}</a>");
        let mut r = XmlReader::incremental();
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        for b in doc.as_bytes() {
            r.feed(std::slice::from_ref(b)).unwrap();
            while let Some(ev) = r.poll_event().unwrap() {
                events.push(ev);
            }
        }
        r.finish().unwrap();
        while let Some(ev) = r.poll_event().unwrap() {
            let done = ev == XmlEvent::EndDocument;
            events.push(ev);
            if done {
                break;
            }
        }
        assert_eq!(texts(&events), vec![body]);
        // Generous bound: quadratic rescans would take minutes here.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn guard_limits_apply_to_incremental_reads() {
        use xqr_xdm::{Limits, QueryGuard};
        let guard = QueryGuard::new(Limits::unlimited().with_max_document_bytes(64));
        let mut r = XmlReader::incremental().with_guard(guard);
        r.feed(format!("<r>{}</r>", "x".repeat(1000)).as_bytes())
            .unwrap();
        let err = loop {
            match r.poll_event() {
                Ok(Some(_)) => continue,
                Ok(None) => {
                    r.finish().unwrap();
                    continue;
                }
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::{parse_events, parse_events_chunked};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn xml_parser_never_panics(s in ".{0,100}") {
            let _ = parse_events(&s);
        }

        #[test]
        fn xml_parser_never_panics_on_markupish(s in "[a-z<>/=\"'& ;!\\[\\]-]{0,80}") {
            let _ = parse_events(&s);
        }

        #[test]
        fn chunked_parse_equals_whole_parse(
            s in "[a-z<>/=\"'& ;!?\\[\\]x-]{0,60}",
            cuts in proptest::collection::vec(0usize..=60, 0..4),
        ) {
            let bytes = s.as_bytes();
            let mut points: Vec<usize> =
                cuts.into_iter().map(|c| c.min(bytes.len())).collect();
            points.sort_unstable();
            points.dedup();
            let mut chunks = Vec::new();
            let mut prev = 0;
            for p in points {
                chunks.push(&bytes[prev..p]);
                prev = p;
            }
            chunks.push(&bytes[prev..]);
            let whole = parse_events(&s);
            let chunked = parse_events_chunked(chunks);
            match (whole, chunked) {
                (Ok(w), Ok(c)) => prop_assert_eq!(w, c),
                (Err(w), Err(c)) => prop_assert_eq!(w.code, c.code),
                (w, c) => prop_assert!(false, "whole={:?} chunked={:?}", w, c),
            }
        }
    }
}
