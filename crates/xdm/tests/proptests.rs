//! Property tests on the data-model foundations: decimal arithmetic
//! laws, date/time roundtrips, cast roundtrips, comparison coherence.

use proptest::prelude::*;
use std::cmp::Ordering;
use xqr_xdm::{AtomicType, AtomicValue, DateTime, Decimal, Duration};

fn arb_decimal() -> impl Strategy<Value = Decimal> {
    (any::<i64>(), 0u32..6).prop_map(|(c, s)| Decimal::from_parts(c as i128, s).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- decimals --------------------------------------------------------

    #[test]
    fn decimal_display_parse_roundtrip(d in arb_decimal()) {
        let back = Decimal::parse(&d.to_string()).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn decimal_addition_commutes(a in arb_decimal(), b in arb_decimal()) {
        let ab = a.checked_add(b);
        let ba = b.checked_add(a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "asymmetric overflow: {:?}", other),
        }
    }

    #[test]
    fn decimal_add_sub_inverse(a in arb_decimal(), b in arb_decimal()) {
        if let Ok(sum) = a.checked_add(b) {
            if let Ok(back) = sum.checked_sub(b) {
                prop_assert_eq!(a, back);
            }
        }
    }

    #[test]
    fn decimal_comparison_total_and_consistent(a in arb_decimal(), b in arb_decimal()) {
        // Exactly one of <, ==, > holds, and it matches subtraction sign.
        let ord = a.cmp(&b);
        if let Ok(diff) = a.checked_sub(b) {
            let expect = if diff.is_zero() {
                Ordering::Equal
            } else if diff.is_negative() {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            prop_assert_eq!(ord, expect);
        }
    }

    #[test]
    fn decimal_mul_by_zero_and_one(a in arb_decimal()) {
        prop_assert_eq!(a.checked_mul(Decimal::ZERO).unwrap(), Decimal::ZERO);
        prop_assert_eq!(a.checked_mul(Decimal::ONE).unwrap(), a);
    }

    #[test]
    fn decimal_floor_ceiling_bracket(a in arb_decimal()) {
        let f = a.floor();
        let c = a.ceiling();
        prop_assert!(f <= a && a <= c);
        prop_assert!(c.checked_sub(f).unwrap() <= Decimal::ONE);
    }

    // ---- dates -----------------------------------------------------------

    #[test]
    fn datetime_timeline_roundtrip(ms in -30_000_000_000_000i64..30_000_000_000_000i64) {
        let dt = DateTime::from_timeline_millis(ms, Some(0));
        prop_assert_eq!(dt.timeline_millis(0), ms);
        // Display→parse roundtrip too.
        let back = DateTime::parse(&dt.to_string()).unwrap();
        prop_assert_eq!(back.timeline_millis(0), ms);
    }

    #[test]
    fn date_plus_duration_minus_duration(days in -100_000i64..100_000, months in -600i64..600) {
        let base = DateTime::from_timeline_millis(days * 86_400_000, Some(0)).date();
        let dur = Duration::from_months(months);
        let there = base.add_duration(dur).unwrap();
        // Month arithmetic clamps days, so the roundtrip may be lossy,
        // but it can never be off by more than the clamp (3 days).
        let back = there.add_duration(dur.negate()).unwrap();
        let diff = (back.to_datetime().timeline_millis(0)
            - base.to_datetime().timeline_millis(0)).abs();
        prop_assert!(diff <= 3 * 86_400_000, "{} → {} → {}", base, there, back);
    }

    #[test]
    fn duration_display_parse_roundtrip(months in -10_000i64..10_000, millis in -(86_400_000i64 * 1000)..(86_400_000 * 1000)) {
        // Mixed-sign durations have no lexical form; align the signs.
        let (months, millis) = if months < 0 { (months, -millis.abs()) } else { (months, millis.abs()) };
        let d = Duration { months, millis };
        let back = Duration::parse(&d.to_string()).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn date_comparison_matches_timeline(a in -50_000i64..50_000, b in -50_000i64..50_000) {
        let da = DateTime::from_timeline_millis(a * 86_400_000, Some(0)).date();
        let db = DateTime::from_timeline_millis(b * 86_400_000, Some(0)).date();
        prop_assert_eq!(da.compare(&db, 0), a.cmp(&b));
    }

    // ---- casts -----------------------------------------------------------

    #[test]
    fn integer_string_cast_roundtrip(i in any::<i64>()) {
        let v = AtomicValue::Integer(i);
        let s = v.cast_to(AtomicType::String).unwrap();
        let back = s.cast_to(AtomicType::Integer).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn decimal_string_cast_roundtrip(d in arb_decimal()) {
        let v = AtomicValue::Decimal(d);
        let s = v.cast_to(AtomicType::String).unwrap();
        let back = s.cast_to(AtomicType::Decimal).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn boolean_casts(b in any::<bool>()) {
        let v = AtomicValue::Boolean(b);
        for ty in [AtomicType::String, AtomicType::Integer, AtomicType::Double] {
            let cast = v.cast_to(ty).unwrap();
            let back = cast.cast_to(AtomicType::Boolean).unwrap();
            prop_assert_eq!(&v, &back, "via {}", ty.name());
        }
    }

    #[test]
    fn untyped_roundtrips_through_string(s in "[a-zA-Z0-9 .+-]{0,20}") {
        let v = AtomicValue::untyped(s.as_str());
        let cast = v.cast_to(AtomicType::String).unwrap();
        prop_assert_eq!(cast.string_value(), s);
    }

    #[test]
    fn castable_iff_cast_succeeds(i in any::<i64>(), ty in prop_oneof![
        Just(AtomicType::String), Just(AtomicType::Double), Just(AtomicType::Boolean),
        Just(AtomicType::Date)
    ]) {
        let v = AtomicValue::Integer(i);
        prop_assert_eq!(v.castable_to(ty), v.cast_to(ty).is_ok());
    }

    #[test]
    fn value_compare_antisymmetric(a in any::<i64>(), b in any::<i64>()) {
        let va = AtomicValue::Integer(a);
        let vb = AtomicValue::Integer(b);
        let ab = va.value_compare(&vb, 0).unwrap().unwrap();
        let ba = vb.value_compare(&va, 0).unwrap().unwrap();
        prop_assert_eq!(ab, ba.reverse());
    }
}
