//! # xqr-xdm — the XQuery 1.0 data model
//!
//! Foundation crate of the `xqr` workspace: qualified names with an
//! interning pool, the 19 XML Schema primitive atomic types with exact
//! decimal arithmetic and timeline-based date/time comparison, the seven
//! node kinds, sequence types with subtyping, and the engine-wide error
//! taxonomy.
//!
//! Everything above (parser, TokenStream, store, compiler, runtime) speaks
//! in these types; nothing here depends on any other workspace crate.

pub mod atomic;
pub mod datetime;
pub mod decimal;
pub mod error;
pub mod guard;
pub mod histogram;
pub mod node;
pub mod qname;
pub mod types;

pub use atomic::{fmt_float, parse_double, parse_integer, AtomicType, AtomicValue};
pub use datetime::{Date, DateTime, Duration, Gregorian, GregorianKind, Time, TzOffset};
pub use decimal::Decimal;
pub use error::{Error, ErrorCode, Result};
pub use guard::{CancelHandle, GuardUsage, Limits, MemorySink, QueryGuard};
pub use histogram::{LatencyHistogram, HISTOGRAM_BUCKETS};
pub use node::NodeKind;
pub use qname::{NameId, NamePool, QName};
pub use types::{ItemType, NameTest, Occurrence, SequenceType};
