//! Date, time and duration values for the `xs:date`/`xs:time`/`xs:dateTime`,
//! Gregorian fragment (`xs:gYear` family) and duration types.
//!
//! Implements lexical parsing, comparison on the timeline (missing
//! timezones resolved against an implicit timezone, default UTC), and the
//! arithmetic the XQuery operator table requires: dateTime ± duration,
//! dateTime − dateTime, duration scaling.

use crate::decimal::Decimal;
use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Timezone offset in minutes from UTC, e.g. `-300` for `-05:00`.
pub type TzOffset = i16;

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days from 1970-01-01 (the "civil" algorithm, Howard Hinnant style).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m as i64) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

/// A combined date+time+optional-timezone value (`xs:dateTime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DateTime {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    pub millis: u16,
    pub tz: Option<TzOffset>,
}

/// An `xs:date` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub tz: Option<TzOffset>,
}

/// An `xs:time` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Time {
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    pub millis: u16,
    pub tz: Option<TzOffset>,
}

/// Gregorian fragments: which components a `g*` value carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GregorianKind {
    Year,
    YearMonth,
    Month,
    MonthDay,
    Day,
}

/// One value for all five `xs:g*` types; unused fields are 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gregorian {
    pub kind: GregorianKind,
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub tz: Option<TzOffset>,
}

/// An `xs:duration`: signed months plus signed milliseconds. The derived
/// `xdt:yearMonthDuration` keeps `millis == 0`, `xdt:dayTimeDuration`
/// keeps `months == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Duration {
    pub months: i64,
    pub millis: i64,
}

impl Duration {
    pub const ZERO: Duration = Duration {
        months: 0,
        millis: 0,
    };

    pub fn from_months(months: i64) -> Self {
        Duration { months, millis: 0 }
    }

    pub fn from_millis(millis: i64) -> Self {
        Duration { months: 0, millis }
    }

    pub fn is_year_month(&self) -> bool {
        self.millis == 0
    }

    pub fn is_day_time(&self) -> bool {
        self.months == 0
    }

    /// Parse `PnYnMnDTnHnMnS` (possibly negative, fractional seconds).
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::value(format!("invalid duration literal: {s:?}"));
        let (neg, rest) = match s.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, s),
        };
        let rest = rest.strip_prefix('P').ok_or_else(bad)?;
        let (date_part, time_part) = match rest.find('T') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        if date_part.is_empty() && time_part.is_none_or(|t| t.is_empty()) {
            return Err(bad());
        }
        let mut months: i64 = 0;
        let mut millis: i64 = 0;
        let mut saw_any = false;

        let mut num = String::new();
        for ch in date_part.chars() {
            if ch.is_ascii_digit() {
                num.push(ch);
            } else {
                let v: i64 = num.parse().map_err(|_| bad())?;
                num.clear();
                saw_any = true;
                match ch {
                    'Y' => months += v * 12,
                    'M' => months += v,
                    'D' => millis += v * 86_400_000,
                    _ => return Err(bad()),
                }
            }
        }
        if !num.is_empty() {
            return Err(bad());
        }
        if let Some(tp) = time_part {
            if tp.is_empty() {
                return Err(bad());
            }
            let mut num = String::new();
            for ch in tp.chars() {
                if ch.is_ascii_digit() || ch == '.' {
                    num.push(ch);
                } else {
                    saw_any = true;
                    match ch {
                        'H' => {
                            let v: i64 = num.parse().map_err(|_| bad())?;
                            millis += v * 3_600_000;
                        }
                        'M' => {
                            let v: i64 = num.parse().map_err(|_| bad())?;
                            millis += v * 60_000;
                        }
                        'S' => {
                            let v: f64 = num.parse().map_err(|_| bad())?;
                            millis += (v * 1000.0).round() as i64;
                        }
                        _ => return Err(bad()),
                    }
                    num.clear();
                }
            }
            if !num.is_empty() {
                return Err(bad());
            }
        }
        if !saw_any {
            return Err(bad());
        }
        if neg {
            months = -months;
            millis = -millis;
        }
        Ok(Duration { months, millis })
    }

    pub fn checked_add(self, other: Duration) -> Result<Duration> {
        Ok(Duration {
            months: self
                .months
                .checked_add(other.months)
                .ok_or_else(|| Error::value("duration overflow"))?,
            millis: self
                .millis
                .checked_add(other.millis)
                .ok_or_else(|| Error::value("duration overflow"))?,
        })
    }

    pub fn negate(self) -> Duration {
        Duration {
            months: -self.months,
            millis: -self.millis,
        }
    }

    pub fn scale(self, factor: f64) -> Result<Duration> {
        if !factor.is_finite() {
            return Err(Error::value("cannot multiply duration by NaN/INF"));
        }
        Ok(Duration {
            months: (self.months as f64 * factor).round() as i64,
            millis: (self.millis as f64 * factor).round() as i64,
        })
    }

    /// Total seconds as a decimal (only meaningful for dayTimeDuration).
    pub fn seconds_decimal(&self) -> Decimal {
        Decimal::from_parts(self.millis as i128, 3).expect("scale 3 is valid")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.months == 0 && self.millis == 0 {
            return f.write_str("PT0S");
        }
        let neg = self.months < 0 || self.millis < 0;
        let months = self.months.abs();
        let millis = self.millis.abs();
        if neg {
            f.write_str("-")?;
        }
        f.write_str("P")?;
        let (y, m) = (months / 12, months % 12);
        if y > 0 {
            write!(f, "{y}Y")?;
        }
        if m > 0 {
            write!(f, "{m}M")?;
        }
        let days = millis / 86_400_000;
        let rem = millis % 86_400_000;
        if days > 0 {
            write!(f, "{days}D")?;
        }
        if rem > 0 {
            f.write_str("T")?;
            let h = rem / 3_600_000;
            let min = (rem % 3_600_000) / 60_000;
            let sec = (rem % 60_000) / 1000;
            let ms = rem % 1000;
            if h > 0 {
                write!(f, "{h}H")?;
            }
            if min > 0 {
                write!(f, "{min}M")?;
            }
            if sec > 0 || ms > 0 {
                if ms > 0 {
                    write!(f, "{sec}.{ms:03}S")?;
                } else {
                    write!(f, "{sec}S")?;
                }
            }
        }
        Ok(())
    }
}

fn parse_tz(s: &str) -> Result<(Option<TzOffset>, &str)> {
    if let Some(rest) = s.strip_suffix('Z') {
        return Ok((Some(0), rest));
    }
    if s.len() >= 6 {
        let tail = &s[s.len() - 6..];
        let b = tail.as_bytes();
        if (b[0] == b'+' || b[0] == b'-') && b[3] == b':' {
            let h: i16 = tail[1..3]
                .parse()
                .map_err(|_| Error::value("bad timezone"))?;
            let m: i16 = tail[4..6]
                .parse()
                .map_err(|_| Error::value("bad timezone"))?;
            if h > 14 || m > 59 {
                return Err(Error::value("timezone out of range"));
            }
            let sign = if b[0] == b'-' { -1 } else { 1 };
            return Ok((Some(sign * (h * 60 + m)), &s[..s.len() - 6]));
        }
    }
    Ok((None, s))
}

fn parse_frac_seconds(s: &str) -> Result<(u8, u16)> {
    let (sec_str, ms) = match s.find('.') {
        Some(i) => {
            let frac = &s[i + 1..];
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(Error::value("bad fractional seconds"));
            }
            let mut padded = frac.to_string();
            padded.truncate(3);
            while padded.len() < 3 {
                padded.push('0');
            }
            (&s[..i], padded.parse::<u16>().unwrap())
        }
        None => (s, 0),
    };
    let sec: u8 = sec_str.parse().map_err(|_| Error::value("bad seconds"))?;
    Ok((sec, ms))
}

fn parse_date_fields(s: &str) -> Result<(i32, u8, u8)> {
    // (-)YYYY-MM-DD with YYYY at least 4 digits.
    let bad = || Error::value(format!("invalid date lexical form: {s:?}"));
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s),
    };
    let parts: Vec<&str> = rest.split('-').collect();
    if parts.len() != 3 || parts[0].len() < 4 {
        return Err(bad());
    }
    let year: i32 = parts[0].parse().map_err(|_| bad())?;
    let year = if neg { -year } else { year };
    let month: u8 = parts[1].parse().map_err(|_| bad())?;
    let day: u8 = parts[2].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
        return Err(bad());
    }
    Ok((year, month, day))
}

fn parse_time_fields(s: &str) -> Result<(u8, u8, u8, u16)> {
    let bad = || Error::value(format!("invalid time lexical form: {s:?}"));
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(bad());
    }
    let hour: u8 = parts[0].parse().map_err(|_| bad())?;
    let minute: u8 = parts[1].parse().map_err(|_| bad())?;
    let (second, millis) = parse_frac_seconds(parts[2])?;
    if hour > 24 || minute > 59 || second > 59 || (hour == 24 && (minute != 0 || second != 0)) {
        return Err(bad());
    }
    Ok((hour % 24, minute, second, millis))
}

impl DateTime {
    pub fn parse(s: &str) -> Result<Self> {
        let (tz, rest) = parse_tz(s)?;
        let t_pos = rest
            .find('T')
            .ok_or_else(|| Error::value(format!("invalid dateTime: {s:?}")))?;
        let (year, month, day) = parse_date_fields(&rest[..t_pos])?;
        let (hour, minute, second, millis) = parse_time_fields(&rest[t_pos + 1..])?;
        Ok(DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            millis,
            tz,
        })
    }

    /// Milliseconds from the epoch on the UTC timeline; values without a
    /// timezone are interpreted in `implicit_tz` minutes.
    pub fn timeline_millis(&self, implicit_tz: TzOffset) -> i64 {
        let days = days_from_civil(self.year, self.month, self.day);
        let mut ms = days * 86_400_000
            + self.hour as i64 * 3_600_000
            + self.minute as i64 * 60_000
            + self.second as i64 * 1000
            + self.millis as i64;
        let tz = self.tz.unwrap_or(implicit_tz);
        ms -= tz as i64 * 60_000;
        ms
    }

    pub fn from_timeline_millis(ms: i64, tz: Option<TzOffset>) -> Self {
        let local = ms + tz.unwrap_or(0) as i64 * 60_000;
        let days = local.div_euclid(86_400_000);
        let rem = local.rem_euclid(86_400_000);
        let (year, month, day) = civil_from_days(days);
        DateTime {
            year,
            month,
            day,
            hour: (rem / 3_600_000) as u8,
            minute: ((rem % 3_600_000) / 60_000) as u8,
            second: ((rem % 60_000) / 1000) as u8,
            millis: (rem % 1000) as u16,
            tz,
        }
    }

    pub fn compare(&self, other: &DateTime, implicit_tz: TzOffset) -> Ordering {
        self.timeline_millis(implicit_tz)
            .cmp(&other.timeline_millis(implicit_tz))
    }

    /// Add a duration: months first (clamping the day), then millis.
    pub fn add_duration(&self, d: Duration) -> Result<DateTime> {
        let total_months = (self.year as i64) * 12 + (self.month as i64 - 1) + d.months;
        let year = total_months.div_euclid(12) as i32;
        let month = (total_months.rem_euclid(12) + 1) as u8;
        let day = self.day.min(days_in_month(year, month));
        let base = DateTime {
            year,
            month,
            day,
            ..*self
        };
        let ms = base.timeline_millis(0) + d.millis;
        Ok(Self::render_at(ms, self.tz))
    }

    /// Render a timeline instant in the given timezone so the local
    /// fields line up with that zone.
    fn render_at(timeline_ms: i64, tz: Option<TzOffset>) -> DateTime {
        let mut dt =
            DateTime::from_timeline_millis(timeline_ms + tz.unwrap_or(0) as i64 * 60_000, None);
        dt.tz = tz;
        dt
    }

    /// dateTime − dateTime → dayTimeDuration (in millis).
    pub fn sub_datetime(&self, other: &DateTime, implicit_tz: TzOffset) -> Duration {
        Duration::from_millis(
            self.timeline_millis(implicit_tz) - other.timeline_millis(implicit_tz),
        )
    }

    pub fn date(&self) -> Date {
        Date {
            year: self.year,
            month: self.month,
            day: self.day,
            tz: self.tz,
        }
    }

    pub fn time(&self) -> Time {
        Time {
            hour: self.hour,
            minute: self.minute,
            second: self.second,
            millis: self.millis,
            tz: self.tz,
        }
    }
}

fn fmt_tz(f: &mut fmt::Formatter<'_>, tz: Option<TzOffset>) -> fmt::Result {
    match tz {
        None => Ok(()),
        Some(0) => f.write_str("Z"),
        Some(off) => {
            let sign = if off < 0 { '-' } else { '+' };
            let a = off.abs();
            write!(f, "{sign}{:02}:{:02}", a / 60, a % 60)
        }
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )?;
        if self.millis > 0 {
            write!(f, ".{:03}", self.millis)?;
        }
        fmt_tz(f, self.tz)
    }
}

impl Date {
    pub fn parse(s: &str) -> Result<Self> {
        let (tz, rest) = parse_tz(s)?;
        let (year, month, day) = parse_date_fields(rest)?;
        Ok(Date {
            year,
            month,
            day,
            tz,
        })
    }

    pub fn to_datetime(&self) -> DateTime {
        DateTime {
            year: self.year,
            month: self.month,
            day: self.day,
            hour: 0,
            minute: 0,
            second: 0,
            millis: 0,
            tz: self.tz,
        }
    }

    pub fn compare(&self, other: &Date, implicit_tz: TzOffset) -> Ordering {
        self.to_datetime()
            .compare(&other.to_datetime(), implicit_tz)
    }

    pub fn add_duration(&self, d: Duration) -> Result<Date> {
        Ok(self.to_datetime().add_duration(d)?.date())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)?;
        fmt_tz(f, self.tz)
    }
}

impl Time {
    pub fn parse(s: &str) -> Result<Self> {
        let (tz, rest) = parse_tz(s)?;
        let (hour, minute, second, millis) = parse_time_fields(rest)?;
        Ok(Time {
            hour,
            minute,
            second,
            millis,
            tz,
        })
    }

    pub fn millis_of_day(&self, implicit_tz: TzOffset) -> i64 {
        let ms = self.hour as i64 * 3_600_000
            + self.minute as i64 * 60_000
            + self.second as i64 * 1000
            + self.millis as i64;
        ms - self.tz.unwrap_or(implicit_tz) as i64 * 60_000
    }

    pub fn compare(&self, other: &Time, implicit_tz: TzOffset) -> Ordering {
        self.millis_of_day(implicit_tz)
            .cmp(&other.millis_of_day(implicit_tz))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)?;
        if self.millis > 0 {
            write!(f, ".{:03}", self.millis)?;
        }
        fmt_tz(f, self.tz)
    }
}

impl Gregorian {
    pub fn parse(kind: GregorianKind, s: &str) -> Result<Self> {
        let bad = || Error::value(format!("invalid gregorian lexical form: {s:?}"));
        let (tz, rest) = parse_tz(s)?;
        let mut g = Gregorian {
            kind,
            year: 1,
            month: 1,
            day: 1,
            tz,
        };
        match kind {
            GregorianKind::Year => {
                let (neg, digits) = match rest.strip_prefix('-') {
                    Some(r) => (true, r),
                    None => (false, rest),
                };
                if digits.len() < 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(bad());
                }
                let y: i32 = digits.parse().map_err(|_| bad())?;
                g.year = if neg { -y } else { y };
            }
            GregorianKind::YearMonth => {
                let i = rest.rfind('-').ok_or_else(bad)?;
                if i == 0 {
                    return Err(bad());
                }
                let y: i32 = rest[..i].parse().map_err(|_| bad())?;
                let m: u8 = rest[i + 1..].parse().map_err(|_| bad())?;
                if !(1..=12).contains(&m) {
                    return Err(bad());
                }
                g.year = y;
                g.month = m;
            }
            GregorianKind::Month => {
                let r = rest.strip_prefix("--").ok_or_else(bad)?;
                let m: u8 = r.parse().map_err(|_| bad())?;
                if !(1..=12).contains(&m) {
                    return Err(bad());
                }
                g.month = m;
            }
            GregorianKind::MonthDay => {
                let r = rest.strip_prefix("--").ok_or_else(bad)?;
                let (ms, ds) = r.split_once('-').ok_or_else(bad)?;
                let m: u8 = ms.parse().map_err(|_| bad())?;
                let d: u8 = ds.parse().map_err(|_| bad())?;
                if !(1..=12).contains(&m) || d == 0 || d > days_in_month(2000, m) {
                    return Err(bad());
                }
                g.month = m;
                g.day = d;
            }
            GregorianKind::Day => {
                let r = rest.strip_prefix("---").ok_or_else(bad)?;
                let d: u8 = r.parse().map_err(|_| bad())?;
                if d == 0 || d > 31 {
                    return Err(bad());
                }
                g.day = d;
            }
        }
        Ok(g)
    }
}

impl fmt::Display for Gregorian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            GregorianKind::Year => write!(f, "{:04}", self.year)?,
            GregorianKind::YearMonth => write!(f, "{:04}-{:02}", self.year, self.month)?,
            GregorianKind::Month => write!(f, "--{:02}", self.month)?,
            GregorianKind::MonthDay => write!(f, "--{:02}-{:02}", self.month, self.day)?,
            GregorianKind::Day => write!(f, "---{:02}", self.day)?,
        }
        fmt_tz(f, self.tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse("1967-05-20").unwrap();
        assert_eq!(d.to_string(), "1967-05-20");
        let d = Date::parse("2002-05-20Z").unwrap();
        assert_eq!(d.tz, Some(0));
        let d = Date::parse("2002-05-20-05:00").unwrap();
        assert_eq!(d.tz, Some(-300));
        assert_eq!(d.to_string(), "2002-05-20-05:00");
    }

    #[test]
    fn date_rejects_invalid() {
        for s in [
            "2002-13-01",
            "2002-02-30",
            "2002-00-10",
            "02-01-01",
            "2002/01/01",
            "",
        ] {
            assert!(Date::parse(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(Date::parse("2000-02-29").is_ok());
        assert!(Date::parse("1900-02-29").is_err());
        assert!(Date::parse("2004-02-29").is_ok());
        assert!(Date::parse("2003-02-29").is_err());
    }

    #[test]
    fn datetime_parse_display_roundtrip() {
        for s in [
            "2004-09-14T12:00:00",
            "2004-09-14T12:00:00Z",
            "2004-09-14T12:00:00.500+05:30",
            "1967-01-01T00:00:00-11:00",
        ] {
            let dt = DateTime::parse(s).unwrap();
            assert_eq!(dt.to_string(), *s, "roundtrip {s}");
        }
    }

    #[test]
    fn timeline_comparison_uses_timezone() {
        let a = DateTime::parse("2004-01-01T12:00:00Z").unwrap();
        let b = DateTime::parse("2004-01-01T07:00:00-05:00").unwrap();
        assert_eq!(a.compare(&b, 0), Ordering::Equal);
        let c = DateTime::parse("2004-01-01T12:00:00+01:00").unwrap();
        assert_eq!(c.compare(&a, 0), Ordering::Less);
    }

    #[test]
    fn implicit_timezone_applies_to_untimezoned() {
        let a = DateTime::parse("2004-01-01T12:00:00").unwrap();
        let b = DateTime::parse("2004-01-01T12:00:00Z").unwrap();
        assert_eq!(a.compare(&b, 0), Ordering::Equal);
        assert_eq!(a.compare(&b, -60), Ordering::Greater); // local is behind UTC
    }

    #[test]
    fn duration_parse_and_display() {
        let d = Duration::parse("P1Y2M3DT4H5M6S").unwrap();
        assert_eq!(d.months, 14);
        assert_eq!(
            d.millis,
            3 * 86_400_000 + 4 * 3_600_000 + 5 * 60_000 + 6 * 1000
        );
        assert_eq!(d.to_string(), "P1Y2M3DT4H5M6S");
        assert_eq!(Duration::parse("PT0S").unwrap(), Duration::ZERO);
        assert_eq!(Duration::parse("-P1D").unwrap().millis, -86_400_000);
        assert_eq!(Duration::parse("PT1.5S").unwrap().millis, 1500);
    }

    #[test]
    fn duration_rejects_invalid() {
        for s in ["P", "PT", "1Y", "P1", "P1.5Y", "PYMD", ""] {
            assert!(Duration::parse(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn add_year_month_duration_clamps_day() {
        let d = Date::parse("2004-01-31").unwrap();
        let d2 = d.add_duration(Duration::from_months(1)).unwrap();
        assert_eq!(d2.to_string(), "2004-02-29");
        let d3 = Date::parse("2003-01-31")
            .unwrap()
            .add_duration(Duration::from_months(1))
            .unwrap();
        assert_eq!(d3.to_string(), "2003-02-28");
    }

    #[test]
    fn add_day_time_duration() {
        let dt = DateTime::parse("2004-12-31T23:00:00").unwrap();
        let dt2 = dt
            .add_duration(Duration::from_millis(2 * 3_600_000))
            .unwrap();
        assert_eq!(dt2.to_string(), "2005-01-01T01:00:00");
    }

    #[test]
    fn subtract_datetimes() {
        let a = DateTime::parse("2004-01-02T00:00:00Z").unwrap();
        let b = DateTime::parse("2004-01-01T00:00:00Z").unwrap();
        let d = a.sub_datetime(&b, 0);
        assert_eq!(d.millis, 86_400_000);
        assert_eq!(d.to_string(), "P1D");
    }

    #[test]
    fn time_parse_and_compare() {
        let a = Time::parse("13:20:00").unwrap();
        let b = Time::parse("13:20:30.555").unwrap();
        assert_eq!(a.compare(&b, 0), Ordering::Less);
        assert_eq!(b.to_string(), "13:20:30.555");
        assert!(Time::parse("25:00:00").is_err());
        assert_eq!(Time::parse("24:00:00").unwrap().hour, 0);
    }

    #[test]
    fn gregorian_forms() {
        assert_eq!(
            Gregorian::parse(GregorianKind::Year, "1967")
                .unwrap()
                .to_string(),
            "1967"
        );
        assert_eq!(
            Gregorian::parse(GregorianKind::YearMonth, "2004-09")
                .unwrap()
                .to_string(),
            "2004-09"
        );
        assert_eq!(
            Gregorian::parse(GregorianKind::Month, "--09")
                .unwrap()
                .to_string(),
            "--09"
        );
        assert_eq!(
            Gregorian::parse(GregorianKind::MonthDay, "--09-14")
                .unwrap()
                .to_string(),
            "--09-14"
        );
        assert_eq!(
            Gregorian::parse(GregorianKind::Day, "---14")
                .unwrap()
                .to_string(),
            "---14"
        );
        assert!(Gregorian::parse(GregorianKind::Month, "--13").is_err());
        assert!(Gregorian::parse(GregorianKind::Day, "---32").is_err());
    }

    #[test]
    fn civil_day_conversions_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (1967, 5, 20),
            (2204, 12, 31),
            (1, 1, 1),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }
}
