//! Per-execution resource governance: budgets, deadlines, cancellation.
//!
//! The paper's production lesson is that a shared query processor must
//! survive pathological queries and documents; a runaway FLWOR or a
//! 100k-deep document must fail with a *coded error*, never take the
//! process down or run unbounded. [`QueryGuard`] is the one object every
//! layer (parser, tokenstream, store build, evaluator, serializer)
//! consults: it carries the [`Limits`] chosen by the embedder, a
//! cooperative cancellation flag triggerable from another thread via
//! [`CancelHandle`], and consumption gauges that surface in `explain`
//! output.
//!
//! Hot-loop cost is kept to a relaxed atomic increment: the wall-clock
//! deadline is only polled every [`DEADLINE_STRIDE`] charges (clock reads
//! are orders of magnitude more expensive than the increment), while the
//! cancellation flag and the budget comparisons are checked on every
//! charge — both are single relaxed loads.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-memory accounting hook carried by a [`QueryGuard`].
///
/// The guard is the one object that travels from admission through the
/// evaluator into the parallel morsel executor, so it is also the only
/// dependency-free channel for charging execution-owned buffers (morsel
/// outputs) against a service-wide memory ledger. The trait lives here
/// so `xqr-xdm` stays at the bottom of the crate DAG; `xqr-pressure`
/// provides the real implementation and the service installs it per
/// query via [`QueryGuard::set_memory_sink`].
pub trait MemorySink: Send + Sync {
    fn charge(&self, bytes: u64);
    fn release(&self, bytes: u64);
}

/// How many budget charges happen between deadline (clock) polls.
/// Must be a power of two; the check is `count & (STRIDE-1) == 0`.
pub const DEADLINE_STRIDE: u64 = 256;

/// Resource limits for one query execution. `None` means unlimited; the
/// default is fully unlimited so embedders opt in per deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock budget from guard creation to completion.
    pub deadline: Option<Duration>,
    /// Materialized items the evaluator may produce (FLWOR bindings,
    /// sequence items, constructed nodes).
    pub max_items: Option<u64>,
    /// Tokens pulled through streaming iterators / replay buffers.
    pub max_tokens: Option<u64>,
    /// Bytes of serialized output.
    pub max_output_bytes: Option<u64>,
    /// Element nesting depth the XML parser accepts.
    pub max_xml_depth: Option<u64>,
    /// Bytes of XML document text a single parse may consume.
    pub max_document_bytes: Option<u64>,
}

impl Limits {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Limits::default()
    }

    /// True when every field is `None` — lets hot paths skip charging
    /// entirely for unguarded executions.
    pub fn is_unlimited(&self) -> bool {
        *self == Limits::default()
    }

    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    pub fn with_max_items(mut self, n: u64) -> Self {
        self.max_items = Some(n);
        self
    }

    pub fn with_max_tokens(mut self, n: u64) -> Self {
        self.max_tokens = Some(n);
        self
    }

    pub fn with_max_output_bytes(mut self, n: u64) -> Self {
        self.max_output_bytes = Some(n);
        self
    }

    pub fn with_max_xml_depth(mut self, n: u64) -> Self {
        self.max_xml_depth = Some(n);
        self
    }

    pub fn with_max_document_bytes(mut self, n: u64) -> Self {
        self.max_document_bytes = Some(n);
        self
    }
}

impl std::fmt::Display for Limits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unlimited() {
            return write!(f, "unlimited");
        }
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "-".into(), |n| n.to_string())
        }
        write!(
            f,
            "deadline: {} items: {} tokens: {} output: {} depth: {} doc: {}",
            self.deadline
                .map_or_else(|| "-".into(), |d| format!("{}ms", d.as_millis())),
            opt(self.max_items),
            opt(self.max_tokens),
            opt(self.max_output_bytes),
            opt(self.max_xml_depth),
            opt(self.max_document_bytes),
        )
    }
}

/// Consumption snapshot, taken via [`QueryGuard::usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardUsage {
    pub items: u64,
    pub tokens: u64,
    pub output_bytes: u64,
    pub peak_depth: u64,
}

struct GuardInner {
    limits: Limits,
    /// Precomputed absolute deadline; `None` when there is no time limit.
    deadline_at: Option<Instant>,
    cancelled: AtomicBool,
    items: AtomicU64,
    tokens: AtomicU64,
    output_bytes: AtomicU64,
    peak_depth: AtomicU64,
    /// Brownout hint set at admission: when true the parallel executor
    /// runs its serial path instead of fanning out morsels.
    shed_parallel: AtomicBool,
    /// Optional service-wide memory accounting sink (set once at
    /// admission, read from the executor).
    memory: OnceLock<Arc<dyn MemorySink>>,
}

/// Shared, cheaply clonable guard for one query execution.
#[derive(Clone)]
pub struct QueryGuard {
    inner: Arc<GuardInner>,
}

/// Embedder-facing cancellation trigger, safe to move to another thread.
/// Cancelling is idempotent; the running query observes it at its next
/// budget charge and fails with `err:XQRL0003`.
#[derive(Clone)]
pub struct CancelHandle {
    inner: Arc<GuardInner>,
}

impl CancelHandle {
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

impl QueryGuard {
    /// Start a guarded execution: the deadline clock starts now.
    pub fn new(limits: Limits) -> Self {
        let deadline_at = limits.deadline.map(|d| Instant::now() + d);
        QueryGuard {
            inner: Arc::new(GuardInner {
                limits,
                deadline_at,
                cancelled: AtomicBool::new(false),
                items: AtomicU64::new(0),
                tokens: AtomicU64::new(0),
                output_bytes: AtomicU64::new(0),
                peak_depth: AtomicU64::new(0),
                shed_parallel: AtomicBool::new(false),
                memory: OnceLock::new(),
            }),
        }
    }

    /// A guard that never trips — the no-cost default carried by
    /// unguarded executions.
    pub fn unlimited() -> Self {
        QueryGuard::new(Limits::unlimited())
    }

    pub fn limits(&self) -> &Limits {
        &self.inner.limits
    }

    /// True when no limit is set and cancellation is impossible to
    /// trigger... which it never is (a handle may exist), so this only
    /// reports whether the *limits* are all absent. Hot loops still
    /// charge; the charge is two relaxed atomics.
    pub fn is_unlimited(&self) -> bool {
        self.inner.limits.is_unlimited()
    }

    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            inner: self.inner.clone(),
        }
    }

    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Consumption so far. Gauges are updated with relaxed ordering, so a
    /// snapshot taken mid-run from another thread may lag slightly.
    pub fn usage(&self) -> GuardUsage {
        GuardUsage {
            items: self.inner.items.load(Ordering::Relaxed),
            tokens: self.inner.tokens.load(Ordering::Relaxed),
            output_bytes: self.inner.output_bytes.load(Ordering::Relaxed),
            peak_depth: self.inner.peak_depth.load(Ordering::Relaxed),
        }
    }

    /// The absolute wall-clock deadline, if this execution has one.
    /// Admission queues use it to drop work whose budget expired while
    /// it waited — queue-wait is charged against the same clock the
    /// evaluator polls.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.inner.deadline_at
    }

    /// Mark this execution for morsel shedding: the parallel executor
    /// will run inline instead of fanning out. Set at admission when
    /// the memory ledger is at Yellow or worse; sticky for the guard's
    /// lifetime (one query), so a mid-flight state change cannot split
    /// a query across strategies.
    pub fn shed_parallel(&self) {
        self.inner.shed_parallel.store(true, Ordering::Relaxed);
    }

    /// Whether morsel shedding was requested for this execution.
    pub fn parallel_shed(&self) -> bool {
        self.inner.shed_parallel.load(Ordering::Relaxed)
    }

    /// Install the process-memory accounting sink for this execution.
    /// First call wins; later calls are ignored (the guard is shared,
    /// and re-pointing accounting mid-query would leak charges).
    pub fn set_memory_sink(&self, sink: Arc<dyn MemorySink>) {
        let _ = self.inner.memory.set(sink);
    }

    /// Charge execution-owned buffer bytes against the installed sink,
    /// if any. Pair every call with [`QueryGuard::release_memory`].
    pub fn charge_memory(&self, bytes: u64) {
        if let Some(sink) = self.inner.memory.get() {
            sink.charge(bytes);
        }
    }

    /// Release bytes previously charged via [`QueryGuard::charge_memory`].
    pub fn release_memory(&self, bytes: u64) {
        if let Some(sink) = self.inner.memory.get() {
            sink.release(bytes);
        }
    }

    /// Unconditionally poll cancellation and the wall-clock deadline —
    /// no stride skip. Called once at execution entry so a query whose
    /// budget expired (or was cancelled) while it sat in a run queue
    /// fails before doing any work; the stride-sampled charges would
    /// never notice on a query too cheap to cross a stride boundary.
    pub fn check_startup(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(Error::cancelled("query cancelled by embedder"));
        }
        if let Some(at) = self.inner.deadline_at {
            if Instant::now() > at {
                return Err(Error::timeout(format!(
                    "deadline of {:?} exceeded before execution started",
                    self.inner.limits.deadline.unwrap_or_default()
                )));
            }
        }
        Ok(())
    }

    #[inline]
    fn check_cancel_and_deadline(&self, count_before: u64, n: u64) -> Result<()> {
        if self.is_cancelled() {
            return Err(Error::cancelled("query cancelled by embedder"));
        }
        // Poll the clock only when the counter crosses a stride boundary,
        // so long runs pay ~1/256th of the clock cost. `n` can be large
        // (byte charges), so detect boundary *crossing*, not landing.
        if let Some(at) = self.inner.deadline_at {
            let crossed = (count_before + n) / DEADLINE_STRIDE > count_before / DEADLINE_STRIDE;
            if (crossed || n >= DEADLINE_STRIDE) && Instant::now() > at {
                return Err(Error::timeout(format!(
                    "deadline of {:?} exceeded",
                    self.inner.limits.deadline.unwrap_or_default()
                )));
            }
        }
        Ok(())
    }

    /// Charge `n` materialized items. Called from the evaluator's item
    /// funnel, so this is the main cancellation/deadline poll point.
    #[inline]
    pub fn note_items(&self, n: u64) -> Result<()> {
        let before = self.inner.items.fetch_add(n, Ordering::Relaxed);
        if let Some(max) = self.inner.limits.max_items {
            if before + n > max {
                return Err(Error::limit(format!(
                    "materialized-item budget of {max} exceeded"
                )));
            }
        }
        self.check_cancel_and_deadline(before, n)
    }

    /// Charge `n` streamed/buffered tokens.
    #[inline]
    pub fn note_tokens(&self, n: u64) -> Result<()> {
        let before = self.inner.tokens.fetch_add(n, Ordering::Relaxed);
        if let Some(max) = self.inner.limits.max_tokens {
            if before + n > max {
                return Err(Error::limit(format!("token budget of {max} exceeded")));
            }
        }
        self.check_cancel_and_deadline(before, n)
    }

    /// Charge `n` bytes of serialized output.
    #[inline]
    pub fn note_output_bytes(&self, n: u64) -> Result<()> {
        let before = self.inner.output_bytes.fetch_add(n, Ordering::Relaxed);
        if let Some(max) = self.inner.limits.max_output_bytes {
            if before + n > max {
                return Err(Error::limit(format!(
                    "output budget of {max} bytes exceeded"
                )));
            }
        }
        self.check_cancel_and_deadline(before, n)
    }

    /// Record entering XML nesting depth `depth` (1-based). The parser's
    /// own hard depth cap still applies; this enforces the per-execution
    /// limit and tracks the peak for observability.
    #[inline]
    pub fn enter_depth(&self, depth: u64) -> Result<()> {
        self.inner.peak_depth.fetch_max(depth, Ordering::Relaxed);
        if let Some(max) = self.inner.limits.max_xml_depth {
            if depth > max {
                return Err(Error::limit(format!(
                    "XML nesting depth limit of {max} exceeded"
                )));
            }
        }
        Ok(())
    }

    /// Enforce the per-parse document size cap against `total` bytes of
    /// input consumed so far.
    #[inline]
    pub fn check_document_bytes(&self, total: u64) -> Result<()> {
        if let Some(max) = self.inner.limits.max_document_bytes {
            if total > max {
                return Err(Error::limit(format!(
                    "document size limit of {max} bytes exceeded"
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for QueryGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryGuard")
            .field("limits", &self.inner.limits)
            .field("cancelled", &self.is_cancelled())
            .field("usage", &self.usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;

    #[test]
    fn unlimited_never_trips() {
        let g = QueryGuard::unlimited();
        for _ in 0..10_000 {
            g.note_items(1).unwrap();
            g.note_tokens(3).unwrap();
            g.note_output_bytes(100).unwrap();
        }
        g.enter_depth(1_000_000).unwrap();
        g.check_document_bytes(u64::MAX).unwrap();
        let u = g.usage();
        assert_eq!(u.items, 10_000);
        assert_eq!(u.tokens, 30_000);
        assert_eq!(u.peak_depth, 1_000_000);
    }

    #[test]
    fn item_budget_trips_at_boundary() {
        let g = QueryGuard::new(Limits::unlimited().with_max_items(10));
        for _ in 0..10 {
            g.note_items(1).unwrap();
        }
        let err = g.note_items(1).unwrap_err();
        assert_eq!(err.code, ErrorCode::Limit);
    }

    #[test]
    fn cancellation_observed_from_handle() {
        let g = QueryGuard::unlimited();
        let h = g.cancel_handle();
        g.note_items(1).unwrap();
        std::thread::spawn(move || h.cancel()).join().unwrap();
        let err = g.note_items(1).unwrap_err();
        assert_eq!(err.code, ErrorCode::Cancelled);
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let g = QueryGuard::new(Limits::unlimited().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(10));
        // Charge enough to cross a stride boundary and poll the clock.
        let mut tripped = None;
        for _ in 0..=DEADLINE_STRIDE {
            if let Err(e) = g.note_items(1) {
                tripped = Some(e);
                break;
            }
        }
        assert_eq!(
            tripped.expect("deadline should fire").code,
            ErrorCode::Timeout
        );
    }

    #[test]
    fn large_charges_poll_the_clock() {
        let g = QueryGuard::new(Limits::unlimited().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(10));
        // A single charge bigger than the stride must not skip the poll.
        let err = g.note_output_bytes(100_000).unwrap_err();
        assert_eq!(err.code, ErrorCode::Timeout);
    }

    #[test]
    fn depth_and_doc_size_limits() {
        let g = QueryGuard::new(
            Limits::unlimited()
                .with_max_xml_depth(100)
                .with_max_document_bytes(1000),
        );
        g.enter_depth(100).unwrap();
        assert_eq!(g.enter_depth(101).unwrap_err().code, ErrorCode::Limit);
        g.check_document_bytes(1000).unwrap();
        assert_eq!(
            g.check_document_bytes(1001).unwrap_err().code,
            ErrorCode::Limit
        );
        assert_eq!(g.usage().peak_depth, 101);
    }

    #[test]
    fn display_formats_limits() {
        let l = Limits::unlimited()
            .with_deadline(Duration::from_millis(250))
            .with_max_items(1000);
        let s = l.to_string();
        assert!(s.contains("250ms"), "{s}");
        assert!(s.contains("items: 1000"), "{s}");
        assert_eq!(Limits::unlimited().to_string(), "unlimited");
    }
}
