//! Sequence types: the static-typing vocabulary from the talk's "XQuery
//! type system components" slide — atomic types, node-kind tests with
//! optional name tests, `empty`, alternation via the `AnyItem` top, and
//! the four occurrence indicators.
//!
//! The compiler's type inference (the `xqr-compiler` crate) manipulates these:
//! `intersect`, `subtype of`, and occurrence algebra are all here so they
//! can be unit-tested in isolation.

use crate::atomic::AtomicType;
use crate::node::NodeKind;
use crate::qname::QName;
use std::fmt;

/// How many items a sequence type allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly one item (no indicator).
    One,
    /// `?` — zero or one.
    Optional,
    /// `*` — zero or more.
    ZeroOrMore,
    /// `+` — one or more.
    OneOrMore,
}

impl Occurrence {
    pub fn allows_empty(self) -> bool {
        matches!(self, Occurrence::Optional | Occurrence::ZeroOrMore)
    }

    pub fn allows_many(self) -> bool {
        matches!(self, Occurrence::ZeroOrMore | Occurrence::OneOrMore)
    }

    /// Is every cardinality allowed by `self` also allowed by `other`?
    pub fn is_sub(self, other: Occurrence) -> bool {
        use Occurrence::*;
        match (self, other) {
            (a, b) if a == b => true,
            (One, _) => true,
            (Optional, ZeroOrMore) => true,
            (OneOrMore, ZeroOrMore) => true,
            _ => false,
        }
    }

    /// Cardinality of the concatenation of two sequences.
    pub fn concat(self, other: Occurrence) -> Occurrence {
        use Occurrence::*;
        match (self, other) {
            (One, _) | (_, One) | (OneOrMore, _) | (_, OneOrMore) => OneOrMore,
            _ => ZeroOrMore,
        }
    }

    /// Least upper bound: the loosest of the two.
    pub fn union(self, other: Occurrence) -> Occurrence {
        use Occurrence::*;
        match (self, other) {
            (a, b) if a == b => a,
            (One, Optional) | (Optional, One) => Optional,
            (One, OneOrMore) | (OneOrMore, One) => OneOrMore,
            _ => ZeroOrMore,
        }
    }

    /// Cardinality after iterating (`for`): each binding may yield the
    /// body's cardinality, so only "never empty × never empty" stays +.
    pub fn for_loop(self, body: Occurrence) -> Occurrence {
        use Occurrence::*;
        match (self, body) {
            (One, b) => b,
            (OneOrMore, One) | (OneOrMore, OneOrMore) => OneOrMore,
            _ => ZeroOrMore,
        }
    }

    pub fn indicator(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        }
    }
}

/// A name test inside a kind test: wildcard or a specific expanded name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NameTest {
    Any,
    Name(QName),
}

impl NameTest {
    pub fn matches(&self, name: &QName) -> bool {
        match self {
            NameTest::Any => true,
            NameTest::Name(q) => q == name,
        }
    }
}

/// The item-type component of a sequence type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ItemType {
    /// `item()` — anything.
    AnyItem,
    /// An atomic type (includes `xdt:untypedAtomic` etc.).
    Atomic(AtomicType),
    /// `node()` — any node kind.
    AnyNode,
    /// `element(name?)`, `attribute(name?)`, etc.
    Kind(NodeKind, NameTest),
}

impl ItemType {
    pub fn element(name: Option<QName>) -> Self {
        ItemType::Kind(
            NodeKind::Element,
            name.map_or(NameTest::Any, NameTest::Name),
        )
    }

    pub fn attribute(name: Option<QName>) -> Self {
        ItemType::Kind(
            NodeKind::Attribute,
            name.map_or(NameTest::Any, NameTest::Name),
        )
    }

    pub fn is_node_type(&self) -> bool {
        matches!(self, ItemType::AnyNode | ItemType::Kind(..))
    }

    pub fn is_atomic_type(&self) -> bool {
        matches!(self, ItemType::Atomic(_))
    }

    /// Structural subtyping between item types.
    pub fn is_subtype_of(&self, other: &ItemType) -> bool {
        use ItemType::*;
        match (self, other) {
            (_, AnyItem) => true,
            (AnyItem, _) => false,
            (Atomic(a), Atomic(b)) => a.is_subtype_of(*b),
            (Atomic(_), _) | (_, Atomic(_)) => false,
            (AnyNode | Kind(..), AnyNode) => true,
            (AnyNode, Kind(..)) => false,
            (Kind(k1, n1), Kind(k2, n2)) => k1 == k2 && (matches!(n2, NameTest::Any) || n1 == n2),
        }
    }

    /// Greatest lower bound if non-empty; `None` means the intersection
    /// is provably empty (used to fold `instance of` to `false`).
    pub fn intersect(&self, other: &ItemType) -> Option<ItemType> {
        use ItemType::*;
        if self.is_subtype_of(other) {
            return Some(self.clone());
        }
        if other.is_subtype_of(self) {
            return Some(other.clone());
        }
        match (self, other) {
            (AnyNode, Kind(..)) => Some(other.clone()),
            (Kind(..), AnyNode) => Some(self.clone()),
            (Atomic(a), Atomic(b)) => {
                if a.is_subtype_of(*b) {
                    Some(Atomic(*a))
                } else if b.is_subtype_of(*a) {
                    Some(Atomic(*b))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for ItemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemType::AnyItem => f.write_str("item()"),
            ItemType::Atomic(a) => f.write_str(a.name()),
            ItemType::AnyNode => f.write_str("node()"),
            ItemType::Kind(k, n) => {
                let kind = match k {
                    NodeKind::Document => "document-node",
                    NodeKind::Element => "element",
                    NodeKind::Attribute => "attribute",
                    NodeKind::Text => "text",
                    NodeKind::Namespace => "namespace-node",
                    NodeKind::ProcessingInstruction => "processing-instruction",
                    NodeKind::Comment => "comment",
                };
                match n {
                    NameTest::Any => write!(f, "{kind}()"),
                    NameTest::Name(q) => write!(f, "{kind}({q})"),
                }
            }
        }
    }
}

/// A full sequence type: `empty()` or item type + occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SequenceType {
    Empty,
    Of(ItemType, Occurrence),
}

impl SequenceType {
    pub const ANY: SequenceType = SequenceType::Of(ItemType::AnyItem, Occurrence::ZeroOrMore);

    pub fn one(item: ItemType) -> Self {
        SequenceType::Of(item, Occurrence::One)
    }

    pub fn optional(item: ItemType) -> Self {
        SequenceType::Of(item, Occurrence::Optional)
    }

    pub fn zero_or_more(item: ItemType) -> Self {
        SequenceType::Of(item, Occurrence::ZeroOrMore)
    }

    pub fn one_or_more(item: ItemType) -> Self {
        SequenceType::Of(item, Occurrence::OneOrMore)
    }

    pub fn atomic(ty: AtomicType) -> Self {
        Self::one(ItemType::Atomic(ty))
    }

    pub fn occurrence(&self) -> Option<Occurrence> {
        match self {
            SequenceType::Empty => None,
            SequenceType::Of(_, o) => Some(*o),
        }
    }

    pub fn item_type(&self) -> Option<&ItemType> {
        match self {
            SequenceType::Empty => None,
            SequenceType::Of(i, _) => Some(i),
        }
    }

    pub fn allows_empty(&self) -> bool {
        match self {
            SequenceType::Empty => true,
            SequenceType::Of(_, o) => o.allows_empty(),
        }
    }

    /// `type1 subtype of type2?` from the talk's type-operations list.
    pub fn is_subtype_of(&self, other: &SequenceType) -> bool {
        match (self, other) {
            (SequenceType::Empty, SequenceType::Empty) => true,
            (SequenceType::Empty, SequenceType::Of(_, o)) => o.allows_empty(),
            (SequenceType::Of(..), SequenceType::Empty) => false,
            (SequenceType::Of(i1, o1), SequenceType::Of(i2, o2)) => {
                o1.is_sub(*o2) && i1.is_subtype_of(i2)
            }
        }
    }

    /// Least upper bound (`type1 | type2` collapsed to our lattice).
    pub fn union(&self, other: &SequenceType) -> SequenceType {
        match (self, other) {
            (SequenceType::Empty, SequenceType::Empty) => SequenceType::Empty,
            (SequenceType::Empty, SequenceType::Of(i, o))
            | (SequenceType::Of(i, o), SequenceType::Empty) => {
                let o = match o {
                    Occurrence::One => Occurrence::Optional,
                    Occurrence::OneOrMore => Occurrence::ZeroOrMore,
                    other => *other,
                };
                SequenceType::Of(i.clone(), o)
            }
            (SequenceType::Of(i1, o1), SequenceType::Of(i2, o2)) => {
                let item = if i1.is_subtype_of(i2) {
                    i2.clone()
                } else if i2.is_subtype_of(i1) {
                    i1.clone()
                } else if i1.is_node_type() && i2.is_node_type() {
                    ItemType::AnyNode
                } else if let (ItemType::Atomic(a), ItemType::Atomic(b)) = (i1, i2) {
                    // Numeric lub keeps numeric-ness visible to later rules.
                    if a.is_numeric() && b.is_numeric() {
                        ItemType::Atomic(AtomicType::Double)
                    } else {
                        ItemType::Atomic(AtomicType::AnyAtomic)
                    }
                } else {
                    ItemType::AnyItem
                };
                SequenceType::Of(item, o1.union(*o2))
            }
        }
    }

    /// Sequence concatenation `(t1, t2)`.
    pub fn concat(&self, other: &SequenceType) -> SequenceType {
        match (self, other) {
            (SequenceType::Empty, t) | (t, SequenceType::Empty) => t.clone(),
            (SequenceType::Of(i1, o1), SequenceType::Of(i2, o2)) => {
                let merged =
                    SequenceType::Of(i1.clone(), *o1).union(&SequenceType::Of(i2.clone(), *o2));
                match merged {
                    SequenceType::Of(i, _) => SequenceType::Of(i, o1.concat(*o2)),
                    e => e,
                }
            }
        }
    }

    /// The type after iterating a `for` over `self` with body type `body`.
    pub fn for_loop(&self, body: &SequenceType) -> SequenceType {
        match (self, body) {
            (SequenceType::Empty, _) | (_, SequenceType::Empty) => SequenceType::Empty,
            (SequenceType::Of(_, o1), SequenceType::Of(i2, o2)) => {
                SequenceType::Of(i2.clone(), o1.for_loop(*o2))
            }
        }
    }

    /// The type of one item drawn from this sequence (for variable
    /// binding in `for`).
    pub fn item_one(&self) -> SequenceType {
        match self {
            SequenceType::Empty => SequenceType::Empty,
            SequenceType::Of(i, _) => SequenceType::one(i.clone()),
        }
    }
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceType::Empty => f.write_str("empty()"),
            SequenceType::Of(i, o) => write!(f, "{}{}", i, o.indicator()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_subtyping() {
        use Occurrence::*;
        assert!(One.is_sub(Optional));
        assert!(One.is_sub(ZeroOrMore));
        assert!(One.is_sub(OneOrMore));
        assert!(Optional.is_sub(ZeroOrMore));
        assert!(!Optional.is_sub(OneOrMore));
        assert!(!ZeroOrMore.is_sub(OneOrMore));
        assert!(OneOrMore.is_sub(ZeroOrMore));
    }

    #[test]
    fn occurrence_concat() {
        use Occurrence::*;
        assert_eq!(One.concat(One), OneOrMore);
        assert_eq!(Optional.concat(Optional), ZeroOrMore);
        assert_eq!(Optional.concat(OneOrMore), OneOrMore);
    }

    #[test]
    fn item_subtyping() {
        let any_el = ItemType::element(None);
        let named = ItemType::element(Some(QName::local("book")));
        assert!(named.is_subtype_of(&any_el));
        assert!(!any_el.is_subtype_of(&named));
        assert!(any_el.is_subtype_of(&ItemType::AnyNode));
        assert!(ItemType::AnyNode.is_subtype_of(&ItemType::AnyItem));
        assert!(ItemType::Atomic(AtomicType::Integer)
            .is_subtype_of(&ItemType::Atomic(AtomicType::Decimal)));
        assert!(!ItemType::Atomic(AtomicType::Integer).is_subtype_of(&ItemType::AnyNode));
    }

    #[test]
    fn item_intersect() {
        let any_el = ItemType::element(None);
        let named = ItemType::element(Some(QName::local("book")));
        assert_eq!(any_el.intersect(&named), Some(named.clone()));
        assert_eq!(
            ItemType::Atomic(AtomicType::String).intersect(&ItemType::Atomic(AtomicType::Integer)),
            None
        );
        assert_eq!(named.intersect(&ItemType::AnyNode), Some(named.clone()));
        let attr = ItemType::attribute(None);
        assert_eq!(named.intersect(&attr), None);
    }

    #[test]
    fn sequence_subtyping() {
        let one_int = SequenceType::atomic(AtomicType::Integer);
        let opt_dec = SequenceType::optional(ItemType::Atomic(AtomicType::Decimal));
        assert!(one_int.is_subtype_of(&opt_dec));
        assert!(!opt_dec.is_subtype_of(&one_int));
        assert!(SequenceType::Empty.is_subtype_of(&opt_dec));
        assert!(!SequenceType::Empty.is_subtype_of(&SequenceType::one_or_more(ItemType::AnyItem)));
        assert!(one_int.is_subtype_of(&SequenceType::ANY));
    }

    #[test]
    fn union_loosens() {
        let a = SequenceType::atomic(AtomicType::Integer);
        let b = SequenceType::Empty;
        assert_eq!(
            a.union(&b),
            SequenceType::optional(ItemType::Atomic(AtomicType::Integer))
        );
        let el = SequenceType::one(ItemType::element(None));
        let at = SequenceType::one(ItemType::attribute(None));
        assert_eq!(el.union(&at), SequenceType::one(ItemType::AnyNode));
    }

    #[test]
    fn concat_types() {
        let a = SequenceType::atomic(AtomicType::Integer);
        let joined = a.concat(&a);
        assert_eq!(
            joined,
            SequenceType::one_or_more(ItemType::Atomic(AtomicType::Integer))
        );
        assert_eq!(a.concat(&SequenceType::Empty), a);
    }

    #[test]
    fn for_loop_types() {
        let src = SequenceType::zero_or_more(ItemType::element(None));
        let body = SequenceType::atomic(AtomicType::Integer);
        assert_eq!(
            src.for_loop(&body),
            SequenceType::zero_or_more(ItemType::Atomic(AtomicType::Integer))
        );
        let src1 = SequenceType::one_or_more(ItemType::element(None));
        assert_eq!(
            src1.for_loop(&body),
            SequenceType::one_or_more(ItemType::Atomic(AtomicType::Integer))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(SequenceType::ANY.to_string(), "item()*");
        assert_eq!(
            SequenceType::optional(ItemType::Atomic(AtomicType::Integer)).to_string(),
            "xs:integer?"
        );
        assert_eq!(
            SequenceType::one(ItemType::element(Some(QName::local("a")))).to_string(),
            "element(a)"
        );
        assert_eq!(SequenceType::Empty.to_string(), "empty()");
    }
}
