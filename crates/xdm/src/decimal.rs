//! Fixed-point `xs:decimal` arithmetic.
//!
//! The talk points out that `xs:decimal` value comparison is only "almost
//! transitive ... due to the loss of precision"; we avoid that trap by
//! storing decimals exactly as a 128-bit coefficient with a decimal scale,
//! so comparison is exact and total within the supported range.

use crate::error::{Error, ErrorCode, Result};
use std::cmp::Ordering;
use std::fmt;

/// Maximum digits after the decimal point we keep. Division rounds
/// (half-even) to this scale, everything else is exact or overflows.
pub const MAX_SCALE: u32 = 18;

const POW10: [i128; 39] = {
    let mut t = [0i128; 39];
    let mut i = 0;
    let mut v = 1i128;
    while i < 39 {
        t[i] = v;
        if i < 38 {
            v = v.saturating_mul(10);
        }
        i += 1;
    }
    t
};

/// An exact decimal: `coeff * 10^-scale`. Always kept in normalized form
/// (no trailing zero digits in the fraction, zero has scale 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    coeff: i128,
    scale: u32,
}

impl Decimal {
    pub const ZERO: Decimal = Decimal { coeff: 0, scale: 0 };
    pub const ONE: Decimal = Decimal { coeff: 1, scale: 0 };

    /// Build from a raw coefficient and scale, normalizing.
    pub fn from_parts(coeff: i128, scale: u32) -> Result<Self> {
        if scale > 38 {
            return Err(Error::new(ErrorCode::Overflow, "decimal scale too large"));
        }
        Ok(Decimal { coeff, scale }.normalize())
    }

    pub fn from_i64(v: i64) -> Self {
        Decimal {
            coeff: v as i128,
            scale: 0,
        }
    }

    fn normalize(mut self) -> Self {
        if self.coeff == 0 {
            self.scale = 0;
            return self;
        }
        while self.scale > 0 && self.coeff % 10 == 0 {
            self.coeff /= 10;
            self.scale -= 1;
        }
        self
    }

    pub fn coefficient(&self) -> i128 {
        self.coeff
    }

    pub fn scale(&self) -> u32 {
        self.scale
    }

    pub fn is_zero(&self) -> bool {
        self.coeff == 0
    }

    pub fn is_negative(&self) -> bool {
        self.coeff < 0
    }

    /// Parse an `xs:decimal` lexical form: optional sign, digits, optional
    /// fraction. Leading `+`, surrounding whitespace NOT accepted here —
    /// callers trim per the whitespace facet first.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || Error::value(format!("invalid xs:decimal literal: {s:?}"));
        let bytes = s.as_bytes();
        if bytes.is_empty() {
            return Err(bad());
        }
        let (neg, rest) = match bytes[0] {
            b'-' => (true, &s[1..]),
            b'+' => (false, &s[1..]),
            _ => (false, s),
        };
        if rest.is_empty() || rest == "." {
            return Err(bad());
        }
        let (int_part, frac_part) = match rest.find('.') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(bad());
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(bad());
        }
        // Truncate excess fraction digits beyond what i128 can hold exactly;
        // lexical forms longer than 38 significant digits overflow.
        let mut coeff: i128 = 0;
        let mut scale: u32 = 0;
        for b in int_part.bytes() {
            coeff = coeff
                .checked_mul(10)
                .and_then(|c| c.checked_add((b - b'0') as i128))
                .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        }
        for b in frac_part.bytes() {
            if scale >= MAX_SCALE {
                break; // round toward zero past max scale
            }
            coeff = coeff
                .checked_mul(10)
                .and_then(|c| c.checked_add((b - b'0') as i128))
                .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
            scale += 1;
        }
        if neg {
            coeff = -coeff;
        }
        Ok(Decimal { coeff, scale }.normalize())
    }

    /// Rescale both operands to a common scale. Errors on overflow.
    fn align(a: Decimal, b: Decimal) -> Result<(i128, i128, u32)> {
        let scale = a.scale.max(b.scale);
        let ac = a
            .coeff
            .checked_mul(POW10[(scale - a.scale) as usize])
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        let bc = b
            .coeff
            .checked_mul(POW10[(scale - b.scale) as usize])
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        Ok((ac, bc, scale))
    }

    pub fn checked_add(self, other: Decimal) -> Result<Decimal> {
        let (a, b, scale) = Self::align(self, other)?;
        let coeff = a
            .checked_add(b)
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        Ok(Decimal { coeff, scale }.normalize())
    }

    pub fn checked_sub(self, other: Decimal) -> Result<Decimal> {
        self.checked_add(other.checked_neg()?)
    }

    pub fn checked_neg(self) -> Result<Decimal> {
        let coeff = self
            .coeff
            .checked_neg()
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        Ok(Decimal {
            coeff,
            scale: self.scale,
        })
    }

    pub fn checked_mul(self, other: Decimal) -> Result<Decimal> {
        let coeff = self
            .coeff
            .checked_mul(other.coeff)
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        let mut d = Decimal {
            coeff,
            scale: self.scale + other.scale,
        };
        // Reduce scale if it exceeds what we track.
        while d.scale > MAX_SCALE {
            d.coeff /= 10;
            d.scale -= 1;
        }
        Ok(d.normalize())
    }

    /// Division rounds half-even at [`MAX_SCALE`] digits.
    pub fn checked_div(self, other: Decimal) -> Result<Decimal> {
        if other.is_zero() {
            return Err(Error::new(
                ErrorCode::DivisionByZero,
                "decimal division by zero",
            ));
        }
        // Compute (self / other) at MAX_SCALE digits of fraction:
        // scaled = self.coeff * 10^(MAX_SCALE + other.scale - self.scale) / other.coeff
        let target_scale = MAX_SCALE;
        let shift = target_scale as i64 + other.scale as i64 - self.scale as i64;
        let mut num = self.coeff;
        let mut den = other.coeff;
        if shift >= 0 {
            num = num
                .checked_mul(
                    POW10
                        .get(shift as usize)
                        .copied()
                        .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?,
                )
                .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        } else {
            den = den
                .checked_mul(
                    POW10
                        .get((-shift) as usize)
                        .copied()
                        .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?,
                )
                .ok_or_else(|| Error::new(ErrorCode::Overflow, "decimal overflow"))?;
        }
        let q = num / den;
        let r = num % den;
        // Half-even rounding on the remainder.
        let mut q = q;
        let twice = r.checked_mul(2).unwrap_or(i128::MAX);
        if twice.abs() > den.abs() || (twice.abs() == den.abs() && q % 2 != 0) {
            if (num < 0) != (den < 0) {
                q -= 1;
            } else {
                q += 1;
            }
        }
        Ok(Decimal {
            coeff: q,
            scale: target_scale,
        }
        .normalize())
    }

    /// `idiv`: integer division truncating toward zero.
    pub fn checked_idiv(self, other: Decimal) -> Result<i128> {
        if other.is_zero() {
            return Err(Error::new(ErrorCode::DivisionByZero, "idiv by zero"));
        }
        let (a, b, _) = Self::align(self, other)?;
        Ok(a / b)
    }

    /// `mod` with the sign of the dividend (XQuery semantics).
    pub fn checked_rem(self, other: Decimal) -> Result<Decimal> {
        if other.is_zero() {
            return Err(Error::new(ErrorCode::DivisionByZero, "mod by zero"));
        }
        let (a, b, scale) = Self::align(self, other)?;
        Ok(Decimal {
            coeff: a % b,
            scale,
        }
        .normalize())
    }

    pub fn abs(self) -> Decimal {
        if self.coeff < 0 {
            Decimal {
                coeff: -self.coeff,
                scale: self.scale,
            }
        } else {
            self
        }
    }

    pub fn floor(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let p = POW10[self.scale as usize];
        let mut q = self.coeff / p;
        if self.coeff < 0 && self.coeff % p != 0 {
            q -= 1;
        }
        Decimal { coeff: q, scale: 0 }
    }

    pub fn ceiling(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let p = POW10[self.scale as usize];
        let mut q = self.coeff / p;
        if self.coeff > 0 && self.coeff % p != 0 {
            q += 1;
        }
        Decimal { coeff: q, scale: 0 }
    }

    /// `fn:round`: round half toward positive infinity.
    pub fn round(self) -> Decimal {
        if self.scale == 0 {
            return self;
        }
        let p = POW10[self.scale as usize];
        let q = self.coeff / p;
        let r = self.coeff % p;
        let half = p / 2;
        let q = if r >= half {
            q + 1
        } else if -r > half {
            q - 1
        } else {
            q
        };
        Decimal { coeff: q, scale: 0 }
    }

    /// Round half-to-even at `precision` fraction digits (fn:round-half-to-even).
    pub fn round_half_even(self, precision: i64) -> Decimal {
        if precision >= self.scale as i64 {
            return self;
        }
        if precision < -38 {
            return Decimal::ZERO;
        }
        let drop = (self.scale as i64 - precision) as u32;
        if drop as usize >= POW10.len() {
            return Decimal::ZERO;
        }
        let p = POW10[drop as usize];
        let mut q = self.coeff / p;
        let r = self.coeff % p;
        let twice = r.saturating_mul(2);
        if twice.abs() > p || (twice.abs() == p && q % 2 != 0) {
            if self.coeff < 0 {
                q -= 1;
            } else {
                q += 1;
            }
        }
        let new_scale = if precision < 0 { 0 } else { precision as u32 };
        if precision < 0 {
            let back = POW10[(-precision) as usize];
            q = q.saturating_mul(back);
        }
        Decimal {
            coeff: q,
            scale: new_scale,
        }
        .normalize()
    }

    pub fn to_f64(self) -> f64 {
        self.coeff as f64 / POW10[self.scale as usize] as f64
    }

    pub fn from_f64(v: f64) -> Result<Self> {
        if !v.is_finite() {
            return Err(Error::value("cannot convert non-finite double to decimal"));
        }
        // Render with enough precision then parse; exactness beyond 17
        // significant digits is not meaningful for f64 anyway.
        let s = format!("{v:.17}");
        Decimal::parse(s.trim_end_matches('0').trim_end_matches('.'))
            .or_else(|_| Decimal::parse(&format!("{v}")))
    }

    /// Truncate toward zero to an i64 (used for casts to integer types).
    pub fn trunc_to_i128(self) -> i128 {
        self.coeff / POW10[self.scale as usize]
    }

    /// True when the value has no fractional part.
    pub fn is_integral(self) -> bool {
        self.scale == 0 || self.coeff % POW10[self.scale as usize] == 0
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare without materializing: align scales via widening i128 math.
        match Self::align(*self, *other) {
            Ok((a, b, _)) => a.cmp(&b),
            Err(_) => {
                // Fall back to float comparison only in the overflow fringe.
                self.to_f64()
                    .partial_cmp(&other.to_f64())
                    .unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.coeff);
        }
        let p = POW10[self.scale as usize];
        let int = self.coeff / p;
        let frac = (self.coeff % p).abs();
        let sign = if self.coeff < 0 && int == 0 { "-" } else { "" };
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "-1", "3.14", "-0.5", "125.0", "10.25"] {
            let v = d(s);
            let back = Decimal::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{s}");
        }
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        assert_eq!(d("1.500"), d("1.5"));
        assert_eq!(d("1.500").to_string(), "1.5");
        assert_eq!(d("0.000").to_string(), "0");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", ".", "+", "-", "1.2.3", "1e5", "abc", "1 "] {
            assert!(Decimal::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_leading_dot_and_trailing_dot() {
        assert_eq!(d(".5"), d("0.5"));
        assert_eq!(d("5."), d("5"));
        assert_eq!(d("+5"), d("5"));
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(d("1.1").checked_add(d("2.2")).unwrap(), d("3.3"));
        assert_eq!(
            d("1")
                .checked_sub(d("4").checked_mul(d("8.5")).unwrap())
                .unwrap(),
            d("-33")
        );
        assert_eq!(d("5").checked_div(d("2")).unwrap(), d("2.5"));
        assert_eq!(d("1").checked_div(d("3")).unwrap().to_string().len(), 20); // 0.333...
    }

    #[test]
    fn idiv_truncates_toward_zero() {
        assert_eq!(d("7").checked_idiv(d("2")).unwrap(), 3);
        assert_eq!(d("-7").checked_idiv(d("2")).unwrap(), -3);
        assert_eq!(d("7.5").checked_idiv(d("2.5")).unwrap(), 3);
    }

    #[test]
    fn mod_takes_sign_of_dividend() {
        assert_eq!(d("7").checked_rem(d("3")).unwrap(), d("1"));
        assert_eq!(d("-7").checked_rem(d("3")).unwrap(), d("-1"));
        assert_eq!(d("7").checked_rem(d("-3")).unwrap(), d("1"));
        assert_eq!(d("6.1").checked_rem(d("2")).unwrap(), d("0.1"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            d("1").checked_div(d("0")).unwrap_err().code,
            ErrorCode::DivisionByZero
        );
        assert_eq!(
            d("1").checked_idiv(d("0")).unwrap_err().code,
            ErrorCode::DivisionByZero
        );
        assert_eq!(
            d("1").checked_rem(d("0")).unwrap_err().code,
            ErrorCode::DivisionByZero
        );
    }

    #[test]
    fn comparison_is_exact() {
        assert!(d("0.1") < d("0.2"));
        assert!(d("-0.1") > d("-0.2"));
        assert_eq!(d("1.0").cmp(&d("1")), Ordering::Equal);
        assert!(d("10") > d("9.999999999"));
    }

    #[test]
    fn floor_ceiling_round() {
        assert_eq!(d("2.5").floor(), d("2"));
        assert_eq!(d("-2.5").floor(), d("-3"));
        assert_eq!(d("2.5").ceiling(), d("3"));
        assert_eq!(d("-2.5").ceiling(), d("-2"));
        assert_eq!(d("2.5").round(), d("3"));
        assert_eq!(d("-2.5").round(), d("-2")); // round half toward +inf
        assert_eq!(d("2.4999").round(), d("2"));
    }

    #[test]
    fn round_half_even() {
        assert_eq!(d("0.5").round_half_even(0), d("0"));
        assert_eq!(d("1.5").round_half_even(0), d("2"));
        assert_eq!(d("2.5").round_half_even(0), d("2"));
        assert_eq!(d("3.567812").round_half_even(2), d("3.57"));
        assert_eq!(d("35612.25").round_half_even(-2), d("35600"));
    }

    #[test]
    fn display_negative_fraction_only() {
        assert_eq!(d("-0.5").to_string(), "-0.5");
        assert_eq!(d("-1.05").to_string(), "-1.05");
    }

    #[test]
    fn f64_conversions() {
        assert!((d("3.25").to_f64() - 3.25).abs() < 1e-12);
        let back = Decimal::from_f64(2.5).unwrap();
        assert_eq!(back, d("2.5"));
        assert!(Decimal::from_f64(f64::NAN).is_err());
    }

    #[test]
    fn integral_checks() {
        assert!(d("5").is_integral());
        assert!(d("5.0").is_integral());
        assert!(!d("5.1").is_integral());
        assert_eq!(d("5.9").trunc_to_i128(), 5);
        assert_eq!(d("-5.9").trunc_to_i128(), -5);
    }
}
