//! The seven node kinds of the XQuery data model.
//!
//! The node *kind* vocabulary is shared by every layer (parser events,
//! tokens, the store, kind tests in path steps), so it lives here at the
//! bottom of the crate graph. Actual node storage is `xqr-store`'s job.

use std::fmt;

/// `document | element | attribute | text | namespace | PI | comment` —
/// the seven kinds from the data-model slides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    Document,
    Element,
    Attribute,
    Text,
    Namespace,
    ProcessingInstruction,
    Comment,
}

impl NodeKind {
    /// The `node-kind` accessor string from the data-model slides.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Document => "document",
            NodeKind::Element => "element",
            NodeKind::Attribute => "attribute",
            NodeKind::Text => "text",
            NodeKind::Namespace => "namespace",
            NodeKind::ProcessingInstruction => "processing-instruction",
            NodeKind::Comment => "comment",
        }
    }

    /// Kinds that can appear as children of an element/document.
    pub fn is_child_kind(self) -> bool {
        matches!(
            self,
            NodeKind::Element
                | NodeKind::Text
                | NodeKind::Comment
                | NodeKind::ProcessingInstruction
        )
    }

    /// Kinds that carry a name.
    pub fn is_named(self) -> bool {
        matches!(
            self,
            NodeKind::Element
                | NodeKind::Attribute
                | NodeKind::Namespace
                | NodeKind::ProcessingInstruction
        )
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(NodeKind::Element.is_child_kind());
        assert!(!NodeKind::Attribute.is_child_kind());
        assert!(!NodeKind::Document.is_child_kind());
        assert!(NodeKind::Element.is_named());
        assert!(NodeKind::ProcessingInstruction.is_named());
        assert!(!NodeKind::Text.is_named());
        assert_eq!(
            NodeKind::ProcessingInstruction.as_str(),
            "processing-instruction"
        );
    }
}
