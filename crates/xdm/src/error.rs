//! Error codes and the engine-wide `Result` type.
//!
//! XQuery assigns stable codes (`err:XPTY0004`, `err:FORG0001`, ...) to
//! static and dynamic errors; keeping the codes lets tests assert on *which*
//! error a query raises, mirroring how conformance suites work.

use std::fmt;

/// The stable error code taxonomy used across the engine. Codes follow the
/// W3C XQuery 1.0 error namespace where one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// XPST0003 — grammar / syntax error in the query text.
    Syntax,
    /// XPST0008 — undefined variable or other name.
    UndefinedName,
    /// XPST0017 — unknown function or wrong arity.
    UndefinedFunction,
    /// XPTY0004 — static or dynamic type mismatch.
    Type,
    /// XPTY0018 — path step mixes nodes and atomic values.
    MixedPathResult,
    /// XPTY0019 — path step applied to an atomic value.
    PathOnAtomic,
    /// XPTY0020 — axis step with a non-node context item.
    AxisOnAtomic,
    /// FORG0001 — invalid lexical value for a cast/constructor.
    InvalidValue,
    /// FORG0006 — invalid argument type (e.g. EBV of a bad sequence).
    InvalidArgument,
    /// FOAR0001 — division by zero.
    DivisionByZero,
    /// FOAR0002 — numeric overflow/underflow.
    Overflow,
    /// FOCA0002 — invalid QName lexical form.
    InvalidQName,
    /// FORG0003/4/5 — fn:zero-or-one / one-or-more / exactly-one violated.
    Cardinality,
    /// FODC0002 — document/collection not available.
    DocumentNotFound,
    /// FONS0004 — no namespace found for prefix.
    UnboundPrefix,
    /// FOCH0002 — unsupported collation.
    UnsupportedCollation,
    /// FORX0002 — invalid pattern (our literal/char-class subset).
    InvalidPattern,
    /// XQDY0025 — duplicate attribute name in constructor.
    DuplicateAttribute,
    /// XQDY0026/0041/0044 and friends — constructor content errors.
    InvalidConstructor,
    /// XPDY0002 — dynamic context component (e.g. context item) absent.
    MissingContext,
    /// FOER0000 — fn:error() or user-raised error.
    UserError,
    /// XQST0034/0049/etc — static errors in prolog declarations.
    StaticProlog,
    /// Engine limit exceeded (depth, size, budget); not a W3C code.
    Limit,
    /// Internal invariant violation — a bug in the engine, never the query.
    Internal,
    /// Wall-clock deadline exceeded; not a W3C code.
    Timeout,
    /// Execution cancelled by the embedder; not a W3C code.
    Cancelled,
    /// Service admission control rejected the query (worker pool and run
    /// queue both full); not a W3C code.
    Overloaded,
    /// A subsystem (store, index, cache, …) failed transiently — an
    /// injected fault or an I/O-class error that a retry may not see
    /// again; not a W3C code.
    Unavailable,
    /// A persisted segment failed its integrity verification (bad magic,
    /// checksum mismatch, malformed section). The segment is quarantined
    /// and will never be served; retrying reads the same corrupt bytes,
    /// so the code is deliberately non-retryable. Not a W3C code.
    CorruptSegment,
}

impl ErrorCode {
    /// Every code the engine can raise, in stable order. The table tests
    /// iterate this to pin code strings, retryability, and descriptions.
    pub const ALL: &'static [ErrorCode] = {
        use ErrorCode::*;
        &[
            Syntax,
            UndefinedName,
            UndefinedFunction,
            Type,
            MixedPathResult,
            PathOnAtomic,
            AxisOnAtomic,
            InvalidValue,
            InvalidArgument,
            DivisionByZero,
            Overflow,
            InvalidQName,
            Cardinality,
            DocumentNotFound,
            UnboundPrefix,
            UnsupportedCollation,
            InvalidPattern,
            DuplicateAttribute,
            InvalidConstructor,
            MissingContext,
            UserError,
            StaticProlog,
            Limit,
            Internal,
            Timeout,
            Cancelled,
            Overloaded,
            Unavailable,
            CorruptSegment,
        ]
    };

    /// The W3C-style code string, used in messages and tests.
    pub fn as_str(self) -> &'static str {
        use ErrorCode::*;
        match self {
            Syntax => "XPST0003",
            UndefinedName => "XPST0008",
            UndefinedFunction => "XPST0017",
            Type => "XPTY0004",
            MixedPathResult => "XPTY0018",
            PathOnAtomic => "XPTY0019",
            AxisOnAtomic => "XPTY0020",
            InvalidValue => "FORG0001",
            InvalidArgument => "FORG0006",
            DivisionByZero => "FOAR0001",
            Overflow => "FOAR0002",
            InvalidQName => "FOCA0002",
            Cardinality => "FORG0004",
            DocumentNotFound => "FODC0002",
            UnboundPrefix => "FONS0004",
            UnsupportedCollation => "FOCH0002",
            InvalidPattern => "FORX0002",
            DuplicateAttribute => "XQDY0025",
            InvalidConstructor => "XQDY0026",
            MissingContext => "XPDY0002",
            UserError => "FOER0000",
            StaticProlog => "XQST0034",
            Limit => "XQRL0001",
            Internal => "XQRL0000",
            Timeout => "XQRL0002",
            Cancelled => "XQRL0003",
            Overloaded => "XQRL0004",
            Unavailable => "XQRL0005",
            CorruptSegment => "XQRL0006",
        }
    }

    /// Is a failure with this code worth retrying?
    ///
    /// The classification every resilience layer (service retry loop,
    /// circuit breakers, embedder backoff) dispatches on:
    ///
    /// * **transient** — the failure described a moment, not the query:
    ///   a deadline that may have been starved by queueing
    ///   (`XQRL0002`), admission-control shedding under momentary load
    ///   (`XQRL0004`), or a subsystem fault a retry may not see again
    ///   (`XQRL0005`);
    /// * **deterministic** — everything else: the same query will fail
    ///   the same way, so a retry only burns capacity. Cancellation
    ///   (`XQRL0003`) is deliberately non-retryable: the embedder asked
    ///   for the query to stop.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Timeout | ErrorCode::Overloaded | ErrorCode::Unavailable
        )
    }

    /// One-line description of the failure class, used in docs and the
    /// drift test (`tests/errors.rs`).
    pub fn description(self) -> &'static str {
        use ErrorCode::*;
        match self {
            Syntax => "grammar / syntax error in the query text",
            UndefinedName => "undefined variable or other name",
            UndefinedFunction => "unknown function or wrong arity",
            Type => "static or dynamic type mismatch",
            MixedPathResult => "path step mixes nodes and atomic values",
            PathOnAtomic => "path step applied to an atomic value",
            AxisOnAtomic => "axis step with a non-node context item",
            InvalidValue => "invalid lexical value for a cast/constructor",
            InvalidArgument => "invalid argument type",
            DivisionByZero => "division by zero",
            Overflow => "numeric overflow/underflow",
            InvalidQName => "invalid QName lexical form",
            Cardinality => "occurrence constraint violated",
            DocumentNotFound => "document/collection not available",
            UnboundPrefix => "no namespace found for prefix",
            UnsupportedCollation => "unsupported collation",
            InvalidPattern => "invalid regular-expression pattern",
            DuplicateAttribute => "duplicate attribute name in constructor",
            InvalidConstructor => "constructor content error",
            MissingContext => "dynamic context component absent",
            UserError => "fn:error() or user-raised error",
            StaticProlog => "static error in prolog declarations",
            Limit => "engine resource budget exceeded",
            Internal => "internal invariant violation (engine bug)",
            Timeout => "wall-clock deadline exceeded",
            Cancelled => "execution cancelled by the embedder",
            Overloaded => "admission control shed the query",
            Unavailable => "transient subsystem fault",
            CorruptSegment => "persisted segment failed integrity verification",
        }
    }
}

/// An engine error: a code plus a human-readable message and an optional
/// source position (byte offset into the query text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    pub code: ErrorCode,
    pub message: String,
    pub position: Option<usize>,
}

impl Error {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Error {
            code,
            message: message.into(),
            position: None,
        }
    }

    pub fn at(mut self, position: usize) -> Self {
        self.position = Some(position);
        self
    }

    pub fn syntax(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Syntax, message)
    }

    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Type, message)
    }

    pub fn value(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::InvalidValue, message)
    }

    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }

    pub fn limit(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Limit, message)
    }

    pub fn timeout(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Timeout, message)
    }

    pub fn cancelled(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Cancelled, message)
    }

    pub fn overloaded(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Overloaded, message)
    }

    pub fn unavailable(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Unavailable, message)
    }

    pub fn corrupt_segment(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::CorruptSegment, message)
    }

    /// Is this failure worth retrying? See [`ErrorCode::is_retryable`].
    pub fn is_retryable(&self) -> bool {
        self.code.is_retryable()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "err:{}: {}", self.code.as_str(), self.message)?;
        if let Some(pos) = self.position {
            write!(f, " (at offset {pos})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_position() {
        let e = Error::syntax("unexpected token").at(17);
        let s = e.to_string();
        assert!(s.contains("XPST0003"), "{s}");
        assert!(s.contains("offset 17"), "{s}");
    }

    #[test]
    fn codes_are_distinct_strings() {
        use std::collections::HashSet;
        let set: HashSet<_> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(set.len(), ErrorCode::ALL.len());
    }

    #[test]
    fn retryable_class_is_exactly_the_transient_codes() {
        let retryable: Vec<_> = ErrorCode::ALL
            .iter()
            .copied()
            .filter(|c| c.is_retryable())
            .map(|c| c.as_str())
            .collect();
        assert_eq!(retryable, ["XQRL0002", "XQRL0004", "XQRL0005"]);
    }
}
