//! Atomic values: the 19 XML Schema primitive types plus
//! `xdt:untypedAtomic` and `xs:integer`, with the lexical parsing, casting
//! matrix, numeric promotion and value-comparison semantics the talk's
//! operator slides specify.
//!
//! Key talk-derived behaviours implemented here:
//! * atomic values "carry their type together with the value" —
//!   `(8, myNS:ShoeSize)` ≠ `(8, xs:integer)` is modelled by the
//!   typed-value wrapper keeping the [`AtomicType`];
//! * untyped operands cast to `xs:double` for arithmetic but to the other
//!   operand's type for general comparisons (handled in the runtime, using
//!   [`AtomicValue::cast_to`]);
//! * value comparison promotes `integer → decimal → float → double`.

use crate::datetime::{Date, DateTime, Duration, Gregorian, GregorianKind, Time, TzOffset};
use crate::decimal::Decimal;
use crate::error::{Error, ErrorCode, Result};
use crate::qname::QName;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The atomic type lattice. `AnyAtomic` is the top; `UntypedAtomic` is the
/// type of non-validated content; `Integer` is the one derived numeric we
/// track natively (everything the talk's examples need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    AnyAtomic,
    UntypedAtomic,
    String,
    Boolean,
    Decimal,
    Integer,
    Float,
    Double,
    QName,
    AnyUri,
    Date,
    Time,
    DateTime,
    Duration,
    YearMonthDuration,
    DayTimeDuration,
    GYear,
    GYearMonth,
    GMonth,
    GMonthDay,
    GDay,
    HexBinary,
    Base64Binary,
    Notation,
}

impl AtomicType {
    /// `xs:`/`xdt:` qualified name used in error messages and `instance of`.
    pub fn name(self) -> &'static str {
        use AtomicType::*;
        match self {
            AnyAtomic => "xdt:anyAtomicType",
            UntypedAtomic => "xdt:untypedAtomic",
            String => "xs:string",
            Boolean => "xs:boolean",
            Decimal => "xs:decimal",
            Integer => "xs:integer",
            Float => "xs:float",
            Double => "xs:double",
            QName => "xs:QName",
            AnyUri => "xs:anyURI",
            Date => "xs:date",
            Time => "xs:time",
            DateTime => "xs:dateTime",
            Duration => "xs:duration",
            YearMonthDuration => "xdt:yearMonthDuration",
            DayTimeDuration => "xdt:dayTimeDuration",
            GYear => "xs:gYear",
            GYearMonth => "xs:gYearMonth",
            GMonth => "xs:gMonth",
            GMonthDay => "xs:gMonthDay",
            GDay => "xs:gDay",
            HexBinary => "xs:hexBinary",
            Base64Binary => "xs:base64Binary",
            Notation => "xs:NOTATION",
        }
    }

    /// Resolve a lexical type name (with `xs:`/`xsd:`/`xdt:` prefix or
    /// without) to a type, for `cast as` and constructor functions.
    pub fn from_name(name: &str) -> Option<AtomicType> {
        let local = name
            .strip_prefix("xs:")
            .or_else(|| name.strip_prefix("xsd:"))
            .or_else(|| name.strip_prefix("xdt:"))
            .unwrap_or(name);
        use AtomicType::*;
        Some(match local {
            "anyAtomicType" => AnyAtomic,
            "untypedAtomic" => UntypedAtomic,
            "string" => String,
            "boolean" => Boolean,
            "decimal" => Decimal,
            "integer" | "long" | "int" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "nonPositiveInteger" | "negativeInteger" | "unsignedLong"
            | "unsignedInt" | "unsignedShort" | "unsignedByte" => Integer,
            "float" => Float,
            "double" => Double,
            "QName" => QName,
            "anyURI" => AnyUri,
            "date" => Date,
            "time" => Time,
            "dateTime" => DateTime,
            "duration" => Duration,
            "yearMonthDuration" => YearMonthDuration,
            "dayTimeDuration" => DayTimeDuration,
            "gYear" => GYear,
            "gYearMonth" => GYearMonth,
            "gMonth" => GMonth,
            "gMonthDay" => GMonthDay,
            "gDay" => GDay,
            "hexBinary" => HexBinary,
            "base64Binary" => Base64Binary,
            "NOTATION" => Notation,
            "normalizedString" | "token" | "language" | "NMTOKEN" | "Name" | "NCName" | "ID"
            | "IDREF" | "ENTITY" => String,
            _ => return None,
        })
    }

    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            AtomicType::Decimal | AtomicType::Integer | AtomicType::Float | AtomicType::Double
        )
    }

    /// Derived-type subsumption within our lattice.
    pub fn is_subtype_of(self, other: AtomicType) -> bool {
        use AtomicType::*;
        if self == other || other == AnyAtomic {
            return true;
        }
        matches!(
            (self, other),
            (Integer, Decimal) | (YearMonthDuration, Duration) | (DayTimeDuration, Duration)
        )
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An atomic value. String-ish variants share their backing buffer via
/// `Arc<str>` so duplication through sequences is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    UntypedAtomic(Arc<str>),
    String(Arc<str>),
    Boolean(bool),
    Decimal(Decimal),
    Integer(i64),
    Float(f32),
    Double(f64),
    QName(QName),
    AnyUri(Arc<str>),
    Date(Date),
    Time(Time),
    DateTime(DateTime),
    Duration(Duration),
    YearMonthDuration(Duration),
    DayTimeDuration(Duration),
    Gregorian(Gregorian),
    HexBinary(Arc<[u8]>),
    Base64Binary(Arc<[u8]>),
    Notation(QName),
}

impl AtomicValue {
    pub fn untyped(s: impl Into<Arc<str>>) -> Self {
        AtomicValue::UntypedAtomic(s.into())
    }

    pub fn string(s: impl Into<Arc<str>>) -> Self {
        AtomicValue::String(s.into())
    }

    pub fn type_of(&self) -> AtomicType {
        use AtomicValue::*;
        match self {
            UntypedAtomic(_) => AtomicType::UntypedAtomic,
            String(_) => AtomicType::String,
            Boolean(_) => AtomicType::Boolean,
            Decimal(_) => AtomicType::Decimal,
            Integer(_) => AtomicType::Integer,
            Float(_) => AtomicType::Float,
            Double(_) => AtomicType::Double,
            QName(_) => AtomicType::QName,
            AnyUri(_) => AtomicType::AnyUri,
            Date(_) => AtomicType::Date,
            Time(_) => AtomicType::Time,
            DateTime(_) => AtomicType::DateTime,
            Duration(_) => AtomicType::Duration,
            YearMonthDuration(_) => AtomicType::YearMonthDuration,
            DayTimeDuration(_) => AtomicType::DayTimeDuration,
            Gregorian(g) => match g.kind {
                GregorianKind::Year => AtomicType::GYear,
                GregorianKind::YearMonth => AtomicType::GYearMonth,
                GregorianKind::Month => AtomicType::GMonth,
                GregorianKind::MonthDay => AtomicType::GMonthDay,
                GregorianKind::Day => AtomicType::GDay,
            },
            HexBinary(_) => AtomicType::HexBinary,
            Base64Binary(_) => AtomicType::Base64Binary,
            Notation(_) => AtomicType::Notation,
        }
    }

    pub fn is_numeric(&self) -> bool {
        self.type_of().is_numeric()
    }

    pub fn is_nan(&self) -> bool {
        match self {
            AtomicValue::Double(d) => d.is_nan(),
            AtomicValue::Float(f) => f.is_nan(),
            _ => false,
        }
    }

    /// The canonical string value (`fn:string`).
    pub fn string_value(&self) -> String {
        use AtomicValue::*;
        match self {
            UntypedAtomic(s) | String(s) | AnyUri(s) => s.to_string(),
            Boolean(b) => b.to_string(),
            Decimal(d) => d.to_string(),
            Integer(i) => i.to_string(),
            Float(v) => fmt_float(*v as f64, true),
            Double(v) => fmt_float(*v, false),
            QName(q) => q.lexical(),
            Date(d) => d.to_string(),
            Time(t) => t.to_string(),
            DateTime(dt) => dt.to_string(),
            Duration(d) | YearMonthDuration(d) | DayTimeDuration(d) => d.to_string(),
            Gregorian(g) => g.to_string(),
            HexBinary(b) => hex_encode(b),
            Base64Binary(b) => base64_encode(b),
            Notation(q) => q.lexical(),
        }
    }

    /// Parse a lexical form into a value of `ty` (the XML Schema
    /// constructor). Whitespace is collapsed per the whiteSpace facet.
    pub fn parse_as(lexical: &str, ty: AtomicType) -> Result<AtomicValue> {
        let s = lexical.trim();
        use AtomicType as T;
        use AtomicValue as V;
        Ok(match ty {
            T::AnyAtomic | T::UntypedAtomic => V::untyped(lexical),
            T::String => V::string(lexical),
            T::Boolean => match s {
                "true" | "1" => V::Boolean(true),
                "false" | "0" => V::Boolean(false),
                _ => return Err(Error::value(format!("invalid xs:boolean: {s:?}"))),
            },
            T::Decimal => V::Decimal(Decimal::parse(s)?),
            T::Integer => V::Integer(parse_integer(s)?),
            T::Float => V::Float(parse_double(s)? as f32),
            T::Double => V::Double(parse_double(s)?),
            T::QName => {
                // Callers that know the in-scope namespaces resolve the
                // prefix before constructing; here we accept NCName or
                // prefixed form without resolution.
                if s.is_empty()
                    || s.split(':').count() > 2
                    || s.starts_with(':')
                    || s.ends_with(':')
                {
                    return Err(Error::new(
                        ErrorCode::InvalidQName,
                        format!("invalid QName: {s:?}"),
                    ));
                }
                match s.split_once(':') {
                    Some((p, l)) => V::QName(crate::qname::QName::prefixed("", p, l)),
                    None => V::QName(crate::qname::QName::local(s)),
                }
            }
            T::AnyUri => V::AnyUri(Arc::from(s)),
            T::Date => V::Date(Date::parse(s)?),
            T::Time => V::Time(Time::parse(s)?),
            T::DateTime => V::DateTime(DateTime::parse(s)?),
            T::Duration => V::Duration(Duration::parse(s)?),
            T::YearMonthDuration => {
                let d = Duration::parse(s)?;
                if !d.is_year_month() {
                    return Err(Error::value(
                        "yearMonthDuration cannot carry day/time fields",
                    ));
                }
                V::YearMonthDuration(d)
            }
            T::DayTimeDuration => {
                let d = Duration::parse(s)?;
                if !d.is_day_time() {
                    return Err(Error::value(
                        "dayTimeDuration cannot carry year/month fields",
                    ));
                }
                V::DayTimeDuration(d)
            }
            T::GYear => V::Gregorian(Gregorian::parse(GregorianKind::Year, s)?),
            T::GYearMonth => V::Gregorian(Gregorian::parse(GregorianKind::YearMonth, s)?),
            T::GMonth => V::Gregorian(Gregorian::parse(GregorianKind::Month, s)?),
            T::GMonthDay => V::Gregorian(Gregorian::parse(GregorianKind::MonthDay, s)?),
            T::GDay => V::Gregorian(Gregorian::parse(GregorianKind::Day, s)?),
            T::HexBinary => V::HexBinary(hex_decode(s)?.into()),
            T::Base64Binary => V::Base64Binary(base64_decode(s)?.into()),
            T::Notation => {
                return Err(Error::type_error(
                    "cannot construct xs:NOTATION from a string",
                ))
            }
        })
    }

    /// The `cast as` matrix. Untyped casts like a lexical form; same-type
    /// casts are identity; numeric↔numeric convert; most types cast
    /// to/from string; cross-family casts are type errors.
    pub fn cast_to(&self, ty: AtomicType) -> Result<AtomicValue> {
        use AtomicType as T;
        use AtomicValue as V;
        if self.type_of() == ty {
            return Ok(self.clone());
        }
        match (self, ty) {
            // To string-family: via canonical lexical form.
            (_, T::String) => Ok(V::string(self.string_value())),
            (_, T::UntypedAtomic) => Ok(V::untyped(self.string_value())),
            (V::String(_) | V::UntypedAtomic(_), _) => Self::parse_as(&self.string_value(), ty),
            (V::AnyUri(s), T::AnyUri) => Ok(V::AnyUri(s.clone())),

            // Numeric conversions.
            (V::Integer(i), T::Decimal) => Ok(V::Decimal(Decimal::from_i64(*i))),
            (V::Integer(i), T::Double) => Ok(V::Double(*i as f64)),
            (V::Integer(i), T::Float) => Ok(V::Float(*i as f32)),
            (V::Integer(i), T::Boolean) => Ok(V::Boolean(*i != 0)),
            (V::Decimal(d), T::Integer) => {
                let t = d.trunc_to_i128();
                i64::try_from(t)
                    .map(V::Integer)
                    .map_err(|_| Error::new(ErrorCode::Overflow, "integer overflow in cast"))
            }
            (V::Decimal(d), T::Double) => Ok(V::Double(d.to_f64())),
            (V::Decimal(d), T::Float) => Ok(V::Float(d.to_f64() as f32)),
            (V::Decimal(d), T::Boolean) => Ok(V::Boolean(!d.is_zero())),
            (V::Double(v), T::Integer) => double_to_integer(*v),
            (V::Double(v), T::Decimal) => Ok(V::Decimal(Decimal::from_f64(*v)?)),
            (V::Double(v), T::Float) => Ok(V::Float(*v as f32)),
            (V::Double(v), T::Boolean) => Ok(V::Boolean(!(v.is_nan() || *v == 0.0))),
            (V::Float(v), T::Integer) => double_to_integer(*v as f64),
            (V::Float(v), T::Decimal) => Ok(V::Decimal(Decimal::from_f64(*v as f64)?)),
            (V::Float(v), T::Double) => Ok(V::Double(*v as f64)),
            (V::Float(v), T::Boolean) => Ok(V::Boolean(!(v.is_nan() || *v == 0.0))),
            (V::Boolean(b), T::Integer) => Ok(V::Integer(*b as i64)),
            (V::Boolean(b), T::Decimal) => Ok(V::Decimal(Decimal::from_i64(*b as i64))),
            (V::Boolean(b), T::Double) => Ok(V::Double(*b as i64 as f64)),
            (V::Boolean(b), T::Float) => Ok(V::Float(*b as i64 as f32)),

            // Date/time family.
            (V::DateTime(dt), T::Date) => Ok(V::Date(dt.date())),
            (V::DateTime(dt), T::Time) => Ok(V::Time(dt.time())),
            (V::Date(d), T::DateTime) => Ok(V::DateTime(d.to_datetime())),
            (V::DateTime(dt), T::GYear) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::Year,
                year: dt.year,
                month: 1,
                day: 1,
                tz: dt.tz,
            })),
            (V::Date(d), T::GYear) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::Year,
                year: d.year,
                month: 1,
                day: 1,
                tz: d.tz,
            })),
            (V::Date(d), T::GYearMonth) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::YearMonth,
                year: d.year,
                month: d.month,
                day: 1,
                tz: d.tz,
            })),
            (V::Date(d), T::GMonthDay) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::MonthDay,
                year: 1,
                month: d.month,
                day: d.day,
                tz: d.tz,
            })),
            (V::Date(d), T::GMonth) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::Month,
                year: 1,
                month: d.month,
                day: 1,
                tz: d.tz,
            })),
            (V::Date(d), T::GDay) => Ok(V::Gregorian(Gregorian {
                kind: GregorianKind::Day,
                year: 1,
                month: 1,
                day: d.day,
                tz: d.tz,
            })),

            // Duration family.
            (V::Duration(d), T::YearMonthDuration) => {
                Ok(V::YearMonthDuration(Duration::from_months(d.months)))
            }
            (V::Duration(d), T::DayTimeDuration) => {
                Ok(V::DayTimeDuration(Duration::from_millis(d.millis)))
            }
            (V::YearMonthDuration(d) | V::DayTimeDuration(d), T::Duration) => Ok(V::Duration(*d)),
            // Casting between duration subtypes keeps only the target
            // component, which is zero by the subtype invariant.
            (V::YearMonthDuration(_), T::DayTimeDuration) => Ok(V::DayTimeDuration(Duration::ZERO)),
            (V::DayTimeDuration(_), T::YearMonthDuration) => {
                Ok(V::YearMonthDuration(Duration::ZERO))
            }

            // Binary family.
            (V::HexBinary(b), T::Base64Binary) => Ok(V::Base64Binary(b.clone())),
            (V::Base64Binary(b), T::HexBinary) => Ok(V::HexBinary(b.clone())),

            (V::QName(q), T::Notation) => Ok(V::Notation(q.clone())),

            _ => Err(Error::type_error(format!(
                "cannot cast {} to {}",
                self.type_of().name(),
                ty.name()
            ))),
        }
    }

    /// Can `cast_to` succeed? (`castable as`).
    pub fn castable_to(&self, ty: AtomicType) -> bool {
        self.cast_to(ty).is_ok()
    }

    /// Value comparison (`eq`,`lt`,...): both operands must be comparable
    /// types after promotion; returns the ordering, or an error for
    /// incomparable types. NaN returns `None`.
    pub fn value_compare(
        &self,
        other: &AtomicValue,
        implicit_tz: TzOffset,
    ) -> Result<Option<Ordering>> {
        use AtomicValue as V;
        // Untyped operands compare as strings in value comparisons — this
        // is why the talk's slide has `<a>42</a> eq 42` raising an error:
        // a string is not comparable with an integer.
        let a = self.untyped_as_string();
        let b = other.untyped_as_string();
        match (&a, &b) {
            (V::String(x) | V::AnyUri(x), V::String(y) | V::AnyUri(y)) => {
                Ok(Some(x.as_bytes().cmp(y.as_bytes())))
            }
            (V::Boolean(x), V::Boolean(y)) => Ok(Some(x.cmp(y))),
            _ if a.is_numeric() && b.is_numeric() => numeric_compare(&a, &b),
            (V::Date(x), V::Date(y)) => Ok(Some(x.compare(y, implicit_tz))),
            (V::Time(x), V::Time(y)) => Ok(Some(x.compare(y, implicit_tz))),
            (V::DateTime(x), V::DateTime(y)) => Ok(Some(x.compare(y, implicit_tz))),
            (
                V::Duration(x) | V::YearMonthDuration(x) | V::DayTimeDuration(x),
                V::Duration(y) | V::YearMonthDuration(y) | V::DayTimeDuration(y),
            ) => {
                // Total order only within one duration subtype; mixed
                // durations are equal iff both components match.
                if x.is_year_month() && y.is_year_month() {
                    Ok(Some(x.months.cmp(&y.months)))
                } else if x.is_day_time() && y.is_day_time() {
                    Ok(Some(x.millis.cmp(&y.millis)))
                } else if x == y {
                    Ok(Some(Ordering::Equal))
                } else {
                    Err(Error::type_error("mixed durations support only equality"))
                }
            }
            (V::QName(x), V::QName(y)) | (V::Notation(x), V::Notation(y)) => {
                if x == y {
                    Ok(Some(Ordering::Equal))
                } else {
                    // QNames support eq/ne only; report inequality via a
                    // non-Equal ordering on the clark form (stable).
                    Ok(Some(x.clark().cmp(&y.clark())))
                }
            }
            (V::HexBinary(x), V::HexBinary(y)) | (V::Base64Binary(x), V::Base64Binary(y)) => {
                Ok(Some(x.cmp(y)))
            }
            (V::Gregorian(x), V::Gregorian(y)) if x.kind == y.kind => Ok(Some(
                (x.year, x.month, x.day).cmp(&(y.year, y.month, y.day)),
            )),
            _ => Err(Error::type_error(format!(
                "cannot compare {} with {}",
                self.type_of().name(),
                other.type_of().name()
            ))),
        }
    }

    fn untyped_as_string(&self) -> AtomicValue {
        match self {
            AtomicValue::UntypedAtomic(s) => AtomicValue::String(s.clone()),
            other => other.clone(),
        }
    }

    /// The effective boolean value of this single atomic item.
    pub fn effective_boolean_value(&self) -> Result<bool> {
        use AtomicValue::*;
        Ok(match self {
            Boolean(b) => *b,
            String(s) | UntypedAtomic(s) | AnyUri(s) => !s.is_empty(),
            Integer(i) => *i != 0,
            Decimal(d) => !d.is_zero(),
            Double(v) => !(v.is_nan() || *v == 0.0),
            Float(v) => !(v.is_nan() || *v == 0.0),
            _ => {
                return Err(Error::new(
                    ErrorCode::InvalidArgument,
                    format!("no effective boolean value for {}", self.type_of().name()),
                ))
            }
        })
    }

    /// Promote to double (used for arithmetic on untyped data per the
    /// talk: "if an operand is untyped, cast to xs:double").
    pub fn to_double(&self) -> Result<f64> {
        use AtomicValue::*;
        match self {
            Integer(i) => Ok(*i as f64),
            Decimal(d) => Ok(d.to_f64()),
            Double(v) => Ok(*v),
            Float(v) => Ok(*v as f64),
            UntypedAtomic(s) => parse_double(s.trim()),
            _ => Err(Error::type_error(format!(
                "cannot treat {} as a number",
                self.type_of().name()
            ))),
        }
    }
}

fn double_to_integer(v: f64) -> Result<AtomicValue> {
    if v.is_nan() || v.is_infinite() {
        return Err(Error::value("cannot cast NaN/INF to xs:integer"));
    }
    let t = v.trunc();
    if t < i64::MIN as f64 || t > i64::MAX as f64 {
        return Err(Error::new(ErrorCode::Overflow, "integer overflow in cast"));
    }
    Ok(AtomicValue::Integer(t as i64))
}

fn numeric_compare(a: &AtomicValue, b: &AtomicValue) -> Result<Option<Ordering>> {
    use AtomicValue as V;
    // Exact compare when both sides are exact numerics.
    match (a, b) {
        (V::Integer(x), V::Integer(y)) => return Ok(Some(x.cmp(y))),
        (V::Integer(x), V::Decimal(y)) => {
            return Ok(Some(Decimal::from_i64(*x).cmp(y)));
        }
        (V::Decimal(x), V::Integer(y)) => {
            return Ok(Some(x.cmp(&Decimal::from_i64(*y))));
        }
        (V::Decimal(x), V::Decimal(y)) => return Ok(Some(x.cmp(y))),
        _ => {}
    }
    let x = a.to_double()?;
    let y = b.to_double()?;
    Ok(x.partial_cmp(&y))
}

/// Parse `xs:integer` (optional sign, digits).
pub fn parse_integer(s: &str) -> Result<i64> {
    let valid = {
        let t = s.strip_prefix(['+', '-']).unwrap_or(s);
        !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
    };
    if !valid {
        return Err(Error::value(format!("invalid xs:integer literal: {s:?}")));
    }
    s.parse::<i64>()
        .map_err(|_| Error::new(ErrorCode::Overflow, "integer overflow"))
}

/// Parse `xs:double`: decimal or scientific notation, `INF`, `-INF`, `NaN`.
pub fn parse_double(s: &str) -> Result<f64> {
    match s {
        "INF" => return Ok(f64::INFINITY),
        "-INF" => return Ok(f64::NEG_INFINITY),
        "+INF" => return Err(Error::value("xs:double does not accept +INF")),
        "NaN" => return Ok(f64::NAN),
        _ => {}
    }
    // XML Schema doubles do not allow 'e' without digits, leading/trailing
    // junk, or "inf"/"nan" spellings; Rust's parser is close enough after
    // we reject the spellings it additionally accepts.
    let lower = s.to_ascii_lowercase();
    if lower.contains("inf") || lower.contains("nan") || s.contains('_') {
        return Err(Error::value(format!("invalid xs:double literal: {s:?}")));
    }
    s.parse::<f64>()
        .map_err(|_| Error::value(format!("invalid xs:double literal: {s:?}")))
}

/// XPath `fn:string` formatting for doubles/floats: plain decimal inside
/// [1e-6, 1e18), scientific with canonical mantissa outside.
pub fn fmt_float(v: f64, _is_float: bool) -> String {
    if v.is_nan() {
        return "NaN".into();
    }
    if v.is_infinite() {
        return if v > 0.0 { "INF".into() } else { "-INF".into() };
    }
    if v == 0.0 {
        return if v.is_sign_negative() {
            "-0".into()
        } else {
            "0".into()
        };
    }
    let abs = v.abs();
    if (1e-6..1e18).contains(&abs) {
        if v == v.trunc() && abs < 1e18 {
            format!("{}", v as i128)
        } else {
            let s = format!("{v}");
            s
        }
    } else {
        // Scientific: mantissa in [1,10).
        let exp = abs.log10().floor() as i32;
        let mantissa = v / 10f64.powi(exp);
        format!("{mantissa}E{exp}")
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02X}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::value("hexBinary needs an even number of digits"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push((h * 16 + l) as u8),
            _ => return Err(Error::value("invalid hexBinary digit")),
        }
    }
    Ok(out)
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn base64_decode(s: &str) -> Result<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let compact: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !compact.len().is_multiple_of(4) {
        return Err(Error::value("base64Binary length must be a multiple of 4"));
    }
    let mut out = Vec::with_capacity(compact.len() / 4 * 3);
    for chunk in compact.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && chunk[..4 - pad].contains(&b'=')) {
            return Err(Error::value("invalid base64 padding"));
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < 4 - pad {
                    return Err(Error::value("invalid base64 padding"));
                }
                0
            } else {
                val(c).ok_or_else(|| Error::value("invalid base64 character"))?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.string_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lex: &str, ty: AtomicType) -> AtomicValue {
        AtomicValue::parse_as(lex, ty).unwrap()
    }

    #[test]
    fn parse_primitive_types() {
        assert_eq!(v("42", AtomicType::Integer), AtomicValue::Integer(42));
        assert_eq!(v("-42", AtomicType::Integer), AtomicValue::Integer(-42));
        assert_eq!(v("true", AtomicType::Boolean), AtomicValue::Boolean(true));
        assert_eq!(v("1", AtomicType::Boolean), AtomicValue::Boolean(true));
        assert_eq!(v("0", AtomicType::Boolean), AtomicValue::Boolean(false));
        assert_eq!(v("125.0", AtomicType::Decimal).string_value(), "125");
        assert_eq!(
            v("125.e2", AtomicType::Double),
            AtomicValue::Double(12500.0)
        );
        assert_eq!(
            v("INF", AtomicType::Double),
            AtomicValue::Double(f64::INFINITY)
        );
        assert!(v("NaN", AtomicType::Double).is_nan());
    }

    #[test]
    fn parse_trims_whitespace_for_typed() {
        assert_eq!(v("  42 ", AtomicType::Integer), AtomicValue::Integer(42));
        assert_eq!(
            v(" true\n", AtomicType::Boolean),
            AtomicValue::Boolean(true)
        );
        // but strings keep their content
        assert_eq!(v(" x ", AtomicType::String).string_value(), " x ");
    }

    #[test]
    fn parse_rejects_bad_lexical_forms() {
        assert!(AtomicValue::parse_as("4 2", AtomicType::Integer).is_err());
        assert!(AtomicValue::parse_as("yes", AtomicType::Boolean).is_err());
        assert!(AtomicValue::parse_as("1.2.3", AtomicType::Decimal).is_err());
        assert!(AtomicValue::parse_as("baz", AtomicType::Double).is_err());
        assert!(AtomicValue::parse_as("+INF", AtomicType::Double).is_err());
    }

    #[test]
    fn cast_numeric_matrix() {
        let i = AtomicValue::Integer(42);
        assert_eq!(
            i.cast_to(AtomicType::Double).unwrap(),
            AtomicValue::Double(42.0)
        );
        assert_eq!(i.cast_to(AtomicType::String).unwrap().string_value(), "42");
        let d = AtomicValue::Double(2.9);
        assert_eq!(
            d.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(2)
        );
        let d = AtomicValue::Double(-2.9);
        assert_eq!(
            d.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(-2)
        );
        assert!(AtomicValue::Double(f64::NAN)
            .cast_to(AtomicType::Integer)
            .is_err());
    }

    #[test]
    fn cast_untyped_like_lexical() {
        let u = AtomicValue::untyped("42");
        assert_eq!(
            u.cast_to(AtomicType::Integer).unwrap(),
            AtomicValue::Integer(42)
        );
        let u = AtomicValue::untyped("baz");
        assert!(u.cast_to(AtomicType::Integer).is_err());
        assert!(u.castable_to(AtomicType::String));
        assert!(!u.castable_to(AtomicType::Integer));
    }

    #[test]
    fn cast_cross_family_fails() {
        let b = AtomicValue::Boolean(true);
        assert!(b.cast_to(AtomicType::Date).is_err());
        let d = v("2004-01-01", AtomicType::Date);
        assert!(d.cast_to(AtomicType::Integer).is_err());
    }

    #[test]
    fn cast_date_family() {
        let dt = v("2004-09-14T10:00:00Z", AtomicType::DateTime);
        assert_eq!(
            dt.cast_to(AtomicType::Date).unwrap().string_value(),
            "2004-09-14Z"
        );
        assert_eq!(
            dt.cast_to(AtomicType::Time).unwrap().string_value(),
            "10:00:00Z"
        );
        let d = v("2004-09-14", AtomicType::Date);
        assert_eq!(
            d.cast_to(AtomicType::DateTime).unwrap().string_value(),
            "2004-09-14T00:00:00"
        );
        assert_eq!(d.cast_to(AtomicType::GYear).unwrap().string_value(), "2004");
        assert_eq!(
            d.cast_to(AtomicType::GMonthDay).unwrap().string_value(),
            "--09-14"
        );
    }

    #[test]
    fn value_compare_untyped_as_string() {
        // <a>42</a> eq "42" → true (untyped compares as string)
        let a = AtomicValue::untyped("42");
        let b = AtomicValue::string("42");
        assert_eq!(a.value_compare(&b, 0).unwrap(), Some(Ordering::Equal));
        // `<a>42</a> eq 42` is an error per the talk's comparison slide:
        // the untyped operand becomes a string, incomparable with integer.
        let c = AtomicValue::Integer(42);
        assert!(a.value_compare(&c, 0).is_err());
    }

    #[test]
    fn value_compare_numeric_promotion() {
        let i = AtomicValue::Integer(1);
        let d = AtomicValue::Decimal(Decimal::parse("1.0").unwrap());
        let f = AtomicValue::Double(1.0);
        assert_eq!(i.value_compare(&d, 0).unwrap(), Some(Ordering::Equal));
        assert_eq!(i.value_compare(&f, 0).unwrap(), Some(Ordering::Equal));
        assert_eq!(
            AtomicValue::Integer(2).value_compare(&f, 0).unwrap(),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn value_compare_nan_is_none() {
        let n = AtomicValue::Double(f64::NAN);
        assert_eq!(n.value_compare(&AtomicValue::Double(1.0), 0).unwrap(), None);
        assert_eq!(n.value_compare(&n, 0).unwrap(), None);
    }

    #[test]
    fn value_compare_incomparable_types_error() {
        let s = AtomicValue::string("x");
        let i = AtomicValue::Integer(1);
        assert!(s.value_compare(&i, 0).is_err());
        let b = AtomicValue::Boolean(true);
        assert!(b.value_compare(&i, 0).is_err());
    }

    #[test]
    fn effective_boolean_value_rules() {
        assert!(!AtomicValue::string("").effective_boolean_value().unwrap());
        assert!(AtomicValue::string("false")
            .effective_boolean_value()
            .unwrap());
        assert!(!AtomicValue::Double(f64::NAN)
            .effective_boolean_value()
            .unwrap());
        assert!(!AtomicValue::Integer(0).effective_boolean_value().unwrap());
        assert!(AtomicValue::Integer(-1).effective_boolean_value().unwrap());
        assert!(v("2004-01-01", AtomicType::Date)
            .effective_boolean_value()
            .is_err());
    }

    #[test]
    fn double_formatting() {
        assert_eq!(AtomicValue::Double(42.0).string_value(), "42");
        assert_eq!(AtomicValue::Double(-0.5).string_value(), "-0.5");
        assert_eq!(AtomicValue::Double(0.0).string_value(), "0");
        assert_eq!(AtomicValue::Double(1e20).string_value(), "1E20");
        assert_eq!(AtomicValue::Double(1.5e-7).string_value(), "1.5E-7");
        assert_eq!(AtomicValue::Double(f64::INFINITY).string_value(), "INF");
    }

    #[test]
    fn hex_and_base64_roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        let hex = v(&hex_encode(&data), AtomicType::HexBinary);
        assert_eq!(hex.string_value(), hex_encode(&data));
        let b64s = base64_encode(&data);
        let b64 = v(&b64s, AtomicType::Base64Binary);
        assert_eq!(b64.string_value(), b64s);
        // Cross-cast preserves bytes.
        assert_eq!(
            hex.cast_to(AtomicType::Base64Binary)
                .unwrap()
                .string_value(),
            b64s
        );
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert!(base64_decode("Zm9").is_err());
        assert!(base64_decode("Z=9v").is_err());
    }

    #[test]
    fn duration_subtypes_enforced() {
        assert!(AtomicValue::parse_as("P1Y", AtomicType::YearMonthDuration).is_ok());
        assert!(AtomicValue::parse_as("P1D", AtomicType::YearMonthDuration).is_err());
        assert!(AtomicValue::parse_as("P1D", AtomicType::DayTimeDuration).is_ok());
        assert!(AtomicValue::parse_as("P1Y", AtomicType::DayTimeDuration).is_err());
    }

    #[test]
    fn duration_comparison_within_subtype() {
        let a = v("P1Y", AtomicType::YearMonthDuration);
        let b = v("P13M", AtomicType::YearMonthDuration);
        assert_eq!(a.value_compare(&b, 0).unwrap(), Some(Ordering::Less));
        let c = v("PT1H", AtomicType::DayTimeDuration);
        let d = v("PT90M", AtomicType::DayTimeDuration);
        assert_eq!(c.value_compare(&d, 0).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn type_name_resolution() {
        assert_eq!(
            AtomicType::from_name("xs:integer"),
            Some(AtomicType::Integer)
        );
        assert_eq!(AtomicType::from_name("integer"), Some(AtomicType::Integer));
        assert_eq!(
            AtomicType::from_name("xdt:untypedAtomic"),
            Some(AtomicType::UntypedAtomic)
        );
        assert_eq!(AtomicType::from_name("xs:token"), Some(AtomicType::String));
        assert_eq!(AtomicType::from_name("xs:nothing"), None);
    }

    #[test]
    fn subtype_lattice() {
        assert!(AtomicType::Integer.is_subtype_of(AtomicType::Decimal));
        assert!(AtomicType::Integer.is_subtype_of(AtomicType::AnyAtomic));
        assert!(!AtomicType::Decimal.is_subtype_of(AtomicType::Integer));
        assert!(AtomicType::YearMonthDuration.is_subtype_of(AtomicType::Duration));
    }
}
