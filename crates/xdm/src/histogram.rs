//! A fixed-bucket, lock-free latency histogram.
//!
//! The service layer records one end-to-end latency sample per query and
//! reports p50/p99 in its stats snapshot. Recording must be cheap enough
//! to sit on the completion path of every query, so the histogram is a
//! fixed array of relaxed atomic counters with power-of-two microsecond
//! bucket boundaries: bucket `i` covers `[2^i, 2^(i+1))` microseconds
//! (bucket 0 also absorbs sub-microsecond samples). Quantiles are read
//! back as the upper bound of the bucket containing the requested rank —
//! at most 2x off, which is plenty for capacity dashboards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: `2^39` microseconds is ~6.4 days, far beyond any
/// query deadline; larger samples clamp into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A concurrent histogram of durations with log2 microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(micros: u64) -> usize {
        // log2(micros), clamped to the bucket range; 0 and 1 both land
        // in bucket 0.
        (63 - micros.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one sample (relaxed atomics; safe from any thread).
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency over all samples (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / n)
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket holding that rank. Returns zero when no samples exist.
    pub fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        // Rank of the requested quantile, 1-based (q=0 → first sample).
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) microseconds.
                return Duration::from_micros(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_micros(1u64 << 63)
    }

    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn buckets_are_log2_micros() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = LatencyHistogram::new();
        // 99 fast samples (~100us), 1 slow (~1s).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(1));
        assert_eq!(h.count(), 100);
        // p50 lands in the 100us bucket [64, 128) → upper bound 128us.
        assert_eq!(h.p50(), Duration::from_micros(128));
        // p99 rank 99 is still in the fast bucket; p100 reaches the slow one.
        assert_eq!(h.quantile(0.99), Duration::from_micros(128));
        assert!(h.quantile(1.0) >= Duration::from_secs(1));
        assert!(h.mean() >= Duration::from_micros(100));
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // Bucket i covers [2^i, 2^(i+1)): both edges of each boundary.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << i;
            assert_eq!(LatencyHistogram::bucket_of(lo), i, "lower edge of {i}");
            assert_eq!(
                LatencyHistogram::bucket_of(lo * 2 - 1),
                i,
                "upper edge of {i}"
            );
            assert_eq!(LatencyHistogram::bucket_of(lo * 2), i + 1);
        }
    }

    /// A known bimodal distribution: quantiles must step from the fast
    /// mode to the slow mode exactly where the mass says they should.
    #[test]
    fn quantiles_on_a_known_bimodal_distribution() {
        let h = LatencyHistogram::new();
        // 900 samples at ~50us, 100 samples at ~800ms.
        for _ in 0..900 {
            h.record(Duration::from_micros(50));
        }
        for _ in 0..100 {
            h.record(Duration::from_millis(800));
        }
        // p50 and p90 sit in the fast bucket [32, 64) → upper bound 64us.
        assert_eq!(h.p50(), Duration::from_micros(64));
        assert_eq!(h.quantile(0.90), Duration::from_micros(64));
        // p99 crosses into the slow mode: 800ms lands in [2^19, 2^20)us.
        assert_eq!(h.p99(), Duration::from_micros(1 << 20));
        // Quantiles are monotone in q.
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(h.quantile(w[0]) <= h.quantile(w[1]), "monotone at {w:?}");
        }
        // Mean is pulled between the modes: 0.9*50us + 0.1*800000us.
        assert_eq!(h.mean(), Duration::from_micros(80_045));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        // Every thread recorded the same 0..1000us ramp, so quantiles
        // must match a single-threaded recording of one ramp exactly.
        let reference = LatencyHistogram::new();
        for i in 0..1000u64 {
            reference.record(Duration::from_micros(i));
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), reference.quantile(q), "q = {q}");
        }
        assert_eq!(h.mean(), reference.mean());
    }
}
