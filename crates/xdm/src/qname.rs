//! Qualified names and the interning pool shared by every layer of the engine.
//!
//! The talk's TokenStream substrate relies on dictionary compression of
//! QNames ("pooling: store strings only once — works for all QNames"); the
//! [`NamePool`] is that dictionary. Every parsed or constructed name is
//! interned once and referred to by a dense [`NameId`] thereafter, so
//! name-test comparisons in path steps and structural joins are integer
//! compares, never string compares.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An expanded qualified name: optional namespace URI, optional prefix and
/// a local part. Per the XPath data model, equality ignores the prefix.
#[derive(Debug, Clone)]
pub struct QName {
    ns: Option<Arc<str>>,
    prefix: Option<Arc<str>>,
    local: Arc<str>,
}

impl QName {
    /// A name with no namespace, e.g. `book`.
    pub fn local(local: &str) -> Self {
        QName {
            ns: None,
            prefix: None,
            local: Arc::from(local),
        }
    }

    /// A name in a namespace with no prefix (default-namespace binding).
    pub fn ns(ns: &str, local: &str) -> Self {
        QName {
            ns: Some(Arc::from(ns)),
            prefix: None,
            local: Arc::from(local),
        }
    }

    /// A fully spelled-out name, e.g. `amz:ref` in `www.amazon.com`.
    pub fn prefixed(ns: &str, prefix: &str, local: &str) -> Self {
        QName {
            ns: Some(Arc::from(ns)),
            prefix: Some(Arc::from(prefix)),
            local: Arc::from(local),
        }
    }

    pub fn namespace(&self) -> Option<&str> {
        self.ns.as_deref()
    }

    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    pub fn local_name(&self) -> &str {
        &self.local
    }

    /// The lexical form used for serialization: `prefix:local` when a
    /// prefix is known, otherwise just the local part.
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.to_string(),
        }
    }

    /// Clark notation `{uri}local`, convenient for diagnostics.
    pub fn clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{}}}{}", ns, self.local),
            None => self.local.to_string(),
        }
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.local == other.local && self.ns.as_deref() == other.ns.as_deref()
    }
}
impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ns.as_deref().hash(state);
        self.local.hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ns.as_deref(), &*self.local).cmp(&(other.ns.as_deref(), &*other.local))
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lexical())
    }
}

/// Dense identifier of an interned name. `NameId(0)` is reserved for the
/// anonymous/absent name so token encodings can use 0 as "no name".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    pub const NONE: NameId = NameId(0);

    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

#[derive(Default)]
struct PoolInner {
    names: Vec<QName>,
    index: HashMap<QName, NameId>,
}

/// Thread-safe interning pool mapping [`QName`]s to dense [`NameId`]s.
///
/// One pool is shared by a whole engine instance; documents parsed under
/// the same pool can be joined by integer name comparison.
pub struct NamePool {
    inner: RwLock<PoolInner>,
}

impl NamePool {
    pub fn new() -> Self {
        let mut inner = PoolInner::default();
        // Slot 0: the absent name.
        let absent = QName::local("");
        inner.index.insert(absent.clone(), NameId::NONE);
        inner.names.push(absent);
        NamePool {
            inner: RwLock::new(inner),
        }
    }

    /// Intern a name, returning its dense id (idempotent).
    pub fn intern(&self, name: &QName) -> NameId {
        {
            let inner = self.inner.read();
            if let Some(id) = inner.index.get(name) {
                return *id;
            }
        }
        let mut inner = self.inner.write();
        if let Some(id) = inner.index.get(name) {
            return *id;
        }
        let id = NameId(inner.names.len() as u32);
        inner.names.push(name.clone());
        inner.index.insert(name.clone(), id);
        id
    }

    /// Shorthand for interning a no-namespace name.
    pub fn intern_local(&self, local: &str) -> NameId {
        self.intern(&QName::local(local))
    }

    /// Resolve an id back to the full name. Panics on an id from a
    /// different pool, which is a logic error by construction.
    pub fn resolve(&self, id: NameId) -> QName {
        self.inner.read().names[id.0 as usize].clone()
    }

    /// Number of distinct names interned so far (incl. the absent name).
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Look up without interning.
    pub fn get(&self, name: &QName) -> Option<NameId> {
        self.inner.read().index.get(name).copied()
    }
}

impl Default for NamePool {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for NamePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NamePool({} names)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::prefixed("urn:x", "a", "name");
        let b = QName::prefixed("urn:x", "b", "name");
        assert_eq!(a, b);
        let c = QName::ns("urn:x", "name");
        assert_eq!(a, c);
    }

    #[test]
    fn equality_distinguishes_namespace() {
        let a = QName::ns("urn:x", "name");
        let b = QName::ns("urn:y", "name");
        assert_ne!(a, b);
        assert_ne!(QName::local("name"), a);
    }

    #[test]
    fn intern_is_idempotent() {
        let pool = NamePool::new();
        let id1 = pool.intern(&QName::local("book"));
        let id2 = pool.intern(&QName::local("book"));
        assert_eq!(id1, id2);
        assert_eq!(pool.resolve(id1).local_name(), "book");
    }

    #[test]
    fn intern_distinguishes_namespaces() {
        let pool = NamePool::new();
        let id1 = pool.intern(&QName::local("book"));
        let id2 = pool.intern(&QName::ns("urn:lib", "book"));
        assert_ne!(id1, id2);
    }

    #[test]
    fn prefix_does_not_split_pool_entries() {
        let pool = NamePool::new();
        let id1 = pool.intern(&QName::prefixed("urn:lib", "a", "book"));
        let id2 = pool.intern(&QName::prefixed("urn:lib", "b", "book"));
        assert_eq!(id1, id2);
    }

    #[test]
    fn none_id_is_reserved() {
        let pool = NamePool::new();
        assert_eq!(pool.len(), 1);
        let id = pool.intern(&QName::local("x"));
        assert!(!id.is_none());
        assert!(NameId::NONE.is_none());
    }

    #[test]
    fn clark_and_lexical_forms() {
        let q = QName::prefixed("urn:lib", "l", "book");
        assert_eq!(q.clark(), "{urn:lib}book");
        assert_eq!(q.lexical(), "l:book");
        assert_eq!(QName::local("book").clark(), "book");
    }

    #[test]
    fn get_does_not_intern() {
        let pool = NamePool::new();
        assert!(pool.get(&QName::local("zzz")).is_none());
        pool.intern_local("zzz");
        assert!(pool.get(&QName::local("zzz")).is_some());
    }
}
