//! The path-id dictionary: every distinct root-to-element tag path in a
//! document gets a small dense [`PathId`]. Inverted-list entries carry
//! their path id, so linear `//a/b` / `/a//b` patterns are answered by
//! matching the *dictionary* (a few dozen entries) against the pattern
//! and then selecting the postings whose path id is in the matching set
//! — no per-node ancestry re-verification.
//!
//! This is the DataGuide-style summary RadegastXDB and friends pair with
//! labeled inverted lists: the number of distinct paths is tiny compared
//! to the number of nodes, so pattern matching over the dictionary is
//! effectively free.

use std::collections::HashMap;
use xqr_joins::EdgeKind;
use xqr_xdm::NameId;

/// Dense identifier of a distinct root-to-element tag path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

const NO_PARENT: u32 = u32::MAX;

/// One linear step of a path pattern: edge + element/attribute name.
pub type PathStep = (EdgeKind, NameId);

/// Interned set of root-to-element paths. Entry `i` records the path's
/// last tag name and its parent path (or the document root).
#[derive(Debug, Default)]
pub struct PathDict {
    parent: Vec<u32>,
    name: Vec<NameId>,
    depth: Vec<u16>,
    map: HashMap<(u32, NameId), PathId>,
}

impl PathDict {
    pub fn new() -> PathDict {
        PathDict::default()
    }

    /// Intern the path `parent / name` (idempotent).
    pub fn intern(&mut self, parent: Option<PathId>, name: NameId) -> PathId {
        let pkey = parent.map_or(NO_PARENT, |p| p.0);
        if let Some(&id) = self.map.get(&(pkey, name)) {
            return id;
        }
        let id = PathId(self.parent.len() as u32);
        self.parent.push(pkey);
        self.name.push(name);
        self.depth
            .push(parent.map_or(1, |p| self.depth[p.0 as usize].saturating_add(1)));
        self.map.insert((pkey, name), id);
        id
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The path's last tag name.
    pub fn name(&self, p: PathId) -> NameId {
        self.name[p.0 as usize]
    }

    /// The parent path, or `None` for paths of root elements.
    pub fn parent(&self, p: PathId) -> Option<PathId> {
        let raw = self.parent[p.0 as usize];
        (raw != NO_PARENT).then_some(PathId(raw))
    }

    /// Number of tags on the path (root element = 1).
    pub fn depth(&self, p: PathId) -> u16 {
        self.depth[p.0 as usize]
    }

    /// The root-first tag sequence of the path.
    pub fn tag_sequence(&self, p: PathId) -> Vec<NameId> {
        let mut seq = Vec::with_capacity(self.depth(p) as usize);
        let mut cur = Some(p);
        while let Some(c) = cur {
            seq.push(self.name(c));
            cur = self.parent(c);
        }
        seq.reverse();
        seq
    }

    /// Paths whose full tag sequence matches `steps` (the pattern's last
    /// step must align with the path's last tag): the answer set for a
    /// linear element pattern. Returned as a membership vector indexed
    /// by `PathId`.
    pub fn matching(&self, steps: &[PathStep]) -> Vec<bool> {
        self.match_table(steps, true)
    }

    /// Paths whose tag sequence matches `steps` against a *prefix* (the
    /// pattern may end strictly above the path's last tag). Used for the
    /// owner constraint of `…//@attr` steps, where the attribute's owner
    /// may be any descendant-or-self of the last element step.
    pub fn matching_prefix(&self, steps: &[PathStep]) -> Vec<bool> {
        self.match_table(steps, false)
    }

    /// One top-down pass over the path *tree*: each path's NFA state set
    /// is derived from its parent's in O(1) bit operations, instead of
    /// re-running a DP over the full tag chain per path. Bit `k` of
    /// `exact[p]` = "steps[0..k] consume exactly the chain of `p`";
    /// `active[p]` additionally keeps states reached at any ancestor
    /// (they can fire later only through descendant-edged steps).
    /// Parents are interned before children, so ids ascend the tree.
    fn match_table(&self, steps: &[PathStep], require_end: bool) -> Vec<bool> {
        let m = steps.len();
        if m >= 64 {
            // Bitmask width exceeded (never by compiler-planted
            // patterns): per-path DP fallback.
            return (0..self.len())
                .map(|i| self.path_matches(PathId(i as u32), steps, require_end))
                .collect();
        }
        let full: u64 = 1 << m;
        // fire[name] = steps matching that tag name; desc_edges = steps
        // reachable across skipped tags.
        let mut fire: HashMap<NameId, u64> = HashMap::new();
        let mut desc_edges: u64 = 0;
        for (k, &(edge, name)) in steps.iter().enumerate() {
            *fire.entry(name).or_insert(0) |= 1 << k;
            if edge == EdgeKind::Descendant {
                desc_edges |= 1 << k;
            }
        }
        let child_edges = !desc_edges;
        let mut exact = vec![0u64; self.len()];
        let mut active = vec![0u64; self.len()];
        let mut out = vec![false; self.len()];
        for i in 0..self.len() {
            let (pe, pa) = match self.parent[i] {
                NO_PARENT => (1, 1), // bit 0: nothing consumed at the doc root
                p => {
                    debug_assert!((p as usize) < i, "parents intern first");
                    (exact[p as usize], active[p as usize])
                }
            };
            // A child-edged step fires only from a state reached exactly
            // at the parent; a descendant-edged step from any ancestor.
            let avail = (pe & child_edges) | (pa & desc_edges);
            let fired = avail & fire.get(&self.name[i]).copied().unwrap_or(0);
            exact[i] = fired << 1;
            active[i] = exact[i] | pa;
            out[i] = if require_end {
                exact[i] & full != 0
            } else {
                active[i] & full != 0
            };
        }
        out
    }

    /// Match one path against a linear pattern with `/` and `//` edges.
    /// Positions are tracked as a boolean set over "last matched tag
    /// index" (`pos[i+1]` = pattern consumed up to tag `i`; `pos[0]` =
    /// nothing consumed, i.e. sitting on the document root).
    fn path_matches(&self, p: PathId, steps: &[PathStep], require_end: bool) -> bool {
        let seq = self.tag_sequence(p);
        let n = seq.len();
        let mut pos = vec![false; n + 1];
        pos[0] = true;
        for (edge, name) in steps {
            let mut next = vec![false; n + 1];
            match edge {
                EdgeKind::Child => {
                    for i in 0..n {
                        if pos[i] && seq[i] == *name {
                            next[i + 1] = true;
                        }
                    }
                }
                EdgeKind::Descendant => {
                    let mut reachable = false;
                    for i in 0..n {
                        reachable |= pos[i];
                        if reachable && seq[i] == *name {
                            next[i + 1] = true;
                        }
                    }
                }
            }
            pos = next;
        }
        if require_end {
            pos[n]
        } else {
            pos.iter().any(|&b| b)
        }
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        self.parent.len() * (4 + 4 + 2) + self.map.len() * (8 + 4 + std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> (PathDict, NameId, NameId, NameId) {
        // Paths: /a, /a/b, /a/b/c, /a/c
        let (a, b, c) = (NameId(1), NameId(2), NameId(3));
        let mut d = PathDict::new();
        let pa = d.intern(None, a);
        let pab = d.intern(Some(pa), b);
        d.intern(Some(pab), c);
        d.intern(Some(pa), c);
        (d, a, b, c)
    }

    #[test]
    fn interning_is_idempotent() {
        let (mut d, a, b, _) = dict();
        let before = d.len();
        let pa = d.intern(None, a);
        assert_eq!(pa, PathId(0));
        d.intern(Some(pa), b);
        assert_eq!(d.len(), before);
        assert_eq!(d.tag_sequence(PathId(2)), vec![a, b, NameId(3)]);
        assert_eq!(d.depth(PathId(2)), 3);
    }

    #[test]
    fn child_and_descendant_edges_match_expected_paths() {
        let (d, a, b, c) = dict();
        use EdgeKind::{Child, Descendant};
        // //c — both c paths
        assert_eq!(
            d.matching(&[(Descendant, c)]),
            vec![false, false, true, true]
        );
        // /a/c — only the shallow one
        assert_eq!(
            d.matching(&[(Child, a), (Child, c)]),
            vec![false, false, false, true]
        );
        // //b//c and /a//c
        assert_eq!(
            d.matching(&[(Descendant, b), (Descendant, c)]),
            vec![false, false, true, false]
        );
        assert_eq!(
            d.matching(&[(Child, a), (Descendant, c)]),
            vec![false, false, true, true]
        );
        // /b — no path starts with b
        assert_eq!(d.matching(&[(Child, b)]), vec![false; 4]);
    }

    #[test]
    fn tree_dp_agrees_with_per_path_dp() {
        // A dictionary with repeated tags and both recursive shapes, so
        // child/descendant edges and skipped levels all get exercised.
        let (a, b, c) = (NameId(1), NameId(2), NameId(3));
        let mut d = PathDict::new();
        let pa = d.intern(None, a);
        let pab = d.intern(Some(pa), b);
        let paba = d.intern(Some(pab), a);
        d.intern(Some(paba), c);
        d.intern(Some(pab), c);
        let pac = d.intern(Some(pa), c);
        d.intern(Some(pac), b);
        use EdgeKind::{Child, Descendant};
        let patterns: Vec<Vec<PathStep>> = vec![
            vec![],
            vec![(Descendant, c)],
            vec![(Child, a), (Descendant, c)],
            vec![(Descendant, a), (Child, b), (Descendant, c)],
            vec![(Descendant, a), (Descendant, a)],
            vec![(Child, a), (Child, b), (Child, a), (Child, c)],
            vec![(Descendant, b), (Child, c)],
        ];
        for steps in &patterns {
            for require_end in [true, false] {
                let fast = d.match_table(steps, require_end);
                let slow: Vec<bool> = (0..d.len())
                    .map(|i| d.path_matches(PathId(i as u32), steps, require_end))
                    .collect();
                assert_eq!(fast, slow, "{steps:?} require_end={require_end}");
            }
        }
    }

    #[test]
    fn prefix_matching_accepts_descendants_of_the_match() {
        let (d, a, b, _) = dict();
        use EdgeKind::{Child, Descendant};
        // Owner constraint for //a/b//@x: any path at-or-below /…/a/b.
        assert_eq!(
            d.matching_prefix(&[(Descendant, a), (Child, b)]),
            vec![false, true, true, false]
        );
        // Empty pattern (bare //@x): every owner qualifies.
        assert_eq!(d.matching_prefix(&[]), vec![true; 4]);
        // Exact matching with an empty pattern never selects an element.
        assert_eq!(d.matching(&[]), vec![false; 4]);
    }
}
