//! # xqr-index — persistent structural indexes
//!
//! The layer between storage and execution that the structural-join
//! papers assume: per-document **tag/path inverted lists**. For every
//! element/attribute QName the index stores a flat, document-ordered,
//! cache-friendly array of containment labels `(start, end, level)` plus
//! node ids — exactly the sorted input streams the join operators in
//! `xqr-joins` consume — and a [`PathDict`] interning every distinct
//! root-to-element tag path, so linear steps like `//a/b` and `/a//b`
//! are answered from path-indexed sublists without re-verifying
//! ancestry node by node.
//!
//! Indexes attach to the store through its generation-checked aux slot
//! ([`attach_index`]/[`index_of`]): they are evicted together with their
//! document and can never be read through a stale [`xqr_store::DocId`].
//! Builds are guarded ([`DocIndex::build_guarded`]) so a hostile
//! document trips the caller's budgets instead of blowing memory.
//!
//! ```
//! use xqr_index::{ensure_indexed, IndexedAccess};
//! use xqr_store::Store;
//! use xqr_xdm::{QName, QueryGuard};
//!
//! let store = Store::new();
//! let id = store.load_xml("<a><b/><b/></a>", None).unwrap();
//! let index = ensure_indexed(&store, id, &QueryGuard::unlimited())
//!     .unwrap()
//!     .unwrap();
//! let b = store.names().get(&QName::local("b")).unwrap();
//! assert_eq!(index.element_labels(b).len(), 2); // sorted by start
//! ```

pub mod doc_index;
pub mod path_dict;
pub mod registry;

pub use doc_index::{DocIndex, IndexedAccess, Postings};
pub use path_dict::{PathDict, PathId, PathStep};
pub use registry::{attach_index, ensure_indexed, index_of, SharedIndex};
