//! The per-document structural index: tag/path inverted lists.
//!
//! For every element and attribute QName the index holds a flat,
//! document-ordered array of containment labels [`Labeled`] — exactly
//! the sorted input streams the structural/twig join algorithms in
//! `xqr-joins` consume — plus, in a parallel array, each entry's
//! [`PathId`] into the document's [`PathDict`]. One preorder pass builds
//! everything; lookups are then hash-probe + slice.

use crate::path_dict::{PathDict, PathId, PathStep};
use std::collections::HashMap;
use xqr_joins::{EdgeKind, Labeled};
use xqr_store::{Document, NodeId};
use xqr_xdm::{NameId, NodeKind, QueryGuard, Result};

/// The inverted list for one QName: labels sorted by `start`, with each
/// entry's path id alongside (for elements: the element's own path; for
/// attributes: the *owning element's* path).
#[derive(Debug, Default)]
pub struct Postings {
    labels: Vec<Labeled>,
    paths: Vec<PathId>,
}

impl Postings {
    pub fn labels(&self) -> &[Labeled] {
        &self.labels
    }

    pub fn paths(&self) -> &[PathId] {
        &self.paths
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The range cursor over this inverted list: entries whose `start`
    /// falls in `[lo, hi]`, located by binary search. This is the slice
    /// a label-range morsel reads — zero-copy off the postings, whether
    /// they live on the heap or in a mapped segment.
    pub fn labels_in(&self, lo: u32, hi: u32) -> &[Labeled] {
        xqr_joins::range_by_start(&self.labels, lo, hi)
    }

    /// The path-indexed sublist: entries whose path id is in `keep`
    /// (a membership vector from [`PathDict::matching`]). Preserves
    /// document order.
    pub fn filtered(&self, keep: &[bool]) -> Vec<Labeled> {
        self.labels
            .iter()
            .zip(&self.paths)
            .filter(|(_, p)| keep.get(p.0 as usize).copied().unwrap_or(false))
            .map(|(l, _)| *l)
            .collect()
    }

    fn push(&mut self, label: Labeled, path: PathId) {
        self.labels.push(label);
        self.paths.push(path);
    }
}

/// Read access to a document's inverted lists, as consumed by the join
/// operators: per-name sorted label streams plus path-filtered views.
///
/// Both the heap-built [`DocIndex`] and the mmap-backed segment view
/// implement this, so every index consumer (scan planner, catalog
/// accounting) works against `Arc<dyn IndexedAccess>` and never learns
/// whether the lists live on the heap or in a mapped file.
pub trait IndexedAccess: Send + Sync {
    /// All elements named `name`, document-ordered. Empty for unknown names.
    fn element_labels(&self, name: NameId) -> &[Labeled];
    /// All attributes named `name`, document-ordered.
    fn attribute_labels(&self, name: NameId) -> &[Labeled];
    /// The document's path dictionary.
    fn path_dict(&self) -> &PathDict;
    /// Elements named `name` restricted to paths in `keep`.
    fn elements_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled>;
    /// Attributes named `name` whose owner's path is in `keep`.
    fn attributes_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled>;
    /// Total indexed entries (elements + attributes).
    fn entry_count(&self) -> usize;
    /// Approximate footprint in bytes — heap for built indexes, mapped
    /// bytes for segment views; what the catalog charges its budget.
    fn memory_bytes(&self) -> usize;

    /// Downcast hook for serializers that need the concrete heap-built
    /// index (segment writers walk its postings maps directly). Mapped
    /// views return `None` — they already *are* serialized.
    fn as_doc_index(&self) -> Option<&DocIndex> {
        None
    }

    /// Range cursor: elements named `name` whose `start` label falls in
    /// `[lo, hi]` — the per-morsel window of a label-range-partitioned
    /// parallel join. Binary search over the sorted list; zero-copy.
    fn elements_in_range(&self, name: NameId, lo: u32, hi: u32) -> &[Labeled] {
        xqr_joins::range_by_start(self.element_labels(name), lo, hi)
    }

    /// Range cursor over an attribute inverted list.
    fn attributes_in_range(&self, name: NameId, lo: u32, hi: u32) -> &[Labeled] {
        xqr_joins::range_by_start(self.attribute_labels(name), lo, hi)
    }

    /// Answer a *linear* element pattern (`/a/b`, `//a//b`, …) entirely
    /// from the path dictionary: the result is the path-indexed sublist
    /// of the final step's name, already in document order and distinct.
    /// An empty pattern yields nothing (there is no element at the root
    /// path itself).
    fn linear_elements(&self, steps: &[PathStep]) -> Vec<Labeled> {
        let Some(&(_, last_name)) = steps.last() else {
            return Vec::new();
        };
        self.elements_on_paths(last_name, &self.path_dict().matching(steps))
    }

    /// Answer a linear pattern ending in an attribute step: `owner_steps`
    /// constrain the owning element's path (`attr_edge` says whether the
    /// attribute hangs off the last step directly (`/@a`) or off any
    /// descendant-or-self of it (`//@a`)).
    fn linear_attributes(
        &self,
        owner_steps: &[PathStep],
        attr_edge: EdgeKind,
        attr: NameId,
    ) -> Vec<Labeled> {
        let keep = match attr_edge {
            EdgeKind::Child => self.path_dict().matching(owner_steps),
            EdgeKind::Descendant => self.path_dict().matching_prefix(owner_steps),
        };
        self.attributes_on_paths(attr, &keep)
    }
}

/// The per-document structural index.
#[derive(Debug)]
pub struct DocIndex {
    paths: PathDict,
    elements: HashMap<NameId, Postings>,
    attributes: HashMap<NameId, Postings>,
    entry_count: usize,
    bytes: usize,
}

const EMPTY: &[Labeled] = &[];

impl DocIndex {
    /// Build the index with no resource guard (tests, benches).
    pub fn build(doc: &Document) -> Result<DocIndex> {
        Self::build_guarded(doc, &QueryGuard::unlimited())
    }

    /// Build the index in one guarded preorder pass: every indexed entry
    /// is charged against the guard's item budget and its deadline /
    /// cancellation checks, so a hostile document cannot blow past the
    /// caller's limits during the build.
    pub fn build_guarded(doc: &Document, guard: &QueryGuard) -> Result<DocIndex> {
        let mut paths = PathDict::new();
        let mut elements: HashMap<NameId, Postings> = HashMap::new();
        let mut attributes: HashMap<NameId, Postings> = HashMap::new();
        let mut entry_count = 0usize;
        // Stack of open subtrees: (subtree end, path id of the element;
        // `None` for the document node).
        let mut stack: Vec<(u32, Option<PathId>)> = Vec::new();
        for i in 0..doc.len() as u32 {
            let n = NodeId(i);
            while let Some(&(end, _)) = stack.last() {
                if end < i {
                    stack.pop();
                } else {
                    break;
                }
            }
            let label = Labeled {
                node: n,
                start: doc.start(n),
                end: doc.end(n),
                level: doc.level(n),
            };
            match doc.kind(n) {
                NodeKind::Document => stack.push((doc.end(n), None)),
                NodeKind::Element => {
                    guard.note_items(1)?;
                    let parent = stack.last().and_then(|&(_, p)| p);
                    let pid = paths.intern(parent, doc.name_id(n));
                    elements.entry(doc.name_id(n)).or_default().push(label, pid);
                    entry_count += 1;
                    stack.push((doc.end(n), Some(pid)));
                }
                NodeKind::Attribute => {
                    guard.note_items(1)?;
                    // Attributes appear immediately inside their owner's
                    // interval, so the stack top is the owning element.
                    let Some(&(_, Some(owner))) = stack.last() else {
                        continue;
                    };
                    attributes
                        .entry(doc.name_id(n))
                        .or_default()
                        .push(label, owner);
                    entry_count += 1;
                }
                _ => {}
            }
        }
        let mut index = DocIndex {
            paths,
            elements,
            attributes,
            entry_count,
            bytes: 0,
        };
        index.bytes = index.compute_bytes();
        Ok(index)
    }

    /// Total indexed entries (elements + attributes).
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Approximate heap footprint — what the catalog charges against its
    /// byte budget.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    fn compute_bytes(&self) -> usize {
        let per_name = |m: &HashMap<NameId, Postings>| -> usize {
            m.values()
                .map(|p| {
                    p.labels.len() * std::mem::size_of::<Labeled>()
                        + p.paths.len() * std::mem::size_of::<PathId>()
                })
                .sum::<usize>()
                + m.len() * 64 // map entry + Vec headers
        };
        std::mem::size_of::<DocIndex>()
            + self.paths.memory_bytes()
            + per_name(&self.elements)
            + per_name(&self.attributes)
    }

    /// Iterate the element inverted lists (serialization order is
    /// unspecified; segment writers sort by name id for determinism).
    pub fn element_postings(&self) -> impl Iterator<Item = (NameId, &Postings)> {
        self.elements.iter().map(|(n, p)| (*n, p))
    }

    /// Iterate the attribute inverted lists.
    pub fn attribute_postings(&self) -> impl Iterator<Item = (NameId, &Postings)> {
        self.attributes.iter().map(|(n, p)| (*n, p))
    }
}

impl IndexedAccess for DocIndex {
    fn element_labels(&self, name: NameId) -> &[Labeled] {
        self.elements.get(&name).map_or(EMPTY, |p| p.labels())
    }

    fn attribute_labels(&self, name: NameId) -> &[Labeled] {
        self.attributes.get(&name).map_or(EMPTY, |p| p.labels())
    }

    fn path_dict(&self) -> &PathDict {
        &self.paths
    }

    fn elements_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled> {
        self.elements
            .get(&name)
            .map_or_else(Vec::new, |p| p.filtered(keep))
    }

    fn attributes_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled> {
        self.attributes
            .get(&name)
            .map_or_else(Vec::new, |p| p.filtered(keep))
    }

    fn entry_count(&self) -> usize {
        self.entry_count
    }

    fn memory_bytes(&self) -> usize {
        self.bytes
    }

    fn as_doc_index(&self) -> Option<&DocIndex> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use xqr_xdm::{Limits, NamePool, QName};

    const DOC: &str = r#"<a k="1"><b><c/></b><c k="2"/><b><d/><c/></b></a>"#;

    fn build() -> (Arc<Document>, DocIndex, Arc<NamePool>) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(DOC, names.clone()).unwrap();
        let index = DocIndex::build(&doc).unwrap();
        (doc, index, names)
    }

    fn nid(names: &NamePool, local: &str) -> NameId {
        names.get(&QName::local(local)).unwrap()
    }

    #[test]
    fn inverted_lists_match_document_scan() {
        let (doc, index, names) = build();
        for local in ["a", "b", "c", "d"] {
            let name = nid(&names, local);
            let scan = xqr_joins::element_list(&doc, name);
            assert_eq!(index.element_labels(name), &scan[..], "{local}");
        }
        let k = nid(&names, "k");
        assert_eq!(index.attribute_labels(k).len(), 2);
        assert!(index
            .element_labels(nid(&names, "a"))
            .windows(2)
            .all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn linear_patterns_answer_from_path_dictionary() {
        let (doc, index, names) = build();
        use EdgeKind::{Child, Descendant};
        let (a, b, c) = (nid(&names, "a"), nid(&names, "b"), nid(&names, "c"));
        // //b/c — the two c's under b, not the direct a/c child.
        let r = index.linear_elements(&[(Descendant, b), (Child, c)]);
        assert_eq!(r.len(), 2);
        for l in &r {
            let parent = doc.parent(l.node).unwrap();
            assert_eq!(doc.name_id(parent), b);
        }
        // /a/c — only the direct child.
        let r = index.linear_elements(&[(Child, a), (Child, c)]);
        assert_eq!(r.len(), 1);
        // //a//c — all three.
        assert_eq!(
            index
                .linear_elements(&[(Descendant, a), (Descendant, c)])
                .len(),
            3
        );
        // Unknown name → empty.
        assert!(index.linear_elements(&[(Child, NameId(999))]).is_empty());
    }

    #[test]
    fn attribute_lists_carry_owner_paths() {
        let (doc, index, names) = build();
        use EdgeKind::{Child, Descendant};
        let (a, c, k) = (nid(&names, "a"), nid(&names, "c"), nid(&names, "k"));
        // /a/@k — the root element's attribute only.
        let r = index.linear_attributes(&[(Child, a)], EdgeKind::Child, k);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.parent(r[0].node).map(|p| doc.name_id(p)), Some(a));
        // //c/@k — the c-owned one.
        let r = index.linear_attributes(&[(Descendant, c)], EdgeKind::Child, k);
        assert_eq!(r.len(), 1);
        // //@k (empty owner pattern, descendant edge) — both.
        assert_eq!(
            index.linear_attributes(&[], EdgeKind::Descendant, k).len(),
            2
        );
        // /a//@k — both (owner at or below /a).
        assert_eq!(
            index
                .linear_attributes(&[(Child, a)], EdgeKind::Descendant, k)
                .len(),
            2
        );
    }

    #[test]
    fn range_cursors_slice_the_sorted_lists() {
        let (_doc, index, names) = build();
        let c = nid(&names, "c");
        let all = index.element_labels(c);
        assert_eq!(all.len(), 3);
        // Full window is the whole list, zero-copy.
        let full = index.elements_in_range(c, 0, u32::MAX);
        assert_eq!(full.as_ptr(), all.as_ptr());
        assert_eq!(full.len(), 3);
        // A window covering only the middle entry.
        let mid = index.elements_in_range(c, all[1].start, all[1].start);
        assert_eq!(mid, &all[1..2]);
        // Disjoint window → empty; unknown name → empty.
        assert!(index.elements_in_range(c, u32::MAX, u32::MAX).is_empty());
        assert!(index.elements_in_range(NameId(999), 0, u32::MAX).is_empty());
        // Attribute cursor, and the Postings-level equivalent.
        let k = nid(&names, "k");
        let ks = index.attribute_labels(k);
        assert_eq!(index.attributes_in_range(k, 0, u32::MAX), ks);
        assert_eq!(
            index.attributes_in_range(k, ks[1].start, u32::MAX),
            &ks[1..]
        );
        let (_, postings) = index.element_postings().find(|(n, _)| *n == c).unwrap();
        assert_eq!(postings.labels_in(0, u32::MAX), all);
    }

    #[test]
    fn guarded_build_respects_item_budget() {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(DOC, names).unwrap();
        let tight = QueryGuard::new(Limits::unlimited().with_max_items(3));
        let err = DocIndex::build_guarded(&doc, &tight).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        let roomy = QueryGuard::new(
            Limits::unlimited()
                .with_max_items(1000)
                .with_deadline(Duration::from_secs(5)),
        );
        assert!(DocIndex::build_guarded(&doc, &roomy).is_ok());
    }
}
