//! Attaching indexes to store slots.
//!
//! The store cannot depend on this crate, so indexes ride in the store's
//! generation-checked per-slot aux attachment: they are evicted together
//! with their document, and a stale [`DocId`] can never observe another
//! document's index (the store refuses both the write and the read when
//! the generation doesn't match).

use crate::doc_index::{DocIndex, IndexedAccess};
use std::sync::Arc;
use xqr_store::{DocId, Store};
use xqr_xdm::{QueryGuard, Result};

/// A shared handle to any index implementation — heap-built
/// [`DocIndex`] or an mmap-backed segment view.
pub type SharedIndex = Arc<dyn IndexedAccess>;

/// The concrete aux payload: `Arc<dyn Any>` can only downcast to a
/// sized type, so the trait object rides inside this wrapper.
struct IndexSlot(SharedIndex);

/// Attach a built index to its document's slot. Returns `false` when the
/// id is stale — the index is dropped instead of being attached to
/// whatever document reused the slot.
pub fn attach_index(store: &Store, id: DocId, index: SharedIndex) -> bool {
    store.set_aux(id, Arc::new(IndexSlot(index)))
}

/// Look up the index for a document, generation checked. `None` means
/// unindexed *or* stale id.
pub fn index_of(store: &Store, id: DocId) -> Option<SharedIndex> {
    let slot = store.aux(id)?.downcast::<IndexSlot>().ok()?;
    Some(slot.0.clone())
}

/// Ensure a document is indexed: reuse an existing attachment or build
/// one under `guard` and attach it. `Ok(None)` means the id went stale
/// (document removed concurrently); errors are guard trips during the
/// build.
pub fn ensure_indexed(store: &Store, id: DocId, guard: &QueryGuard) -> Result<Option<SharedIndex>> {
    if let Some(existing) = index_of(store, id) {
        return Ok(Some(existing));
    }
    xqr_faults::faultpoint!("index.build");
    let Some(doc) = store.try_document(id) else {
        return Ok(None);
    };
    let index: SharedIndex = Arc::new(DocIndex::build_guarded(&doc, guard)?);
    Ok(attach_index(store, id, index.clone()).then_some(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xdm::QName;

    #[test]
    fn ensure_indexed_builds_once_and_reuses() {
        let store = Store::new();
        let id = store.load_xml("<a><b/></a>", None).unwrap();
        assert!(index_of(&store, id).is_none());
        let guard = QueryGuard::unlimited();
        let first = ensure_indexed(&store, id, &guard).unwrap().unwrap();
        let second = ensure_indexed(&store, id, &guard).unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.entry_count(), 2);
    }

    /// Satellite regression test: a stale `DocId` must never read another
    /// document's index. The slot is reused by a *different* document
    /// with its own index; every access path through the old id must
    /// come back empty-handed.
    #[test]
    fn stale_doc_id_never_reads_another_documents_index() {
        let store = Store::new();
        let old_id = store
            .load_xml("<old><x/><x/></old>", Some("old.xml"))
            .unwrap();
        let guard = QueryGuard::unlimited();
        let old_index = ensure_indexed(&store, old_id, &guard).unwrap().unwrap();
        let x = store.names().intern(&QName::local("x"));
        assert_eq!(old_index.element_labels(x).len(), 2);

        // Remove and reload: the slot index is reused, generation bumped.
        assert!(store.remove_document(old_id));
        let new_id = store.load_xml("<new><y/></new>", Some("new.xml")).unwrap();
        assert_eq!(new_id.index(), old_id.index());
        assert_ne!(new_id.generation(), old_id.generation());
        let new_index = ensure_indexed(&store, new_id, &guard).unwrap().unwrap();

        // The stale id resolves no index, and attaching through it fails.
        assert!(index_of(&store, old_id).is_none());
        assert!(!attach_index(&store, old_id, old_index.clone()));
        // The failed attach must not have clobbered the live document's
        // index either.
        let still = index_of(&store, new_id).expect("live index intact");
        assert!(Arc::ptr_eq(&still, &new_index));
        // ensure_indexed through the stale id reports "gone", it does
        // not resurrect or rebuild anything.
        assert!(ensure_indexed(&store, old_id, &guard).unwrap().is_none());
        assert!(index_of(&store, old_id).is_none());

        // And the live document's index describes the *new* document.
        let y = store.names().intern(&QName::local("y"));
        assert_eq!(new_index.element_labels(y).len(), 1);
        assert!(new_index.element_labels(x).is_empty());
    }
}
