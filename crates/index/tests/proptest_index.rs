//! Property tests for the structural index: on randomized documents,
//! every inverted list must equal the document-order scan, every label
//! must agree with the store, and every path-dictionary answer must
//! agree with an independent recursive matcher over real ancestor
//! chains.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use xqr_index::{DocIndex, IndexedAccess, PathStep};
use xqr_joins::{EdgeKind, Labeled};
use xqr_store::{Document, NodeId};
use xqr_xdm::{NameId, NamePool, NodeKind, QName};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

/// Root-to-`n` chain of element names (the ancestor tag sequence the
/// path dictionary interns), read straight off the tree.
fn chain_of(doc: &Document, n: NodeId) -> Vec<NameId> {
    let mut chain = Vec::new();
    let mut cur = Some(n);
    while let Some(c) = cur {
        if doc.kind(c) == NodeKind::Element {
            chain.push(doc.name_id(c));
        }
        cur = doc.parent(c);
    }
    chain.reverse();
    chain
}

/// Independent oracle for linear pattern matching: does the pattern
/// consume the whole chain? Recursive backtracking — deliberately a
/// different algorithm from the dictionary's DP.
fn chain_matches(chain: &[NameId], steps: &[PathStep]) -> bool {
    match steps.split_first() {
        None => chain.is_empty(),
        Some((&(edge, name), rest)) => match edge {
            EdgeKind::Child => chain.first() == Some(&name) && chain_matches(&chain[1..], rest),
            EdgeKind::Descendant => {
                (0..chain.len()).any(|i| chain[i] == name && chain_matches(&chain[i + 1..], rest))
            }
        },
    }
}

/// Prefix variant: some prefix of the chain matches the pattern fully.
fn chain_prefix_matches(chain: &[NameId], steps: &[PathStep]) -> bool {
    (0..=chain.len()).any(|j| chain_matches(&chain[..j], steps))
}

fn scan_kind(doc: &Document, kind: NodeKind, name: NameId) -> Vec<Labeled> {
    (0..doc.len() as u32)
        .map(NodeId)
        .filter(|&n| doc.kind(n) == kind && doc.name_id(n) == name)
        .map(|n| Labeled {
            node: n,
            start: doc.start(n),
            end: doc.end(n),
            level: doc.level(n),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_agrees_with_document_scan_and_chain_oracle(
        seed in 0u64..10_000,
        nodes in 10usize..250,
        max_depth in 2usize..10,
        alphabet in 1usize..6,
        pattern in proptest::collection::vec((any::<bool>(), 0usize..8), 1..4),
        attr_desc in any::<bool>(),
    ) {
        let xml = random_tree(&RandomTreeConfig {
            seed,
            nodes,
            max_depth,
            alphabet,
            p_attribute: 0.3,
            ..Default::default()
        });
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let index = DocIndex::build(&doc).unwrap();

        // Every element/attribute name that occurs in the document.
        let mut elem_names = BTreeSet::new();
        let mut attr_names = BTreeSet::new();
        for i in 0..doc.len() as u32 {
            let n = NodeId(i);
            match doc.kind(n) {
                NodeKind::Element => { elem_names.insert(doc.name_id(n)); }
                NodeKind::Attribute => { attr_names.insert(doc.name_id(n)); }
                _ => {}
            }
        }

        // 1. Inverted lists equal the document-order scan, exactly.
        for &name in &elem_names {
            let scan = xqr_joins::element_list(&doc, name);
            prop_assert_eq!(index.element_labels(name), &scan[..]);
        }
        for &name in &attr_names {
            let scan = scan_kind(&doc, NodeKind::Attribute, name);
            prop_assert_eq!(index.attribute_labels(name), &scan[..]);
        }

        // 2. Labels sorted (strictly, so also distinct) and consistent
        //    with the store's containment labeling.
        for &name in elem_names.iter().chain(&attr_names) {
            for labels in [index.element_labels(name), index.attribute_labels(name)] {
                prop_assert!(labels.windows(2).all(|w| w[0].start < w[1].start));
                for l in labels {
                    prop_assert_eq!(doc.start(l.node), l.start);
                    prop_assert_eq!(doc.end(l.node), l.end);
                    prop_assert_eq!(doc.level(l.node), l.level);
                }
            }
        }

        // 3. Every (pattern, tag) path-indexed sublist equals the chain
        //    oracle run over the whole document.
        let all_names: Vec<NameId> = elem_names.iter().copied().collect();
        if !all_names.is_empty() {
            let steps: Vec<PathStep> = pattern
                .iter()
                .map(|&(desc, pick)| {
                    let edge = if desc { EdgeKind::Descendant } else { EdgeKind::Child };
                    (edge, all_names[pick % all_names.len()])
                })
                .collect();
            let got: Vec<NodeId> =
                index.linear_elements(&steps).into_iter().map(|l| l.node).collect();
            let want: Vec<NodeId> = (0..doc.len() as u32)
                .map(NodeId)
                .filter(|&n| {
                    doc.kind(n) == NodeKind::Element
                        && chain_matches(&chain_of(&doc, n), &steps)
                })
                .collect();
            prop_assert_eq!(got, want, "pattern {:?}", steps);

            // Attribute variant: owner chains constrained by the same
            // pattern, for both `/@k` and `//@k` edges.
            if let Some(k) = names.get(&QName::local("k")) {
                let edge = if attr_desc { EdgeKind::Descendant } else { EdgeKind::Child };
                let got: Vec<NodeId> = index
                    .linear_attributes(&steps, edge, k)
                    .into_iter()
                    .map(|l| l.node)
                    .collect();
                let want: Vec<NodeId> = (0..doc.len() as u32)
                    .map(NodeId)
                    .filter(|&n| {
                        if doc.kind(n) != NodeKind::Attribute || doc.name_id(n) != k {
                            return false;
                        }
                        let owner = chain_of(&doc, doc.parent(n).unwrap());
                        match edge {
                            EdgeKind::Child => chain_matches(&owner, &steps),
                            EdgeKind::Descendant => chain_prefix_matches(&owner, &steps),
                        }
                    })
                    .collect();
                prop_assert_eq!(got, want, "attr pattern {:?}", steps);
            }
        }
    }
}
