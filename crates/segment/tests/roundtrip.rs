//! Segment write→read roundtrips: the loaded document and mapped index
//! must be observationally identical to the originals, the encoding must
//! be deterministic and pool-independent, and the real file path (tmp →
//! fsync → rename → mmap) must agree with the in-memory path.

use std::sync::Arc;
use xqr_index::{DocIndex, IndexedAccess, PathStep};
use xqr_joins::EdgeKind;
use xqr_segment::{segment_bytes, write_segment_file, Segment};
use xqr_store::Document;
use xqr_tokenstream::TokenStream;
use xqr_xdm::{NameId, NamePool, QName};

const SAMPLE: &str = concat!(
    r#"<lib xmlns:l="urn:lib" note="n1"><!--header--><?gen v=1?>"#,
    r#"<l:book year="1967" l:tag="t"><title>The politics &amp; experience</title>"#,
    r#"<author>R.D. Laing</author></l:book>"#,
    r#"<book year="2004"><title>XML Query Processing</title><ref note="x"/></book>"#,
    r#"<empty/></lib>"#
);

fn build(xml: &str, uri: Option<&str>) -> (Arc<Document>, DocIndex, Arc<NamePool>) {
    let names = Arc::new(NamePool::new());
    let doc = Document::parse_with_uri(xml, names.clone(), uri).unwrap();
    let index = DocIndex::build(&doc).unwrap();
    (doc, index, names)
}

fn assert_equivalent(
    doc: &Document,
    index: &dyn IndexedAccess,
    loaded_doc: &Document,
    loaded_index: &dyn IndexedAccess,
    names: &NamePool,
    loaded_names: &NamePool,
) {
    // Tree: byte-identical XML serialization.
    assert_eq!(
        doc.serialize_node(doc.root()),
        loaded_doc.serialize_node(loaded_doc.root())
    );
    assert_eq!(doc.uri, loaded_doc.uri);
    assert_eq!(doc.len(), loaded_doc.len());
    // Index: identical label lists for every name either side knows.
    assert_eq!(index.entry_count(), loaded_index.entry_count());
    for local in ["lib", "book", "title", "author", "ref", "empty", "nope"] {
        for q in [QName::local(local), QName::ns("urn:lib", local)] {
            let a = names.get(&q).map_or(&[][..], |n| index.element_labels(n));
            let b = loaded_names
                .get(&q)
                .map_or(&[][..], |n| loaded_index.element_labels(n));
            assert_eq!(a, b, "element {q}");
            let a = names.get(&q).map_or(&[][..], |n| index.attribute_labels(n));
            let b = loaded_names
                .get(&q)
                .map_or(&[][..], |n| loaded_index.attribute_labels(n));
            assert_eq!(a, b, "attribute {q}");
        }
    }
    assert_eq!(index.path_dict().len(), loaded_index.path_dict().len());
}

#[test]
fn roundtrip_preserves_document_and_index() {
    let (doc, index, names) = build(SAMPLE, Some("sample.xml"));
    let bytes = segment_bytes(&doc, &index).unwrap();
    let seg = Segment::from_bytes(bytes).unwrap();
    assert_eq!(seg.uri(), Some("sample.xml"));
    assert_eq!(seg.node_count() as usize, doc.len());

    let loaded_names = Arc::new(NamePool::new());
    let (ldoc, lindex) = seg.load(&loaded_names).unwrap();
    assert_equivalent(&doc, &index, &ldoc, &*lindex, &names, &loaded_names);
}

#[test]
fn linear_patterns_agree_between_heap_and_mapped_index() {
    let (_, index, names) = build(SAMPLE, None);
    let bytes = segment_bytes(&build(SAMPLE, None).0, &index).unwrap();
    let seg = Segment::from_bytes(bytes).unwrap();
    let lnames = Arc::new(NamePool::new());
    let (_, lindex) = seg.load(&lnames).unwrap();

    let step = |names: &NamePool, e, l: &str| -> PathStep { (e, names.intern_local(l)) };
    let patterns: &[Vec<(EdgeKind, &str)>] = &[
        vec![(EdgeKind::Child, "lib"), (EdgeKind::Child, "book")],
        vec![(EdgeKind::Descendant, "book"), (EdgeKind::Child, "title")],
        vec![(EdgeKind::Descendant, "title")],
        vec![(EdgeKind::Child, "book"), (EdgeKind::Child, "title")],
    ];
    for pat in patterns {
        let a: Vec<PathStep> = pat.iter().map(|&(e, l)| step(&names, e, l)).collect();
        let b: Vec<PathStep> = pat.iter().map(|&(e, l)| step(&lnames, e, l)).collect();
        let ra = index.linear_elements(&a);
        let rb = lindex.linear_elements(&b);
        assert_eq!(ra, rb, "{pat:?}");
    }
    // Attribute pattern //ref/@note.
    let ra = index.linear_attributes(
        &[(EdgeKind::Descendant, names.intern_local("ref"))],
        EdgeKind::Child,
        names.intern_local("note"),
    );
    let rb = lindex.linear_attributes(
        &[(EdgeKind::Descendant, lnames.intern_local("ref"))],
        EdgeKind::Child,
        lnames.intern_local("note"),
    );
    assert_eq!(ra, rb);
    assert_eq!(ra.len(), 1);
}

#[test]
fn encoding_is_deterministic_and_pool_independent() {
    let (doc, index, _) = build(SAMPLE, Some("u.xml"));
    let bytes = segment_bytes(&doc, &index).unwrap();
    // Same pool, rebuilt index.
    let again = segment_bytes(&doc, &DocIndex::build(&doc).unwrap()).unwrap();
    assert_eq!(bytes, again);
    // Fresh pool pre-polluted with unrelated names: live NameIds differ,
    // segment bytes must not.
    let other = Arc::new(NamePool::new());
    for i in 0..50 {
        other.intern_local(&format!("noise{i}"));
    }
    let doc2 = Document::parse_with_uri(SAMPLE, other, Some("u.xml")).unwrap();
    let index2 = DocIndex::build(&doc2).unwrap();
    assert_eq!(bytes, segment_bytes(&doc2, &index2).unwrap());
    // And a load→rewrite cycle is byte-stable too.
    let seg = Segment::from_bytes(bytes.clone()).unwrap();
    let lnames = Arc::new(NamePool::new());
    let (ldoc, _) = seg.load(&lnames).unwrap();
    let lindex = DocIndex::build(&ldoc).unwrap();
    assert_eq!(bytes, segment_bytes(&ldoc, &lindex).unwrap());
}

#[test]
fn token_stream_roundtrips_through_segment() {
    let (doc, index, _) = build(SAMPLE, None);
    let seg = Segment::from_bytes(segment_bytes(&doc, &index).unwrap()).unwrap();
    let names = Arc::new(NamePool::new());
    let stream = seg.token_stream(names.clone()).unwrap();
    // Rebuilding a document from the decoded tokens reproduces the tree.
    let mut it = stream.iter();
    let rebuilt = Document::from_tokens(&mut it, names).unwrap();
    assert_eq!(
        rebuilt.serialize_node(rebuilt.root()),
        doc.serialize_node(doc.root())
    );
}

#[test]
fn mapped_file_serves_zero_copy_lists() {
    let dir = std::env::temp_dir().join(format!("xqr-seg-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (doc, index, names) = build(SAMPLE, Some("m.xml"));
    let bytes = segment_bytes(&doc, &index).unwrap();
    write_segment_file(&dir, "seg-1.seg", &bytes).unwrap();
    assert!(!dir.join("seg-1.seg.tmp").exists());

    let seg = Segment::open(&dir.join("seg-1.seg")).unwrap();
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert!(seg.is_mapped());
    assert_eq!(seg.file_bytes(), bytes.len());
    let lnames = Arc::new(NamePool::new());
    let (ldoc, lindex) = seg.load(&lnames).unwrap();
    assert!(lindex.is_zero_copy());
    assert_equivalent(&doc, &index, &ldoc, &*lindex, &names, &lnames);
    // The mapped labels really live inside the mapped file region, not
    // on the heap: the index's footprint is exactly the file size.
    assert_eq!(lindex.memory_bytes(), bytes.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_tiny_documents_roundtrip() {
    for xml in ["<a/>", "<a>x</a>", "<a><b/><b/><b/></a>"] {
        let (doc, index, names) = build(xml, None);
        let seg = Segment::from_bytes(segment_bytes(&doc, &index).unwrap()).unwrap();
        let lnames = Arc::new(NamePool::new());
        let (ldoc, lindex) = seg.load(&lnames).unwrap();
        assert_equivalent(&doc, &index, &ldoc, &*lindex, &names, &lnames);
    }
}

#[test]
fn random_documents_roundtrip() {
    // Deterministic pseudo-random trees via the workspace generator.
    for seed in [1u64, 7, 42, 1234] {
        let names = Arc::new(NamePool::new());
        let xml = xqr_xmlgen::random_tree(&xqr_xmlgen::RandomTreeConfig {
            seed,
            nodes: 120,
            p_attribute: 0.3,
            ..Default::default()
        });
        let stream = TokenStream::from_xml(&xml, names.clone()).unwrap();
        let mut it = stream.iter();
        let doc = Document::from_tokens(&mut it, names.clone()).unwrap();
        let index = DocIndex::build(&doc).unwrap();
        let seg = Segment::from_bytes(segment_bytes(&doc, &index).unwrap()).unwrap();
        let lnames = Arc::new(NamePool::new());
        let (ldoc, lindex) = seg.load(&lnames).unwrap();
        assert_eq!(
            doc.serialize_node(doc.root()),
            ldoc.serialize_node(ldoc.root()),
            "seed {seed}"
        );
        assert_eq!(index.entry_count(), lindex.entry_count());
        // Compare every element list by resolving both pools' names.
        for n in 0..names.len() as u32 {
            let q = names.resolve(NameId(n));
            let other = lnames.get(&q).map_or(&[][..], |m| lindex.element_labels(m));
            assert_eq!(index.element_labels(NameId(n)), other, "seed {seed} {q}");
        }
    }
}
