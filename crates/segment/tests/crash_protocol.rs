//! Crash-safety of the write protocol and manifest recovery semantics,
//! driven by deterministic failpoints: a fault at any site must leave
//! the directory in a state recovery fully repairs — the final segment
//! path is never partially visible, and replay never trusts a torn tail.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_index::DocIndex;
use xqr_segment::{
    clean_orphans, segment_bytes, write_segment_file, Manifest, ManifestRecord, Segment,
};
use xqr_store::Document;
use xqr_xdm::NamePool;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqr-seg-crash-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_bytes() -> Vec<u8> {
    let names = Arc::new(NamePool::new());
    let doc = Document::parse_with_uri("<a><b/>text</a>", names, Some("a.xml")).unwrap();
    segment_bytes(&doc, &DocIndex::build(&doc).unwrap()).unwrap()
}

#[test]
fn faults_at_each_write_site_leave_no_visible_segment() {
    let bytes = sample_bytes();
    for site in ["segment.write", "segment.fsync", "segment.rename"] {
        let dir = scratch(&format!("w-{}", site.replace('.', "-")));
        let guard = xqr_faults::install(
            FaultSchedule::new(1).rule(FaultRule::new(site, FaultKind::ErrorReturn)),
        );
        let err = write_segment_file(&dir, "seg-1.seg", &bytes).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Unavailable, "{site}");
        assert!(xqr_faults::fires() >= 1, "{site} did not fire");
        drop(guard);
        // The final path must not exist; at worst a .tmp orphan remains.
        assert!(
            !dir.join("seg-1.seg").exists(),
            "{site} left a visible file"
        );
        // Recovery sweeps any leftovers.
        let removed = clean_orphans(&dir, |_| true).unwrap();
        assert!(
            fs::read_dir(&dir).unwrap().next().is_none(),
            "{site}: dir not clean after sweep (removed {removed:?})"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn fault_free_write_is_durable_and_reopenable() {
    let dir = scratch("ok");
    let bytes = sample_bytes();
    write_segment_file(&dir, "seg-1.seg", &bytes).unwrap();
    let seg = Segment::open(&dir.join("seg-1.seg")).unwrap();
    assert_eq!(seg.uri(), Some("a.xml"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifest_append_fault_keeps_prior_records() {
    let dir = scratch("manifest-fault");
    let manifest = Manifest::open(&dir).unwrap();
    let rec1 = ManifestRecord::Add {
        generation: 1,
        file: "seg-1.seg".into(),
        uri: "a.xml".into(),
    };
    manifest.append(&rec1).unwrap();
    let guard = xqr_faults::install(
        FaultSchedule::new(1).rule(FaultRule::new("manifest.append", FaultKind::ErrorReturn)),
    );
    let rec2 = ManifestRecord::Add {
        generation: 2,
        file: "seg-2.seg".into(),
        uri: "b.xml".into(),
    };
    assert!(manifest.append(&rec2).is_err());
    drop(guard);
    let replay = manifest.replay().unwrap();
    assert!(!replay.torn);
    assert_eq!(replay.records, vec![rec1]);
    assert_eq!(replay.next_generation(), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_stops_at_torn_tail_and_keeps_prefix() {
    let dir = scratch("torn");
    let manifest = Manifest::open(&dir).unwrap();
    for g in 1..=3u64 {
        manifest
            .append(&ManifestRecord::Add {
                generation: g,
                file: format!("seg-{g}.seg"),
                uri: format!("doc{g}.xml"),
            })
            .unwrap();
    }
    // Simulate a crash mid-append: chop the file inside the last record.
    let raw = fs::read(manifest.path()).unwrap();
    fs::write(manifest.path(), &raw[..raw.len() - 5]).unwrap();
    let replay = manifest.replay().unwrap();
    assert!(replay.torn);
    assert_eq!(replay.records.len(), 2);
    let live = replay.live();
    assert!(live.contains_key("doc1.xml") && live.contains_key("doc2.xml"));
    // Generations keep ascending past the torn record's survivors.
    assert_eq!(replay.next_generation(), 3);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_handles_empty_and_missing_manifest() {
    let dir = scratch("empty");
    let manifest = Manifest::open(&dir).unwrap();
    let replay = manifest.replay().unwrap();
    assert!(!replay.torn && replay.records.is_empty());
    assert_eq!(replay.next_generation(), 1);
    assert!(replay.live().is_empty());
    // Manifest file deleted out from under us: still an empty replay.
    fs::remove_file(manifest.path()).unwrap();
    let replay = manifest.replay().unwrap();
    assert!(replay.records.is_empty() && !replay.torn);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn orphan_cleanup_removes_unreferenced_files_only() {
    let dir = scratch("orphans");
    let bytes = sample_bytes();
    write_segment_file(&dir, "seg-1.seg", &bytes).unwrap();
    write_segment_file(&dir, "seg-2.seg", &bytes).unwrap();
    fs::write(dir.join("seg-9.seg.tmp"), b"partial").unwrap();
    let manifest = Manifest::open(&dir).unwrap();
    manifest
        .append(&ManifestRecord::Add {
            generation: 1,
            file: "seg-1.seg".into(),
            uri: "a.xml".into(),
        })
        .unwrap();
    let live = manifest.replay().unwrap().live();
    let removed = clean_orphans(&dir, |f| live.values().any(|l| l.file == f)).unwrap();
    assert_eq!(
        removed,
        vec!["seg-2.seg".to_string(), "seg-9.seg.tmp".to_string()]
    );
    assert!(dir.join("seg-1.seg").exists());
    assert!(dir.join(Manifest::FILE_NAME).exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn panic_fault_mid_write_is_recoverable() {
    // The kill-and-recover primitive: a Panic fault simulates the
    // process dying between protocol steps; catch_unwind stands in for
    // the crash, and reopen-from-disk is the recovery.
    let dir = scratch("panic");
    let bytes = sample_bytes();
    let guard = xqr_faults::install(
        FaultSchedule::new(1).rule(FaultRule::new("segment.rename", FaultKind::Panic)),
    );
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        write_segment_file(&dir, "seg-1.seg", &bytes)
    }));
    drop(guard);
    assert!(result.is_err(), "panic fault did not fire");
    assert!(!dir.join("seg-1.seg").exists());
    // Recovery: sweep orphans, write again, open.
    clean_orphans(&dir, |_| false).unwrap();
    write_segment_file(&dir, "seg-1.seg", &bytes).unwrap();
    assert!(Segment::open(&dir.join("seg-1.seg")).is_ok());
    let _ = fs::remove_dir_all(&dir);
}
