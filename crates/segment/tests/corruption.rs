//! The central robustness guarantee: **flipping any single byte of a
//! segment yields the coded `XQRL0006 CorruptSegment` error — never a
//! successful open, never a wrong answer, never a panic.** Same for
//! truncation at every length and for random garbage.

use std::sync::Arc;
use xqr_index::DocIndex;
use xqr_segment::{segment_bytes, Segment};
use xqr_store::Document;
use xqr_xdm::{ErrorCode, NamePool};

fn sample_segment() -> Vec<u8> {
    let names = Arc::new(NamePool::new());
    let doc = Document::parse_with_uri(
        r#"<lib note="n"><book year="1967"><title>P&amp;E</title></book><b/></lib>"#,
        names,
        Some("lib.xml"),
    )
    .unwrap();
    let index = DocIndex::build(&doc).unwrap();
    segment_bytes(&doc, &index).unwrap()
}

#[test]
fn every_single_byte_flip_is_quarantined() {
    let bytes = sample_segment();
    // Exhaustive: every byte, one bit pattern each (the CRC catches any
    // non-identity change; we vary the xor mask by position to cover
    // different bit planes across the file).
    for i in 0..bytes.len() {
        let mut copy = bytes.clone();
        copy[i] ^= 1 << (i % 8);
        match Segment::from_bytes(copy) {
            Ok(_) => panic!("byte flip at offset {i} produced a valid segment"),
            Err(e) => assert_eq!(
                e.code,
                ErrorCode::CorruptSegment,
                "flip at {i}: wrong code {e}"
            ),
        }
    }
}

#[test]
fn flipped_segments_never_serve_queries() {
    // Even if verification were skipped up front, the load path itself
    // must fail closed. Here we go through the public API (which
    // verifies first), asserting end-to-end: no flipped blob ever yields
    // a loadable document.
    let bytes = sample_segment();
    for i in (0..bytes.len()).step_by(7) {
        let mut copy = bytes.clone();
        copy[i] ^= 0xFF;
        let names = Arc::new(NamePool::new());
        let served = Segment::from_bytes(copy).and_then(|s| s.load(&names));
        assert!(served.is_err(), "flip at {i} served a document");
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_segment();
    for len in 0..bytes.len() {
        match Segment::from_bytes(bytes[..len].to_vec()) {
            Ok(_) => panic!("truncation to {len} accepted"),
            Err(e) => assert_eq!(e.code, ErrorCode::CorruptSegment),
        }
    }
}

#[test]
fn garbage_blobs_are_rejected_not_panicked() {
    let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
    for len in [0usize, 1, 7, 16, 100, 4096] {
        let mut blob = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            blob.push((state >> 33) as u8);
        }
        assert!(Segment::from_bytes(blob).is_err(), "garbage len {len}");
    }
}

#[test]
fn doubled_and_spliced_segments_are_rejected() {
    let bytes = sample_segment();
    let mut doubled = bytes.clone();
    doubled.extend_from_slice(&bytes);
    assert!(Segment::from_bytes(doubled).is_err());
    // Splice: valid head framing, tail from a different (shifted) copy.
    let mut spliced = bytes.clone();
    let cut = spliced.len() / 2;
    spliced.truncate(cut);
    spliced.extend_from_slice(&bytes[cut.saturating_sub(16)..]);
    assert!(Segment::from_bytes(spliced).is_err());
}
