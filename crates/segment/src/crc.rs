//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every region of a segment file and every manifest record.
//! Slice-by-16 table-driven, no external dependencies: verification is
//! on the catalog's cold-start path, so the checksum has to run at
//! memory speed, not byte-loop speed.

const POLY: u32 = 0xEDB8_8320;
const SLICES: usize = 16;

const fn make_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[k][i] = crc of byte `i` followed by `k` zero bytes.
    let mut k = 1;
    while k < SLICES {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICES] = make_tables();

/// Incremental CRC-32 state, for checksums over non-contiguous regions.
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        let mut chunks = bytes.chunks_exact(SLICES);
        for chunk in &mut chunks {
            // Fold the running CRC into the first four bytes, then look
            // all sixteen up in parallel-friendly independent tables.
            let mut acc = 0u32;
            for (j, &b) in chunk.iter().enumerate() {
                let idx = if j < 4 {
                    (b as u32 ^ (c >> (8 * j as u32))) & 0xFF
                } else {
                    b as u32
                };
                acc ^= TABLES[SLICES - 1 - j][idx as usize];
            }
            c = acc;
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original byte-at-a-time loop, kept as the oracle for the
    /// sliced implementation.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split {split}");
        }
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"segment body bytes";
        let base = crc32(data);
        let mut copy = *data;
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
