//! # xqr-segment — durable, checksummed document segments
//!
//! The persistence layer: one document (tree + token stream + structural
//! index + path dictionary) packed into a single relocatable on-disk
//! blob, written crash-safely and read back by `mmap` with zero-copy
//! views over the inverted lists.
//!
//! ## Guarantees
//!
//! * **Integrity**: every byte of a segment file is covered by at least
//!   one CRC32 (per-section CRCs + whole-body CRC + footer CRC + magic
//!   framing). Flipping any single byte makes [`Segment::open`] /
//!   [`Segment::from_bytes`] fail with the coded, non-retryable
//!   `XQRL0006 CorruptSegment` error — never a wrong answer, never a
//!   panic.
//! * **Crash safety**: [`write_segment_file`] writes to a temp file,
//!   fsyncs, renames atomically and fsyncs the directory; the
//!   [`manifest::Manifest`] is append-only with per-record CRCs and
//!   generation numbers, and replay stops at the first torn record. A
//!   crash at any point leaves the catalog in a state where every
//!   document is either fully readable or cleanly absent.
//! * **Cold start**: loading a segment re-assembles the struct-of-arrays
//!   [`xqr_store::Document`] and serves the inverted lists directly from
//!   the mapped file ([`MappedIndex`] implements
//!   [`xqr_index::IndexedAccess`]), skipping XML parsing and index
//!   construction entirely.
//!
//! Failpoint sites (see `xqr-faults`): `segment.write`, `segment.fsync`,
//! `segment.rename`, `manifest.append`, `segment.mmap`,
//! `segment.verify`.

mod blob;
pub mod crc;
mod layout;
pub mod manifest;
pub mod mmap;
mod read;
mod write;

pub use crc::crc32;
pub use manifest::{clean_orphans, LiveSegment, Manifest, ManifestRecord, Replay};
pub use mmap::MappedBytes;
pub use read::{MappedIndex, Segment};
pub use write::{segment_bytes, write_segment_file};
