//! The segment file layout: framing constants, section ids and the
//! footer grammar (see DESIGN.md for the annotated diagram).
//!
//! ```text
//! ┌──────────┬────────────────────────────┬──────────────────────────┐
//! │ MAGIC 8B │ sections, each 16-aligned  │ footer                   │
//! └──────────┴────────────────────────────┴──────────────────────────┘
//! footer := table  body_crc:u32  footer_crc:u32  footer_len:u64  TAIL 8B
//! table  := count:u32 { id:u32 offset:u64 len:u64 crc:u32 }*
//! ```
//!
//! * `body_crc` covers `bytes[0..footer_start]` (magic, sections and all
//!   alignment padding);
//! * `footer_crc` covers `table ++ body_crc ++ footer_len`;
//! * every section additionally carries its own CRC in the table.
//!
//! Together with the two magics this puts every byte of the file under
//! at least one check, so any single-byte flip is detected.

use crate::blob::corrupt;
use crate::crc::{crc32, Crc32};
use xqr_xdm::{NodeKind, Result};

/// Head magic; the trailing byte is the format version.
pub const MAGIC: [u8; 8] = *b"XQRSEG\x00\x01";
/// Tail magic.
pub const TAIL: [u8; 8] = *b"\x01\x00GESRQX";
/// Format version (also baked into [`MAGIC`]).
pub const VERSION: u32 = 1;

/// Section identifiers. A well-formed segment has exactly one of each,
/// in this order.
pub mod section {
    pub const META: u32 = 1;
    pub const NAMES: u32 = 2;
    pub const TOKENS: u32 = 3;
    pub const TREE: u32 = 4;
    pub const PATHS: u32 = 5;
    pub const ELEMS: u32 = 6;
    pub const ATTRS: u32 = 7;
    pub const ALL: [u32; 7] = [META, NAMES, TOKENS, TREE, PATHS, ELEMS, ATTRS];
}

/// Byte span of one section within the file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub offset: usize,
    pub len: usize,
}

/// Parsed section table: one span per id in [`section::ALL`] order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sections {
    spans: [Span; section::ALL.len()],
}

impl Sections {
    pub fn get(&self, id: u32) -> Span {
        let idx = section::ALL
            .iter()
            .position(|&s| s == id)
            .expect("known section id");
        self.spans[idx]
    }
}

/// Append the footer to a fully serialized body. `table` entries are
/// `(id, offset, len)` triples; CRCs are computed here.
pub fn write_footer(buf: &mut Vec<u8>, table: &[(u32, usize, usize)]) {
    debug_assert!(buf.len().is_multiple_of(16), "sections must be 16-aligned");
    let body_crc = crc32(buf);
    let mut tbl = Vec::with_capacity(4 + table.len() * 24);
    tbl.extend_from_slice(&(table.len() as u32).to_le_bytes());
    for &(id, offset, len) in table {
        tbl.extend_from_slice(&id.to_le_bytes());
        tbl.extend_from_slice(&(offset as u64).to_le_bytes());
        tbl.extend_from_slice(&(len as u64).to_le_bytes());
        tbl.extend_from_slice(&crc32(&buf[offset..offset + len]).to_le_bytes());
    }
    let footer_len = tbl.len() as u64;
    let mut fc = Crc32::new();
    fc.update(&tbl);
    fc.update(&body_crc.to_le_bytes());
    fc.update(&footer_len.to_le_bytes());
    let footer_crc = fc.finish();
    buf.extend_from_slice(&tbl);
    buf.extend_from_slice(&body_crc.to_le_bytes());
    buf.extend_from_slice(&footer_crc.to_le_bytes());
    buf.extend_from_slice(&footer_len.to_le_bytes());
    buf.extend_from_slice(&TAIL);
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Verify framing, footer, body and per-section CRCs; return the section
/// table. Every failure is the coded `XQRL0006` corruption error.
pub fn verify(bytes: &[u8]) -> Result<Sections> {
    // Fixed tail: body_crc(4) + footer_crc(4) + footer_len(8) + TAIL(8).
    const TAIL_FIXED: usize = 24;
    if bytes.len() < MAGIC.len() + TAIL_FIXED + 4 {
        return Err(corrupt("segment file too short"));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("segment head magic mismatch"));
    }
    if bytes[bytes.len() - 8..] != TAIL {
        return Err(corrupt("segment tail magic mismatch"));
    }
    let footer_len = read_u64(bytes, bytes.len() - 16) as usize;
    let Some(table_start) = bytes
        .len()
        .checked_sub(TAIL_FIXED)
        .and_then(|v| v.checked_sub(footer_len))
    else {
        return Err(corrupt("segment footer length out of range"));
    };
    if table_start < MAGIC.len() {
        return Err(corrupt("segment footer length out of range"));
    }
    let table = &bytes[table_start..table_start + footer_len];
    let body_crc = read_u32(bytes, bytes.len() - 24);
    let footer_crc = read_u32(bytes, bytes.len() - 20);
    let mut fc = Crc32::new();
    fc.update(table);
    fc.update(&body_crc.to_le_bytes());
    fc.update(&(footer_len as u64).to_le_bytes());
    if fc.finish() != footer_crc {
        return Err(corrupt("segment footer checksum mismatch"));
    }
    // Parse the (footer-protected) table; bounds are still fully checked
    // so a writer bug cannot turn into a panic.
    if table.len() < 4 {
        return Err(corrupt("segment section table truncated"));
    }
    let count = read_u32(table, 0) as usize;
    if table.len() != 4 + count * 24 || count != section::ALL.len() {
        return Err(corrupt("segment section table malformed"));
    }
    let mut sections = Sections::default();
    let mut crcs = [0u32; section::ALL.len()];
    let mut seen = [false; section::ALL.len()];
    for i in 0..count {
        let at = 4 + i * 24;
        let id = read_u32(table, at);
        let offset = read_u64(table, at + 4) as usize;
        let len = read_u64(table, at + 12) as usize;
        let Some(idx) = section::ALL.iter().position(|&s| s == id) else {
            return Err(corrupt("segment section id unknown"));
        };
        if seen[idx] {
            return Err(corrupt("segment section id duplicated"));
        }
        seen[idx] = true;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt("segment section span overflow"))?;
        if offset < MAGIC.len() || end > table_start {
            return Err(corrupt("segment section span out of bounds"));
        }
        crcs[idx] = read_u32(table, at + 20);
        sections.spans[idx] = Span { offset, len };
    }
    // One pass over the body: `body_crc` covers every byte before the
    // footer (sections and padding alike), and the per-section CRCs are
    // themselves under `footer_crc`, so this single check detects any
    // flip. The per-section recomputation runs only to *name* the
    // corrupt section once the cheap check has failed — verification is
    // on the cold-start path and must not read the file twice.
    if crc32(&bytes[..table_start]) != body_crc {
        for (idx, &id) in section::ALL.iter().enumerate() {
            let Span { offset, len } = sections.spans[idx];
            if crc32(&bytes[offset..offset + len]) != crcs[idx] {
                return Err(corrupt(&format!("segment section {id} checksum mismatch")));
            }
        }
        return Err(corrupt("segment body checksum mismatch"));
    }
    Ok(sections)
}

/// Stable on-disk encoding of [`NodeKind`].
pub fn kind_to_u8(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Document => 0,
        NodeKind::Element => 1,
        NodeKind::Attribute => 2,
        NodeKind::Text => 3,
        NodeKind::Namespace => 4,
        NodeKind::ProcessingInstruction => 5,
        NodeKind::Comment => 6,
    }
}

pub fn kind_from_u8(v: u8) -> Result<NodeKind> {
    Ok(match v {
        0 => NodeKind::Document,
        1 => NodeKind::Element,
        2 => NodeKind::Attribute,
        3 => NodeKind::Text,
        4 => NodeKind::Namespace,
        5 => NodeKind::ProcessingInstruction,
        6 => NodeKind::Comment,
        _ => return Err(corrupt("segment node kind out of range")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_segment() -> Vec<u8> {
        let mut buf = MAGIC.to_vec();
        let mut table = Vec::new();
        for &id in &section::ALL {
            while !buf.len().is_multiple_of(16) {
                buf.push(0);
            }
            let offset = buf.len();
            buf.extend_from_slice(&[id as u8; 16]);
            table.push((id, offset, 16));
        }
        write_footer(&mut buf, &table);
        buf
    }

    #[test]
    fn verify_accepts_wellformed() {
        let buf = tiny_segment();
        let sections = verify(&buf).unwrap();
        assert_eq!(sections.get(section::TREE).len, 16);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let buf = tiny_segment();
        for i in 0..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x40;
            let err = verify(&copy).expect_err(&format!("flip at {i} accepted"));
            assert_eq!(err.code, xqr_xdm::ErrorCode::CorruptSegment);
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let buf = tiny_segment();
        for len in 0..buf.len() {
            assert!(verify(&buf[..len]).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn kind_mapping_roundtrips() {
        for k in [
            NodeKind::Document,
            NodeKind::Element,
            NodeKind::Attribute,
            NodeKind::Text,
            NodeKind::Namespace,
            NodeKind::ProcessingInstruction,
            NodeKind::Comment,
        ] {
            assert_eq!(kind_from_u8(kind_to_u8(k)).unwrap(), k);
        }
        assert!(kind_from_u8(7).is_err());
    }
}
