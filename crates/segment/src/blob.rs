//! Little-endian byte-cursor helpers shared by the segment writer and
//! reader. The reader is fully bounds-checked: every malformed read
//! surfaces as the coded `XQRL0006 CorruptSegment` error, never a panic
//! — the last line of defence should a corruption slip past the CRCs
//! (it cannot, but the reader does not rely on that).

use xqr_xdm::{Error, Result};

pub(crate) fn corrupt(msg: &str) -> Error {
    Error::corrupt_segment(msg)
}

/// Append-only little-endian writer over a growing `Vec<u8>`; `buf.len()`
/// is the absolute file offset, which is what the 16-byte section
/// alignment is computed against.
#[derive(Default)]
pub(crate) struct ByteWriter {
    pub buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn offset(&self) -> usize {
        self.buf.len()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Zero-pad to the next 16-byte file boundary.
    pub fn align16(&mut self) {
        while !self.buf.len().is_multiple_of(16) {
            self.buf.push(0);
        }
    }
}

/// Bounds-checked little-endian cursor over a borrowed byte slice.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(corrupt("segment section truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn str(&mut self) -> Result<&'a str> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| corrupt("segment string is not UTF-8"))
    }

    pub fn opt_str(&mut self) -> Result<Option<&'a str>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(corrupt("segment option tag out of range")),
        }
    }

    /// The section must be fully consumed — trailing garbage is treated
    /// as corruption, the same as a short read.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt("segment section has trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.str("héllo");
        w.opt_str(None);
        w.opt_str(Some("x"));
        let mut r = ByteReader::new(&w.buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x"));
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_coded_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.u32().unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::CorruptSegment);
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let r = ByteReader::new(&[0]);
        assert!(r.finish().is_err());
    }

    #[test]
    fn align16_pads_with_zeros() {
        let mut w = ByteWriter::new();
        w.bytes(&[1, 2, 3]);
        w.align16();
        assert_eq!(w.buf.len(), 16);
        assert!(w.buf[3..].iter().all(|&b| b == 0));
    }
}
