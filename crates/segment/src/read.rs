//! Segment verification and loading: the cold-start fast path.
//!
//! [`Segment::open`] maps the file (failpoint `segment.mmap`), verifies
//! all checksums (failpoint `segment.verify`) and parses the META
//! section; any failure is the coded, non-retryable `XQRL0006
//! CorruptSegment` error. [`Segment::load`] then reassembles the
//! [`Document`] from the TREE arrays (no XML parsing) and builds a
//! [`MappedIndex`] whose inverted lists are **zero-copy slices into the
//! mapped file** — `Labeled` is `repr(C)`, 16 bytes, align 4, and the
//! writer 16-aligns every label region, so the cast is a pointer
//! reinterpretation. If alignment cannot be guaranteed (exotic fallback
//! backing), the lists are materialized on the heap instead; behavior is
//! identical either way.

use crate::blob::{corrupt, ByteReader};
use crate::layout::{self, kind_from_u8, section, Sections, VERSION};
use crate::mmap::MappedBytes;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use xqr_joins::Labeled;
use xqr_store::{DocPartsOwned, Document};
use xqr_tokenstream::{decode, StringPool, TokenStream};
use xqr_xdm::{Error, NameId, NamePool, Result};

const LABEL_BYTES: usize = std::mem::size_of::<Labeled>();
// The zero-copy casts below are only sound with this exact layout; a
// change to Labeled must bump the segment format version.
const _: () = assert!(std::mem::size_of::<Labeled>() == 16);
const _: () = assert!(std::mem::align_of::<Labeled>() <= 4);

/// A verified, mapped segment file. Cheap to clone sections out of; the
/// underlying mapping is shared by every view loaded from it.
pub struct Segment {
    data: Arc<MappedBytes>,
    sections: Sections,
    uri: Option<String>,
    node_count: u64,
    entry_count: u64,
}

impl Segment {
    /// Map and verify a segment file.
    pub fn open(path: &Path) -> Result<Segment> {
        xqr_faults::faultpoint!("segment.mmap");
        let data = MappedBytes::open(path).map_err(|e| match e.kind() {
            // A referenced-but-missing file is a broken catalog, not a
            // transient condition: quarantine it.
            std::io::ErrorKind::NotFound => corrupt("segment file missing"),
            _ => Error::unavailable(format!("segment open: {e}")),
        })?;
        Self::new(Arc::new(data))
    }

    /// Verify an in-memory blob (tests and the write-then-verify path).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Segment> {
        Self::new(Arc::new(MappedBytes::from_vec(bytes)))
    }

    fn new(data: Arc<MappedBytes>) -> Result<Segment> {
        xqr_faults::faultpoint!("segment.verify");
        let sections = layout::verify(data.bytes())?;
        let span = sections.get(section::META);
        let mut r = ByteReader::new(&data.bytes()[span.offset..span.offset + span.len]);
        if r.u32()? != VERSION {
            return Err(corrupt("segment format version unsupported"));
        }
        let uri = r.opt_str()?.map(String::from);
        let node_count = r.u64()?;
        let entry_count = r.u64()?;
        r.finish()?;
        Ok(Segment {
            data,
            sections,
            uri,
            node_count,
            entry_count,
        })
    }

    pub fn uri(&self) -> Option<&str> {
        self.uri.as_deref()
    }

    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Whole-file size: what the catalog charges against its byte budget
    /// for a segment-backed document.
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Is the backing a real `mmap` (vs heap fallback)?
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    fn sec(&self, id: u32) -> &[u8] {
        let s = self.sections.get(id);
        &self.data.bytes()[s.offset..s.offset + s.len]
    }

    /// Reassemble the document and its index. The document is rebuilt
    /// from the TREE arrays (O(n) memcpy-ish, no parsing); the index
    /// serves straight from the mapping.
    pub fn load(&self, names: &Arc<NamePool>) -> Result<(Arc<Document>, Arc<MappedIndex>)> {
        let live = self.remap_names(names)?;
        let doc = self.load_document(names, &live)?;
        let index = self.load_index(&live)?;
        Ok((doc, Arc::new(index)))
    }

    /// Decode the TOKENS section back into a materialized stream.
    pub fn token_stream(&self, names: Arc<NamePool>) -> Result<TokenStream> {
        let sec = self.sec(section::TOKENS);
        decode(bytes::Bytes::from(sec), names)
            .map_err(|e| corrupt(&format!("segment token stream invalid: {e}")))
    }

    /// Intern every segment-local name into the live pool; index = seg id.
    fn remap_names(&self, names: &Arc<NamePool>) -> Result<Vec<NameId>> {
        let mut r = ByteReader::new(self.sec(section::NAMES));
        let count = r.u32()? as usize;
        if count > r.remaining() {
            return Err(corrupt("segment name count out of range"));
        }
        let mut live = Vec::with_capacity(count);
        for i in 0..count {
            let flags = r.u8()?;
            if flags & !3 != 0 {
                return Err(corrupt("segment name flags out of range"));
            }
            let ns = if flags & 1 != 0 { Some(r.str()?) } else { None };
            let prefix = if flags & 2 != 0 { Some(r.str()?) } else { None };
            let local = r.str()?;
            let q = match (ns, prefix) {
                (Some(ns), Some(p)) => xqr_xdm::QName::prefixed(ns, p, local),
                (Some(ns), None) => xqr_xdm::QName::ns(ns, local),
                (None, None) => xqr_xdm::QName::local(local),
                (None, Some(_)) => {
                    return Err(corrupt("segment name has prefix without namespace"))
                }
            };
            let id = names.intern(&q);
            if i == 0 && !id.is_none() {
                return Err(corrupt(
                    "segment name table must start with the absent name",
                ));
            }
            live.push(id);
        }
        r.finish()?;
        Ok(live)
    }

    fn load_document(&self, names: &Arc<NamePool>, live: &[NameId]) -> Result<Arc<Document>> {
        let mut r = ByteReader::new(self.sec(section::TREE));
        let n = r.u64()? as usize;
        if n != self.node_count as usize || n > r.remaining() {
            return Err(corrupt("segment node count out of range"));
        }
        let mut kinds = Vec::with_capacity(n);
        for _ in 0..n {
            kinds.push(kind_from_u8(r.u8()?)?);
        }
        let mut node_names = Vec::with_capacity(n);
        for _ in 0..n {
            let seg = r.u32()? as usize;
            node_names.push(
                *live
                    .get(seg)
                    .ok_or_else(|| corrupt("segment node name id out of range"))?,
            );
        }
        let u32_array = |r: &mut ByteReader| -> Result<Vec<u32>> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Ok(v)
        };
        let parents = u32_array(&mut r)?;
        let next_siblings = u32_array(&mut r)?;
        let first_children = u32_array(&mut r)?;
        let subtree_ends = u32_array(&mut r)?;
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            levels.push(r.u16()?);
        }
        let values = u32_array(&mut r)?;
        let str_count = r.u32()? as usize;
        if str_count > r.remaining() {
            return Err(corrupt("segment string count out of range"));
        }
        let mut strings = Vec::with_capacity(str_count);
        for _ in 0..str_count {
            strings.push(r.str()?);
        }
        r.finish()?;
        Document::from_raw_parts(
            names.clone(),
            DocPartsOwned {
                kinds,
                node_names,
                parents,
                next_siblings,
                first_children,
                subtree_ends,
                levels,
                values,
                strings: StringPool::from_strings(strings),
                uri: self.uri.clone(),
            },
        )
        .map_err(|e| corrupt(&format!("segment tree invalid: {e}")))
    }

    fn load_index(&self, live: &[NameId]) -> Result<MappedIndex> {
        let paths = self.load_paths(live)?;
        let (elements, e_total) = self.load_postings(section::ELEMS, live, paths.len())?;
        let (attributes, a_total) = self.load_postings(section::ATTRS, live, paths.len())?;
        if e_total + a_total != self.entry_count as usize {
            return Err(corrupt("segment entry count mismatch"));
        }
        Ok(MappedIndex {
            data: self.data.clone(),
            paths,
            elements,
            attributes,
            entry_count: self.entry_count as usize,
        })
    }

    /// Rebuild the path dictionary by re-interning rows in id order;
    /// parents precede children, so ids come out identical to the ones
    /// the inverted lists were written with.
    fn load_paths(&self, live: &[NameId]) -> Result<xqr_index::PathDict> {
        let mut r = ByteReader::new(self.sec(section::PATHS));
        let count = r.u32()?;
        if count as usize > r.remaining() {
            return Err(corrupt("segment path count out of range"));
        }
        let mut dict = xqr_index::PathDict::new();
        for i in 0..count {
            let parent_raw = r.u32()?;
            let seg = r.u32()? as usize;
            let name = *live
                .get(seg)
                .ok_or_else(|| corrupt("segment path name id out of range"))?;
            let parent = if parent_raw == u32::MAX {
                None
            } else if parent_raw < i {
                Some(xqr_index::PathId(parent_raw))
            } else {
                return Err(corrupt("segment path parent out of order"));
            };
            if dict.intern(parent, name) != xqr_index::PathId(i) {
                return Err(corrupt("segment path rows not canonical"));
            }
        }
        r.finish()?;
        Ok(dict)
    }

    fn load_postings(
        &self,
        id: u32,
        live: &[NameId],
        path_count: usize,
    ) -> Result<(PostingsTable, usize)> {
        let span = self.sections.get(id);
        let sec = &self.data.bytes()[span.offset..span.offset + span.len];
        let mut r = ByteReader::new(sec);
        let name_count = r.u32()? as usize;
        if name_count > sec.len() {
            return Err(corrupt("segment postings directory out of range"));
        }
        let mut dir: HashMap<NameId, (u32, u32)> = HashMap::with_capacity(name_count);
        let mut order: Vec<(NameId, u32, u32)> = Vec::with_capacity(name_count);
        let mut offset = 0u32;
        let mut prev_seg = None;
        for _ in 0..name_count {
            let seg = r.u32()?;
            let count = r.u32()?;
            if prev_seg.is_some_and(|p| seg <= p) {
                return Err(corrupt("segment postings directory not sorted"));
            }
            prev_seg = Some(seg);
            let name = *live
                .get(seg as usize)
                .ok_or_else(|| corrupt("segment postings name id out of range"))?;
            if dir.insert(name, (offset, count)).is_some() {
                return Err(corrupt("segment postings name duplicated"));
            }
            order.push((name, offset, count));
            offset = offset
                .checked_add(count)
                .ok_or_else(|| corrupt("segment postings count overflow"))?;
        }
        let total = offset as usize;
        // Zero padding between the directory and the 16-aligned labels.
        let pad = (16 - (span.offset + 4 + 8 * name_count) % 16) % 16;
        if r.take(pad)?.iter().any(|&b| b != 0) {
            return Err(corrupt("segment postings padding not zero"));
        }
        let labels_off = span.offset + 4 + 8 * name_count + pad;
        let label_bytes = total
            .checked_mul(LABEL_BYTES)
            .ok_or_else(|| corrupt("segment postings size overflow"))?;
        let labels = r.take(label_bytes)?;
        let path_bytes = r.take(total * 4)?;
        r.finish()?;
        for chunk in path_bytes.chunks_exact(4) {
            let p = u32::from_le_bytes(chunk.try_into().expect("chunked by 4")) as usize;
            if p >= path_count {
                return Err(corrupt("segment postings path id out of range"));
            }
        }
        let aligned = (labels.as_ptr() as usize).is_multiple_of(std::mem::align_of::<Labeled>());
        let table = if aligned {
            PostingsTable::Mapped {
                labels_off,
                paths_off: labels_off + label_bytes,
                dir,
            }
        } else {
            // Alignment fallback: materialize owned lists. Same answers,
            // no zero-copy.
            let map = order
                .into_iter()
                .map(|(name, off, count)| {
                    let mut ls = Vec::with_capacity(count as usize);
                    let mut ps = Vec::with_capacity(count as usize);
                    for i in off..off + count {
                        let at = i as usize * LABEL_BYTES;
                        let mut lr = ByteReader::new(&labels[at..at + LABEL_BYTES]);
                        ls.push(Labeled {
                            node: xqr_store::NodeId(lr.u32().expect("sized")),
                            start: lr.u32().expect("sized"),
                            end: lr.u32().expect("sized"),
                            level: lr.u16().expect("sized"),
                        });
                        let pat = i as usize * 4;
                        ps.push(xqr_index::PathId(u32::from_le_bytes(
                            path_bytes[pat..pat + 4].try_into().expect("sized"),
                        )));
                    }
                    (name, (ls, ps))
                })
                .collect();
            PostingsTable::Owned { map }
        };
        Ok((table, total))
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Segment({} nodes, {} entries, {} bytes)",
            self.node_count,
            self.entry_count,
            self.data.len()
        )
    }
}

/// Per-QName inverted lists served from the mapping (or owned fallback).
enum PostingsTable {
    Mapped {
        /// Absolute file offset of the label records (16-aligned).
        labels_off: usize,
        /// Absolute file offset of the path-id array.
        paths_off: usize,
        /// name → (entry offset, entry count) within the label region.
        dir: HashMap<NameId, (u32, u32)>,
    },
    Owned {
        map: HashMap<NameId, (Vec<Labeled>, Vec<xqr_index::PathId>)>,
    },
}

const EMPTY: &[Labeled] = &[];

/// Reinterpret a 16-aligned label region as typed records.
///
/// SAFETY preconditions (established at load): `bytes` is 4-aligned and
/// a multiple of 16 long; `Labeled` is `repr(C)` with only integer
/// fields (every bit pattern valid) and `NodeId` is `repr(transparent)`
/// over `u32`.
fn cast_labels(bytes: &[u8]) -> &[Labeled] {
    debug_assert_eq!(bytes.len() % LABEL_BYTES, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<Labeled>(), 0);
    unsafe {
        std::slice::from_raw_parts(bytes.as_ptr() as *const Labeled, bytes.len() / LABEL_BYTES)
    }
}

impl PostingsTable {
    fn labels<'a>(&'a self, data: &'a [u8], name: NameId) -> &'a [Labeled] {
        match self {
            PostingsTable::Mapped {
                labels_off, dir, ..
            } => dir.get(&name).map_or(EMPTY, |&(off, count)| {
                let start = labels_off + off as usize * LABEL_BYTES;
                cast_labels(&data[start..start + count as usize * LABEL_BYTES])
            }),
            PostingsTable::Owned { map } => map.get(&name).map_or(EMPTY, |(l, _)| &l[..]),
        }
    }

    fn on_paths(&self, data: &[u8], name: NameId, keep: &[bool]) -> Vec<Labeled> {
        let hit = |p: u32| keep.get(p as usize).copied().unwrap_or(false);
        match self {
            PostingsTable::Mapped {
                labels_off,
                paths_off,
                dir,
            } => {
                let Some(&(off, count)) = dir.get(&name) else {
                    return Vec::new();
                };
                let lstart = labels_off + off as usize * LABEL_BYTES;
                let labels = cast_labels(&data[lstart..lstart + count as usize * LABEL_BYTES]);
                let pstart = paths_off + off as usize * 4;
                let paths = &data[pstart..pstart + count as usize * 4];
                labels
                    .iter()
                    .zip(paths.chunks_exact(4))
                    .filter(|(_, p)| hit(u32::from_le_bytes((*p).try_into().expect("sized"))))
                    .map(|(l, _)| *l)
                    .collect()
            }
            PostingsTable::Owned { map } => map.get(&name).map_or_else(Vec::new, |(ls, ps)| {
                ls.iter()
                    .zip(ps)
                    .filter(|(_, p)| hit(p.0))
                    .map(|(l, _)| *l)
                    .collect()
            }),
        }
    }
}

/// The mmap-backed structural index: implements [`xqr_index::IndexedAccess`]
/// over label slices that live in the mapped segment file, so query
/// execution after a cold start touches only the pages it actually reads.
pub struct MappedIndex {
    data: Arc<MappedBytes>,
    paths: xqr_index::PathDict,
    elements: PostingsTable,
    attributes: PostingsTable,
    entry_count: usize,
}

impl MappedIndex {
    /// True when the inverted lists are zero-copy views into the mapping
    /// (vs the owned alignment fallback).
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.elements, PostingsTable::Mapped { .. })
            && matches!(self.attributes, PostingsTable::Mapped { .. })
    }
}

impl xqr_index::IndexedAccess for MappedIndex {
    fn element_labels(&self, name: NameId) -> &[Labeled] {
        self.elements.labels(self.data.bytes(), name)
    }

    fn attribute_labels(&self, name: NameId) -> &[Labeled] {
        self.attributes.labels(self.data.bytes(), name)
    }

    fn path_dict(&self) -> &xqr_index::PathDict {
        &self.paths
    }

    fn elements_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled> {
        self.elements.on_paths(self.data.bytes(), name, keep)
    }

    fn attributes_on_paths(&self, name: NameId, keep: &[bool]) -> Vec<Labeled> {
        self.attributes.on_paths(self.data.bytes(), name, keep)
    }

    fn entry_count(&self) -> usize {
        self.entry_count
    }

    fn memory_bytes(&self) -> usize {
        // The mapped file is the footprint; heap structures (path dict,
        // directory) are negligible next to it.
        self.data.len()
    }
}

impl std::fmt::Debug for MappedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedIndex({} entries, {} paths, zero_copy={})",
            self.entry_count,
            self.paths.len(),
            self.is_zero_copy()
        )
    }
}
