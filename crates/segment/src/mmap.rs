//! Read-only file mapping without a libc dependency.
//!
//! On Linux/x86_64 we issue the `mmap`/`munmap` syscalls directly
//! (read-only, private); everywhere else — or whenever the syscall
//! fails — we fall back to reading the file into an 8-byte-aligned heap
//! buffer. Callers only ever see [`MappedBytes::bytes`], so the two
//! backings are interchangeable; the heap path merely loses the
//! lazy-paging benefit, never correctness.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// An immutable byte region backed by either a file mapping or an
/// 8-byte-aligned heap buffer.
pub struct MappedBytes {
    /// Base of the mapping when `mapped`; dangling otherwise.
    ptr: *const u8,
    len: usize,
    mapped: bool,
    /// Heap backing (`u64` elements pin 8-byte alignment, which is what
    /// the zero-copy `&[Labeled]` casts in the reader rely on).
    heap: Vec<u64>,
}

// SAFETY: the region is immutable for the lifetime of the value (PROT_READ
// private mapping or an owned, never-mutated heap buffer), so shared
// access from multiple threads is sound.
unsafe impl Send for MappedBytes {}
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Map (or read) a whole file.
    pub fn open(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            if let Some(ptr) = sys_mmap_readonly(file.as_raw_fd(), len) {
                return Ok(MappedBytes {
                    ptr,
                    len,
                    mapped: true,
                    heap: Vec::new(),
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Self::from_vec(buf))
    }

    /// Wrap an in-memory buffer (test and fallback path), re-housing it
    /// in an 8-byte-aligned backing.
    pub fn from_vec(bytes: Vec<u8>) -> MappedBytes {
        let len = bytes.len();
        let mut heap = vec![0u64; len.div_ceil(8)];
        if len > 0 {
            // SAFETY: the destination holds at least `len` bytes and the
            // regions cannot overlap (freshly allocated).
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), heap.as_mut_ptr() as *mut u8, len);
            }
        }
        MappedBytes {
            ptr: std::ptr::null(),
            len,
            mapped: false,
            heap,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Was this region served by a real `mmap` (vs the heap fallback)?
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        let base = if self.mapped {
            self.ptr
        } else {
            self.heap.as_ptr() as *const u8
        };
        // SAFETY: `base..base+len` is a live, immutable allocation (the
        // mapping is unmapped only in Drop; the heap Vec is owned).
        unsafe { std::slice::from_raw_parts(base, self.len) }
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if self.mapped {
            sys_munmap(self.ptr, self.len);
        }
    }
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedBytes({} bytes, {})",
            self.len,
            if self.mapped { "mmap" } else { "heap" }
        )
    }
}

/// Raw read-only private `mmap(2)`. Returns `None` on any syscall error
/// (the caller falls back to heap reads).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
    const SYS_MMAP: usize = 9;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;
    let ret: isize;
    // SAFETY: a well-formed mmap syscall; the kernel validates fd/len and
    // reports failure through the return value, which we range-check.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    // Errors come back as -errno in [-4095, -1].
    if (-4095..0).contains(&ret) {
        None
    } else {
        Some(ret as *const u8)
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_munmap(ptr: *const u8, len: usize) {
    const SYS_MUNMAP: usize = 11;
    let _ret: isize;
    // SAFETY: unmaps exactly the region returned by sys_mmap_readonly.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => _ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xqr-mmap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f.bin")
    }

    #[test]
    fn maps_file_contents() {
        let path = scratch("map");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut f = File::create(&path).unwrap();
        f.write_all(&payload).unwrap();
        drop(f);
        let m = MappedBytes::open(&path).unwrap();
        assert_eq!(m.bytes(), &payload[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(m.is_mapped());
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = scratch("empty");
        File::create(&path).unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), &[] as &[u8]);
    }

    #[test]
    fn heap_backing_is_8_aligned() {
        let m = MappedBytes::from_vec(vec![7u8; 33]);
        assert!(!m.is_mapped());
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        assert_eq!(m.bytes(), &[7u8; 33][..]);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MappedBytes::open(Path::new("/nonexistent/xqr-seg")).is_err());
    }
}
