//! The append-only catalog manifest: the small source of truth that
//! says which segment file serves which document URI.
//!
//! Record grammar (one line per record, LF-terminated, ASCII):
//!
//! ```text
//! add <generation> <file> <uri-escaped> <crc32:08x>
//! del <generation> <uri-escaped> <crc32:08x>
//! ```
//!
//! The CRC covers everything before its own field. URIs are
//! percent-escaped so they survive spaces and control bytes; segment
//! file names are restricted to `[A-Za-z0-9._-]`. Generations are
//! monotonically increasing per manifest; a record appended twice
//! (crash between segment rename and manifest fsync, then retried) is
//! idempotent under replay.
//!
//! **Replay** parses records in order and stops at the first torn or
//! corrupt line — everything before the tear is trusted (each record has
//! its own CRC), everything after is ignored, matching the append-then-
//! fsync write discipline: a crash can only tear the *tail*.

use crate::crc::crc32;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use xqr_xdm::{Error, Result};

/// One manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestRecord {
    /// Document `uri` is served by segment `file` as of `generation`.
    Add {
        generation: u64,
        file: String,
        uri: String,
    },
    /// Document `uri` was removed as of `generation`.
    Del { generation: u64, uri: String },
}

impl ManifestRecord {
    pub fn generation(&self) -> u64 {
        match self {
            ManifestRecord::Add { generation, .. } | ManifestRecord::Del { generation, .. } => {
                *generation
            }
        }
    }

    /// The LF-terminated wire line, CRC included.
    pub fn encode(&self) -> String {
        let payload = match self {
            ManifestRecord::Add {
                generation,
                file,
                uri,
            } => format!("add {generation} {file} {}", escape(uri)),
            ManifestRecord::Del { generation, uri } => {
                format!("del {generation} {}", escape(uri))
            }
        };
        format!("{payload} {:08x}\n", crc32(payload.as_bytes()))
    }

    /// Parse one line (no trailing newline). `None` = corrupt/torn.
    pub fn parse(line: &str) -> Option<ManifestRecord> {
        let (payload, crc_hex) = line.rsplit_once(' ')?;
        if crc_hex.len() != 8 || u32::from_str_radix(crc_hex, 16).ok()? != crc32(payload.as_bytes())
        {
            return None;
        }
        let mut it = payload.split(' ');
        let rec = match it.next()? {
            "add" => {
                let generation = it.next()?.parse().ok()?;
                let file = it.next()?.to_string();
                if !valid_file_name(&file) {
                    return None;
                }
                let uri = unescape(it.next()?)?;
                ManifestRecord::Add {
                    generation,
                    file,
                    uri,
                }
            }
            "del" => {
                let generation = it.next()?.parse().ok()?;
                let uri = unescape(it.next()?)?;
                ManifestRecord::Del { generation, uri }
            }
            _ => return None,
        };
        it.next().is_none().then_some(rec)
    }
}

/// A live catalog entry after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveSegment {
    pub generation: u64,
    pub file: String,
}

/// The result of replaying a manifest.
#[derive(Debug, Default)]
pub struct Replay {
    /// The valid record prefix, in append order.
    pub records: Vec<ManifestRecord>,
    /// Did replay stop at a torn/corrupt tail?
    pub torn: bool,
}

impl Replay {
    /// Apply the records in order: the surviving uri → segment mapping.
    pub fn live(&self) -> BTreeMap<String, LiveSegment> {
        let mut live = BTreeMap::new();
        for rec in &self.records {
            match rec {
                ManifestRecord::Add {
                    generation,
                    file,
                    uri,
                } => {
                    live.insert(
                        uri.clone(),
                        LiveSegment {
                            generation: *generation,
                            file: file.clone(),
                        },
                    );
                }
                ManifestRecord::Del { uri, .. } => {
                    live.remove(uri);
                }
            }
        }
        live
    }

    /// The next generation number to mint (max over *all* records + 1,
    /// deletes included, so generations never regress after recovery).
    pub fn next_generation(&self) -> u64 {
        self.records
            .iter()
            .map(ManifestRecord::generation)
            .max()
            .map_or(1, |g| g + 1)
    }
}

/// Handle to the on-disk manifest file (`MANIFEST` inside the catalog
/// directory).
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
}

impl Manifest {
    pub const FILE_NAME: &'static str = "MANIFEST";

    /// Open (creating if absent) the manifest in `dir`.
    pub fn open(dir: &Path) -> Result<Manifest> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("manifest dir create", e))?;
        let path = dir.join(Self::FILE_NAME);
        if !path.exists() {
            let f = File::create(&path).map_err(|e| io_err("manifest create", e))?;
            f.sync_all().map_err(|e| io_err("manifest fsync", e))?;
            sync_dir(dir)?;
        }
        Ok(Manifest { path })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and fsync. Failpoint site `manifest.append`.
    pub fn append(&self, rec: &ManifestRecord) -> Result<()> {
        xqr_faults::faultpoint!("manifest.append");
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .map_err(|e| io_err("manifest open", e))?;
        f.write_all(rec.encode().as_bytes())
            .map_err(|e| io_err("manifest append", e))?;
        f.sync_all().map_err(|e| io_err("manifest fsync", e))?;
        Ok(())
    }

    /// Replay the manifest: the valid record prefix plus a torn flag.
    pub fn replay(&self) -> Result<Replay> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(io_err("manifest read", e)),
        };
        let mut replay = Replay::default();
        let mut rest = &bytes[..];
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let parsed = std::str::from_utf8(&rest[..nl])
                .ok()
                .and_then(ManifestRecord::parse);
            match parsed {
                Some(rec) => replay.records.push(rec),
                None => {
                    // Corrupt line: trust nothing at or after it.
                    replay.torn = true;
                    return Ok(replay);
                }
            }
            rest = &rest[nl + 1..];
        }
        if !rest.is_empty() {
            // Unterminated tail: a write died mid-record.
            replay.torn = true;
        }
        Ok(replay)
    }
}

/// Delete segment/temp files in `dir` that the live set does not
/// reference: leftovers of writes that crashed before their manifest
/// record landed. Returns the removed file names (best effort — a file
/// that cannot be removed is skipped, not fatal).
pub fn clean_orphans<F: Fn(&str) -> bool>(dir: &Path, keep: F) -> Result<Vec<String>> {
    let mut removed = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("catalog dir read", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("catalog dir read", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let orphan = name.ends_with(".tmp") || (name.ends_with(".seg") && !keep(name));
        if orphan && std::fs::remove_file(entry.path()).is_ok() {
            removed.push(name.to_string());
        }
    }
    removed.sort();
    Ok(removed)
}

fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("dir fsync", e))
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::unavailable(format!("{what}: {e}"))
}

fn valid_file_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Percent-escape everything outside printable ASCII (and `%` itself) so
/// a URI is always one space-free token on the manifest line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if (0x21..=0x7E).contains(&b) && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    if out.is_empty() {
        // An empty URI still needs a token on the line.
        out.push_str("%00");
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    if out == b"\0" {
        return Some(String::new());
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_roundtrip() {
        let recs = [
            ManifestRecord::Add {
                generation: 7,
                file: "seg-7.seg".into(),
                uri: "docs/a b%.xml".into(),
            },
            ManifestRecord::Del {
                generation: 9,
                uri: "ünïcode.xml".into(),
            },
            ManifestRecord::Add {
                generation: 10,
                file: "seg-10.seg".into(),
                uri: String::new(),
            },
        ];
        for rec in recs {
            let line = rec.encode();
            let parsed = ManifestRecord::parse(line.trim_end()).unwrap();
            assert_eq!(parsed, rec);
        }
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let line = ManifestRecord::Add {
            generation: 1,
            file: "seg-1.seg".into(),
            uri: "u".into(),
        }
        .encode();
        let line = line.trim_end();
        assert!(ManifestRecord::parse(line).is_some());
        for i in 0..line.len() {
            let mut chars: Vec<u8> = line.as_bytes().to_vec();
            chars[i] ^= 0x01;
            if let Ok(s) = std::str::from_utf8(&chars) {
                assert!(ManifestRecord::parse(s).is_none(), "flip at {i} accepted");
            }
        }
        assert!(ManifestRecord::parse("add 1 seg-1.seg u deadbeef").is_none());
        assert!(ManifestRecord::parse("").is_none());
        assert!(ManifestRecord::parse("frob 1 x 00000000").is_none());
    }

    #[test]
    fn live_set_applies_adds_and_dels_in_order() {
        let replay = Replay {
            records: vec![
                ManifestRecord::Add {
                    generation: 1,
                    file: "seg-1.seg".into(),
                    uri: "a".into(),
                },
                ManifestRecord::Add {
                    generation: 2,
                    file: "seg-2.seg".into(),
                    uri: "a".into(),
                },
                ManifestRecord::Add {
                    generation: 3,
                    file: "seg-3.seg".into(),
                    uri: "b".into(),
                },
                ManifestRecord::Del {
                    generation: 4,
                    uri: "b".into(),
                },
            ],
            torn: false,
        };
        let live = replay.live();
        assert_eq!(live.len(), 1);
        assert_eq!(live["a"].file, "seg-2.seg");
        assert_eq!(live["a"].generation, 2);
        assert_eq!(replay.next_generation(), 5);
    }

    #[test]
    fn duplicate_generation_replay_is_idempotent() {
        let rec = ManifestRecord::Add {
            generation: 5,
            file: "seg-5.seg".into(),
            uri: "a".into(),
        };
        let replay = Replay {
            records: vec![rec.clone(), rec],
            torn: false,
        };
        let live = replay.live();
        assert_eq!(live.len(), 1);
        assert_eq!(live["a"].generation, 5);
        assert_eq!(replay.next_generation(), 6);
    }
}
