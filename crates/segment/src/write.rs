//! Segment serialization and the crash-safe file write protocol.
//!
//! [`segment_bytes`] packs one document — tree arrays, token stream,
//! inverted lists, path dictionary — into the layout described in
//! `layout.rs`. The encoding is *relocatable*: all name references are
//! segment-local dense ids (0 = the absent name) defined in the NAMES
//! section, so a segment can be loaded into any `NamePool`. It is also
//! *deterministic*: the same document and index always serialize to the
//! same bytes, regardless of pool id assignment or hash-map iteration
//! order (inverted-list directories are sorted by segment-local name id,
//! which is derived from document order).
//!
//! [`write_segment_file`] is the durability half: write to `<name>.tmp`,
//! fsync, atomically rename to `<name>`, fsync the directory. A crash at
//! any step leaves either no file or a fully valid file — never a
//! partially visible one. Failpoints `segment.write`, `segment.fsync`
//! and `segment.rename` bracket each step for the chaos harness.

use crate::blob::ByteWriter;
use crate::layout::{kind_to_u8, section, write_footer, MAGIC, VERSION};
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use xqr_index::{DocIndex, IndexedAccess, Postings};
use xqr_store::{Document, NO_NODE};
use xqr_tokenstream::{encode, Token, TokenStream};
use xqr_xdm::{Error, NameId, Result};

/// Segment-local name table: dense ids in first-occurrence document
/// order, with id 0 pinned to the absent name. Pool-independent, hence
/// the determinism guarantee above.
struct SegNames {
    live_to_seg: HashMap<u32, u32>,
    seg_to_live: Vec<NameId>,
}

impl SegNames {
    fn build(node_names: &[NameId]) -> SegNames {
        let mut names = SegNames {
            live_to_seg: HashMap::from([(NameId::NONE.0, 0)]),
            seg_to_live: vec![NameId::NONE],
        };
        for &n in node_names {
            if !names.live_to_seg.contains_key(&n.0) {
                names
                    .live_to_seg
                    .insert(n.0, names.seg_to_live.len() as u32);
                names.seg_to_live.push(n);
            }
        }
        names
    }

    fn seg(&self, live: NameId) -> u32 {
        // Every name the index references belongs to some document node,
        // so it was collected in build().
        *self
            .live_to_seg
            .get(&live.0)
            .expect("index name not present in document")
    }
}

/// Serialize a document and its structural index into a complete,
/// checksummed segment blob.
pub fn segment_bytes(doc: &Document, index: &DocIndex) -> Result<Vec<u8>> {
    let parts = doc.raw_parts();
    let names = SegNames::build(parts.node_names);
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    let mut table: Vec<(u32, usize, usize)> = Vec::new();
    let begin = |w: &mut ByteWriter| {
        w.align16();
        w.offset()
    };

    // META
    let off = begin(&mut w);
    w.u32(VERSION);
    w.opt_str(parts.uri);
    w.u64(parts.kinds.len() as u64);
    w.u64(index.entry_count() as u64);
    table.push((section::META, off, w.offset() - off));

    // NAMES
    let off = begin(&mut w);
    w.u32(names.seg_to_live.len() as u32);
    for &live in &names.seg_to_live {
        let q = doc.names.resolve(live);
        let flags = u8::from(q.namespace().is_some()) | (u8::from(q.prefix().is_some()) << 1);
        w.u8(flags);
        if let Some(ns) = q.namespace() {
            w.str(ns);
        }
        if let Some(p) = q.prefix() {
            w.str(p);
        }
        w.str(q.local_name());
    }
    table.push((section::NAMES, off, w.offset() - off));

    // TOKENS: the dictionary-compressed wire encoding of the document's
    // token stream, re-derived from the tree.
    let stream = doc_tokens(doc)?;
    let encoded = encode(&stream, true);
    let off = begin(&mut w);
    w.bytes(&encoded);
    table.push((section::TOKENS, off, w.offset() - off));

    // TREE: the struct-of-arrays document, name ids remapped seg-local.
    let off = begin(&mut w);
    w.u64(parts.kinds.len() as u64);
    for &k in parts.kinds {
        w.u8(kind_to_u8(k));
    }
    for &n in parts.node_names {
        w.u32(names.seg(n));
    }
    for arr in [
        parts.parents,
        parts.next_siblings,
        parts.first_children,
        parts.subtree_ends,
    ] {
        for &v in arr {
            w.u32(v);
        }
    }
    for &l in parts.levels {
        w.u16(l);
    }
    for &v in parts.values {
        w.u32(v);
    }
    w.u32(parts.strings.len() as u32);
    for (_, s) in parts.strings.iter() {
        w.str(s);
    }
    table.push((section::TREE, off, w.offset() - off));

    // PATHS: the dictionary rows in id order (parents precede children),
    // so re-interning on load reproduces identical PathIds.
    let dict = index.path_dict();
    let off = begin(&mut w);
    w.u32(dict.len() as u32);
    for i in 0..dict.len() as u32 {
        let p = xqr_index::PathId(i);
        w.u32(dict.parent(p).map_or(u32::MAX, |pp| pp.0));
        w.u32(names.seg(dict.name(p)));
    }
    table.push((section::PATHS, off, w.offset() - off));

    // ELEMS / ATTRS inverted lists.
    let postings_section = |w: &mut ByteWriter,
                            table: &mut Vec<(u32, usize, usize)>,
                            id: u32,
                            lists: Vec<(u32, &Postings)>| {
        let off = begin(w);
        w.u32(lists.len() as u32);
        for &(seg, p) in &lists {
            w.u32(seg);
            w.u32(p.len() as u32);
        }
        // Labels start on the next 16-byte file boundary so the reader
        // can serve them as zero-copy `&[Labeled]` slices.
        w.align16();
        for &(_, p) in &lists {
            for l in p.labels() {
                w.u32(l.node.0);
                w.u32(l.start);
                w.u32(l.end);
                w.u16(l.level);
                w.u16(0); // explicit struct padding, kept zero on disk
            }
        }
        for &(_, p) in &lists {
            for path in p.paths() {
                w.u32(path.0);
            }
        }
        table.push((id, off, w.offset() - off));
    };
    fn sorted<'a>(
        it: impl Iterator<Item = (NameId, &'a Postings)>,
        names: &SegNames,
    ) -> Vec<(u32, &'a Postings)> {
        let mut v: Vec<(u32, &'a Postings)> = it.map(|(n, p)| (names.seg(n), p)).collect();
        v.sort_by_key(|&(seg, _)| seg);
        v
    }
    postings_section(
        &mut w,
        &mut table,
        section::ELEMS,
        sorted(index.element_postings(), &names),
    );
    postings_section(
        &mut w,
        &mut table,
        section::ATTRS,
        sorted(index.attribute_postings(), &names),
    );

    w.align16();
    let mut buf = w.buf;
    write_footer(&mut buf, &table);
    Ok(buf)
}

/// Replay a materialized document as its token sequence (the inverse of
/// `Document::from_tokens`), sharing the document's name pool.
fn doc_tokens(doc: &Document) -> Result<TokenStream> {
    enum Ev {
        Open(xqr_store::NodeId),
        Close,
    }
    let mut b = TokenStream::builder(doc.names.clone());
    b.push(Token::StartDocument);
    let mut stack: Vec<Ev> = Vec::new();
    let push_children = |stack: &mut Vec<Ev>, n| {
        let mut children: Vec<_> = {
            let mut out = Vec::new();
            let mut c = doc.first_child(n);
            while let Some(ch) = c {
                out.push(ch);
                c = doc.next_sibling(ch);
            }
            out
        };
        children.reverse();
        stack.extend(children.into_iter().map(Ev::Open));
    };
    push_children(&mut stack, doc.root());
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Close => b.push(Token::EndElement),
            Ev::Open(n) => match doc.kind(n) {
                xqr_xdm::NodeKind::Element => {
                    b.push(Token::StartElement(doc.name_id(n)));
                    for ns in doc.namespaces(n) {
                        let prefix = doc.names.resolve(doc.name_id(ns));
                        let p = b.intern_str(prefix.local_name());
                        let u = b.intern_str(doc.value(ns).unwrap_or(""));
                        b.push(Token::NamespaceDecl(p, u));
                    }
                    for a in doc.attributes(n) {
                        let v = b.intern_str(doc.value(a).unwrap_or(""));
                        b.push(Token::Attribute(doc.name_id(a), v));
                    }
                    stack.push(Ev::Close);
                    push_children(&mut stack, n);
                }
                xqr_xdm::NodeKind::Text => b.text(doc.value(n).unwrap_or("")),
                xqr_xdm::NodeKind::Comment => {
                    let s = b.intern_str(doc.value(n).unwrap_or(""));
                    b.push(Token::Comment(s));
                }
                xqr_xdm::NodeKind::ProcessingInstruction => {
                    let d = b.intern_str(doc.value(n).unwrap_or(""));
                    b.push(Token::ProcessingInstruction(doc.name_id(n), d));
                }
                // Attribute/namespace nodes hang off their element and
                // never appear in the child chain; Document is the root.
                _ => {}
            },
        }
    }
    b.push(Token::EndDocument);
    b.finish()
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::unavailable(format!("segment {what}: {e}"))
}

/// Crash-safe persist: temp file → fsync → atomic rename → directory
/// fsync. After this returns, the segment is durable; if it errors (or
/// the process dies) at any step, the final path is untouched and at
/// worst a `.tmp` orphan remains for recovery to sweep.
pub fn write_segment_file(dir: &Path, file_name: &str, bytes: &[u8]) -> Result<()> {
    xqr_faults::faultpoint!("segment.write");
    let tmp = dir.join(format!("{file_name}.tmp"));
    let mut f = File::create(&tmp).map_err(|e| io_err("create", e))?;
    f.write_all(bytes).map_err(|e| io_err("write", e))?;
    xqr_faults::faultpoint!("segment.fsync");
    f.sync_all().map_err(|e| io_err("fsync", e))?;
    drop(f);
    xqr_faults::faultpoint!("segment.rename");
    std::fs::rename(&tmp, dir.join(file_name)).map_err(|e| io_err("rename", e))?;
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("dir fsync", e))?;
    Ok(())
}

// NO_NODE is serialized raw; keep the sentinel assumption explicit.
const _: () = assert!(NO_NODE == u32::MAX);
