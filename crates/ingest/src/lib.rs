//! # xqr-ingest — async chunked ingestion with bounded buffers
//!
//! Documents arrive over a wire in arbitrary byte chunks; queries and
//! standing subscriptions should see results while bytes are still
//! arriving, and memory should be bounded by a buffer, not the
//! document. This crate is the pipe between those two worlds:
//!
//! * [`event_channel`] — a bounded SPSC channel of parse events with
//!   backpressure: the producer parks when the consumer falls behind,
//!   and a parked producer observes guard cancellation/deadlines and
//!   receiver drops instead of hanging;
//! * [`pipeline`] — wires the resumable chunk-fed lexer
//!   ([`XmlReader::incremental`](xqr_xmlparse::XmlReader::incremental))
//!   to the channel: [`IngestPipeline::feed`] accepts chunks split at
//!   *any* byte boundary (mid-tag, mid-entity, mid-UTF-8) on the
//!   feeding thread;
//! * [`ChannelTokenIterator`] — the consumer end as a standard
//!   [`TokenIterator`](xqr_tokenstream::TokenIterator), so the
//!   streaming matcher and the pub/sub combined automaton run over a
//!   live byte stream unmodified;
//! * [`ChannelGauges`] — occupancy instrumentation (peak, blocked
//!   sends) surfaced through the service stats; the bounded-memory
//!   acceptance test pins `peak <= capacity` for a 64 MiB document
//!   against a slow consumer.
//!
//! The invariant, enforced by the chunked differential oracle: a
//! document fed through this pipeline in any chunking produces exactly
//! the token sequence — and therefore exactly the query results and
//! coded errors — of the whole-document pull path.
//!
//! ```
//! use std::sync::Arc;
//! use std::thread;
//! use xqr_ingest::pipeline;
//! use xqr_tokenstream::{drain, TokenIterator};
//! use xqr_xdm::NamePool;
//!
//! let (mut tx, mut rx) = pipeline(Arc::new(NamePool::new()), 16, None);
//! let feeder = thread::spawn(move || {
//!     for chunk in [&b"<a><b>x"[..], &b"</b></a>"[..]] {
//!         tx.feed(chunk).unwrap();
//!     }
//!     tx.finish().unwrap();
//! });
//! let tokens = drain(&mut rx).unwrap();
//! feeder.join().unwrap();
//! assert_eq!(tokens, 7); // SD <a> <b> "x" </b> </a> ED
//! ```

mod channel;
mod pipeline;

pub use channel::{event_channel, ChannelGauges, EventReceiver, EventSender};
pub use pipeline::{pipeline, ChannelTokenIterator, IngestPipeline};
