//! The bounded SPSC event channel — the ingestion pipeline's backbone.
//!
//! The producer (the lexing side) parks in [`EventSender::send`] when
//! the consumer falls behind, so pipeline memory stays O(capacity), not
//! O(document). Parked producers poll their [`QueryGuard`] each wakeup:
//! cancellation and deadline trips unblock them with the guard's coded
//! error instead of hanging a caller thread forever. Dropping the
//! receiver likewise unblocks the producer (with `XQRL0003 Cancelled`):
//! a consumer that errored out and unwound must not strand the feeder.
//!
//! Occupancy is instrumented: [`ChannelGauges::peak`] is the high-water
//! mark the bounded-memory acceptance test asserts against — a 64 MiB
//! document through a slow consumer must top out at `capacity`, never
//! above it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use xqr_xdm::{Error, QueryGuard, Result};
use xqr_xmlparse::XmlEvent;

/// How long a parked producer sleeps between guard polls. Short enough
/// that cancellation feels immediate, long enough not to spin.
const PARK_POLL: Duration = Duration::from_millis(20);

/// Occupancy and throughput gauges, shared with the service stats
/// surface. All monotonic except `capacity` (fixed at construction).
#[derive(Debug)]
pub struct ChannelGauges {
    capacity: usize,
    peak: AtomicUsize,
    events_sent: AtomicU64,
    blocked_sends: AtomicU64,
}

impl ChannelGauges {
    /// The bound: queue occupancy can never exceed this.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of queue occupancy over the channel's life.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Events pushed through the channel.
    pub fn events_sent(&self) -> u64 {
        self.events_sent.load(Ordering::Relaxed)
    }

    /// Sends that found the queue full and had to park at least once —
    /// the backpressure counter.
    pub fn blocked_sends(&self) -> u64 {
        self.blocked_sends.load(Ordering::Relaxed)
    }
}

struct State {
    queue: VecDeque<XmlEvent>,
    /// Producer called close (cleanly or with an error).
    closed: bool,
    /// Producer-side failure, delivered to the consumer *after* the
    /// queued prefix drains: events lexed before the failure are valid.
    error: Option<Error>,
    /// Consumer dropped; sends fail immediately.
    receiver_gone: bool,
}

struct Shared {
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
    gauges: Arc<ChannelGauges>,
}

/// Short panic-free critical sections only: poisoned state is sound.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Producer half. Not `Clone`: the channel is single-producer.
pub struct EventSender {
    shared: Arc<Shared>,
}

/// Consumer half. Not `Clone`: the channel is single-consumer.
pub struct EventReceiver {
    shared: Arc<Shared>,
}

/// A bounded single-producer single-consumer channel of parse events.
/// `capacity` must be at least 1.
pub fn event_channel(capacity: usize) -> (EventSender, EventReceiver) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            closed: false,
            error: None,
            receiver_gone: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        gauges: Arc::new(ChannelGauges {
            capacity,
            peak: AtomicUsize::new(0),
            events_sent: AtomicU64::new(0),
            blocked_sends: AtomicU64::new(0),
        }),
    });
    (
        EventSender {
            shared: shared.clone(),
        },
        EventReceiver { shared },
    )
}

impl EventSender {
    /// Enqueue one event, parking while the queue is at capacity. While
    /// parked the optional guard is polled: a cancellation or deadline
    /// trip aborts the send with the guard's error. A dropped receiver
    /// aborts it with `Cancelled`.
    pub fn send(&self, ev: XmlEvent, guard: Option<&QueryGuard>) -> Result<()> {
        let mut st = lock_unpoisoned(&self.shared.state);
        let mut parked = false;
        loop {
            if st.receiver_gone {
                return Err(Error::cancelled("ingest consumer dropped mid-stream"));
            }
            if st.queue.len() < self.shared.gauges.capacity {
                break;
            }
            if !parked {
                parked = true;
                self.shared
                    .gauges
                    .blocked_sends
                    .fetch_add(1, Ordering::Relaxed);
            }
            st = self
                .shared
                .not_full
                .wait_timeout(st, PARK_POLL)
                .unwrap_or_else(|p| p.into_inner())
                .0;
            if let Some(g) = guard {
                g.check_startup()?;
            }
        }
        st.queue.push_back(ev);
        let len = st.queue.len();
        drop(st);
        self.shared
            .gauges
            .events_sent
            .fetch_add(1, Ordering::Relaxed);
        self.shared.gauges.peak.fetch_max(len, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Declare the stream over. `error` (first close wins) is handed to
    /// the consumer once the queued prefix drains. Idempotent; also runs
    /// on drop (clean close), so a panicking producer can't hang the
    /// consumer.
    pub fn close(&self, error: Option<Error>) {
        let mut st = lock_unpoisoned(&self.shared.state);
        if !st.closed {
            st.closed = true;
            st.error = error;
        }
        drop(st);
        self.shared.not_empty.notify_all();
    }

    /// The channel's occupancy gauges (shared with the receiver).
    pub fn gauges(&self) -> Arc<ChannelGauges> {
        self.shared.gauges.clone()
    }
}

impl Drop for EventSender {
    fn drop(&mut self) {
        self.close(None);
    }
}

impl EventReceiver {
    /// Next event, blocking while the queue is empty and the stream is
    /// open. `Ok(None)` is a clean end of stream; a producer-side error
    /// is returned (sticky) only after every event queued before the
    /// failure has been handed out.
    pub fn recv(&self) -> Result<Option<XmlEvent>> {
        let mut st = lock_unpoisoned(&self.shared.state);
        loop {
            if let Some(ev) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(Some(ev));
            }
            if st.closed {
                return match &st.error {
                    Some(e) => Err(e.clone()),
                    None => Ok(None),
                };
            }
            st = self
                .shared
                .not_empty
                .wait_timeout(st, PARK_POLL)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Current queue occupancy (instantaneous; for tests and gauges).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.shared.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's occupancy gauges (shared with the sender).
    pub fn gauges(&self) -> Arc<ChannelGauges> {
        self.shared.gauges.clone()
    }
}

impl Drop for EventReceiver {
    fn drop(&mut self) {
        let mut st = lock_unpoisoned(&self.shared.state);
        st.receiver_gone = true;
        drop(st);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use xqr_xdm::{ErrorCode, Limits};

    fn text(s: &str) -> XmlEvent {
        XmlEvent::Text(Arc::from(s))
    }

    #[test]
    fn events_flow_in_order_and_close_ends_stream() {
        let (tx, rx) = event_channel(4);
        tx.send(text("a"), None).unwrap();
        tx.send(text("b"), None).unwrap();
        tx.close(None);
        assert_eq!(rx.recv().unwrap(), Some(text("a")));
        assert_eq!(rx.recv().unwrap(), Some(text("b")));
        assert_eq!(rx.recv().unwrap(), None);
        assert_eq!(rx.recv().unwrap(), None); // stays closed
    }

    #[test]
    fn producer_parks_at_capacity_and_resumes_when_drained() {
        let (tx, rx) = event_channel(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(text(&i.to_string()), None).unwrap();
            }
            tx.close(None);
            tx.gauges().peak()
        });
        // Give the producer time to fill the queue and park, so the
        // blocked_sends assertion below is deterministic.
        thread::sleep(std::time::Duration::from_millis(100));
        let mut got = 0;
        while rx.recv().unwrap().is_some() {
            got += 1;
            // The queue can never hold more than the capacity.
            assert!(rx.len() <= 2);
        }
        got += 0;
        assert_eq!(got, 100);
        let peak = producer.join().unwrap();
        assert!(peak <= 2, "peak {peak} exceeds capacity");
        assert!(rx.gauges().blocked_sends() > 0, "producer never parked");
    }

    #[test]
    fn error_is_delivered_after_valid_prefix_and_is_sticky() {
        let (tx, rx) = event_channel(8);
        tx.send(text("ok"), None).unwrap();
        tx.close(Some(Error::syntax("boom")));
        assert_eq!(rx.recv().unwrap(), Some(text("ok")));
        assert_eq!(rx.recv().unwrap_err().code, ErrorCode::Syntax);
        assert_eq!(rx.recv().unwrap_err().code, ErrorCode::Syntax);
    }

    #[test]
    fn dropped_receiver_unblocks_parked_producer() {
        let (tx, rx) = event_channel(1);
        tx.send(text("fills the queue"), None).unwrap();
        let producer = thread::spawn(move || tx.send(text("parks"), None));
        thread::sleep(Duration::from_millis(50));
        drop(rx);
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::Cancelled);
    }

    #[test]
    fn cancellation_unblocks_parked_producer() {
        let (tx, _rx) = event_channel(1);
        let guard = QueryGuard::new(Limits::unlimited());
        let cancel = guard.cancel_handle();
        tx.send(text("fills the queue"), None).unwrap();
        let producer = thread::spawn(move || tx.send(text("parks"), Some(&guard)));
        thread::sleep(Duration::from_millis(50));
        cancel.cancel();
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::Cancelled);
    }

    #[test]
    fn dropped_sender_closes_cleanly() {
        let (tx, rx) = event_channel(4);
        tx.send(text("last"), None).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), Some(text("last")));
        assert_eq!(rx.recv().unwrap(), None);
    }
}
