//! The two ends of the ingestion pipeline.
//!
//! [`IngestPipeline`] is the producer: it owns the resumable lexer,
//! accepts arbitrary byte chunks, and pushes completed events into the
//! bounded channel — parking (backpressure) when the consumer lags.
//! [`ChannelTokenIterator`] is the consumer: a [`TokenIterator`] over
//! the channel, so every pull-driven component in the engine — the
//! single-query [`StreamMatcher`](xqr_runtime::StreamMatcher), the
//! pub/sub shared pass — runs over a live byte stream unmodified.
//!
//! Events cross the thread boundary as owned [`XmlEvent`]s and are
//! re-interned consumer-side through the same `event_to_tokens` mapping
//! the whole-document pull adapter uses, so both paths produce
//! identical token sequences.

use std::collections::VecDeque;
use std::sync::Arc;

use xqr_tokenstream::{event_to_tokens, StrId, Token, TokenIterator};
use xqr_xdm::{Error, NameId, NamePool, QName, QueryGuard, Result};
use xqr_xmlparse::XmlReader;

use crate::channel::{event_channel, ChannelGauges, EventReceiver, EventSender};

/// Producer half: chunked bytes in, backpressured events out.
///
/// Errors are sticky: once the lexer or the channel fails, every later
/// call returns the same error, and the failure has already been pushed
/// to the consumer (after the valid event prefix).
pub struct IngestPipeline {
    reader: XmlReader<'static>,
    tx: EventSender,
    guard: Option<QueryGuard>,
    failed: Option<Error>,
    finished: bool,
    bytes_fed: u64,
}

/// Build a pipeline: the [`IngestPipeline`] stays with the feeding
/// thread, the [`ChannelTokenIterator`] moves to the evaluating thread.
/// `capacity` bounds in-flight events (memory is O(capacity), not
/// O(document)); `guard`, when given, applies reader limits and token
/// budgets on both ends and lets a parked producer observe cancellation.
pub fn pipeline(
    names: Arc<NamePool>,
    capacity: usize,
    guard: Option<QueryGuard>,
) -> (IngestPipeline, ChannelTokenIterator) {
    let (tx, rx) = event_channel(capacity);
    let reader = match &guard {
        Some(g) => XmlReader::incremental().with_guard(g.clone()),
        None => XmlReader::incremental(),
    };
    (
        IngestPipeline {
            reader,
            tx,
            guard: guard.clone(),
            failed: None,
            finished: false,
            bytes_fed: 0,
        },
        ChannelTokenIterator::new(rx, names, guard),
    )
}

impl IngestPipeline {
    fn check_failed(&self) -> Result<()> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Record a failure, push it to the consumer, and return it.
    fn fail<T>(&mut self, e: Error) -> Result<T> {
        self.failed = Some(e.clone());
        self.tx.close(Some(e.clone()));
        Err(e)
    }

    /// Drain every event the lexer has completed into the channel,
    /// parking when it is full.
    fn pump(&mut self) -> Result<()> {
        loop {
            match self.reader.poll_event() {
                Ok(Some(ev)) => {
                    if let Err(e) = self.tx.send(ev, self.guard.as_ref()) {
                        return self.fail(e);
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => return self.fail(e),
            }
        }
    }

    /// Feed one chunk (any boundary — mid-tag, mid-entity, mid-UTF-8
    /// sequence) and push whatever events completed. Blocks only when
    /// the channel is full (backpressure).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<()> {
        self.check_failed()?;
        self.bytes_fed += chunk.len() as u64;
        if let Err(e) = self.reader.feed(chunk) {
            return self.fail(e);
        }
        self.pump()
    }

    /// Declare end of input: flush the final events and close the
    /// channel. The consumer's stream ends cleanly (or with the
    /// document's coded error — e.g. an unclosed element).
    pub fn finish(&mut self) -> Result<()> {
        self.check_failed()?;
        if self.finished {
            return Ok(());
        }
        if let Err(e) = self.reader.finish() {
            return self.fail(e);
        }
        self.pump()?;
        self.finished = true;
        self.tx.close(None);
        Ok(())
    }

    /// Total bytes accepted by [`IngestPipeline::feed`].
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// Bytes parked in the lexer awaiting a complete syntactic unit.
    pub fn buffered_bytes(&self) -> usize {
        self.reader.buffered_bytes()
    }

    /// The channel's occupancy gauges.
    pub fn gauges(&self) -> Arc<ChannelGauges> {
        self.tx.gauges()
    }
}

/// Consumer half: a [`TokenIterator`] over the event channel. Blocks in
/// `next_token` while the producer is still lexing; ends (or errors)
/// when the producer closes.
pub struct ChannelTokenIterator {
    rx: EventReceiver,
    pool: xqr_tokenstream::StringPool,
    names: Arc<NamePool>,
    queue: VecDeque<Token>,
    finished: bool,
    last_opened: bool,
    guard: Option<QueryGuard>,
}

impl ChannelTokenIterator {
    fn new(rx: EventReceiver, names: Arc<NamePool>, guard: Option<QueryGuard>) -> Self {
        ChannelTokenIterator {
            rx,
            pool: xqr_tokenstream::StringPool::new(),
            names,
            queue: VecDeque::new(),
            finished: false,
            last_opened: false,
            guard,
        }
    }

    pub fn names(&self) -> &Arc<NamePool> {
        &self.names
    }

    /// The channel's occupancy gauges.
    pub fn gauges(&self) -> Arc<ChannelGauges> {
        self.rx.gauges()
    }
}

/// Pooled payload bytes the consumer carries before recycling its pool
/// at the next safe point (drained queue) — mirrors the push
/// tokenizer's window so channel consumers stay O(window) too.
const POOL_RECYCLE_BYTES: usize = 64 * 1024;

impl TokenIterator for ChannelTokenIterator {
    fn next_token(&mut self) -> Result<Option<Token>> {
        // Every handed-out token has been resolved by now (consumers
        // resolve ids before pulling the next token), so a grown pool
        // recycles instead of accumulating every unique string the
        // document ever contained.
        if self.queue.is_empty() && self.pool.payload_bytes() > POOL_RECYCLE_BYTES {
            self.pool.recycle();
        }
        while self.queue.is_empty() {
            if self.finished {
                return Ok(None);
            }
            match self.rx.recv()? {
                Some(ev) => {
                    if event_to_tokens(&ev, &self.names, &mut self.pool, &mut self.queue) {
                        self.finished = true;
                    }
                }
                None => {
                    // Producer closed without EndDocument (it failed and
                    // already delivered its error, or was dropped).
                    self.finished = true;
                }
            }
        }
        let t = self.queue.pop_front();
        if t.is_some() {
            if let Some(guard) = &self.guard {
                guard.note_tokens(1)?;
            }
        }
        self.last_opened = t.map(|t| t.opens()).unwrap_or(false);
        Ok(t)
    }

    fn skip_subtree(&mut self) -> Result<usize> {
        if !self.last_opened {
            return Ok(0);
        }
        // Tokens still cross the channel (the producer can't seek), but
        // they are dropped here without reaching the consumer logic —
        // and without interning costs for pruned content is the point.
        let mut depth = 1usize;
        let mut skipped = 0usize;
        loop {
            let t = match self.next_token()? {
                Some(t) => t,
                None => return Ok(skipped),
            };
            skipped += 1;
            if t.opens() {
                depth += 1;
            } else if t.closes() {
                depth -= 1;
                if depth == 0 {
                    self.last_opened = false;
                    return Ok(skipped);
                }
            }
        }
    }

    fn pooled_str(&self, id: StrId) -> Arc<str> {
        self.pool.get_arc(id)
    }

    fn name(&self, id: NameId) -> QName {
        self.names.resolve(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use xqr_xdm::{ErrorCode, Limits};

    const DOC: &str = concat!(
        r#"<?xml version="1.0"?><order id="4711"><!-- note --><date>2003-08-19</date>"#,
        r#"<lineitem xmlns="www.boo.com" qty="2">caf&#233;</lineitem><?audit log?></order>"#
    );

    fn render(t: &Token, r: &impl TokenIterator) -> String {
        match t {
            Token::StartDocument => "SD".into(),
            Token::EndDocument => "ED".into(),
            Token::StartElement(n) => format!("SE({})", r.name(*n)),
            Token::EndElement => "EE".into(),
            Token::Attribute(n, v) => format!("A({}={})", r.name(*n), r.pooled_str(*v)),
            Token::NamespaceDecl(p, u) => {
                format!("NS({}={})", r.pooled_str(*p), r.pooled_str(*u))
            }
            Token::Text(s) => format!("T({})", r.pooled_str(*s)),
            Token::Comment(c) => format!("C({})", r.pooled_str(*c)),
            Token::ProcessingInstruction(n, d) => {
                format!("PI({} {})", r.name(*n), r.pooled_str(*d))
            }
        }
    }

    fn pull_tokens(doc: &str) -> Vec<String> {
        let mut it = xqr_tokenstream::ParserTokenIterator::new(doc, Arc::new(NamePool::new()));
        let mut out = Vec::new();
        while let Some(t) = it.next_token().unwrap() {
            out.push(render(&t, &it));
        }
        out
    }

    fn channel_tokens(doc: &'static str, chunk: usize, capacity: usize) -> Vec<String> {
        let (mut tx, mut rx) = pipeline(Arc::new(NamePool::new()), capacity, None);
        let feeder = thread::spawn(move || {
            for c in doc.as_bytes().chunks(chunk) {
                tx.feed(c).unwrap();
            }
            tx.finish().unwrap();
        });
        let mut out = Vec::new();
        while let Some(t) = rx.next_token().unwrap() {
            out.push(render(&t, &rx));
        }
        feeder.join().unwrap();
        out
    }

    #[test]
    fn channel_iterator_equals_pull_adapter_at_any_chunk_size() {
        let want = pull_tokens(DOC);
        for chunk in [1, 3, 16, DOC.len()] {
            assert_eq!(channel_tokens(DOC, chunk, 4), want, "chunk {chunk}");
        }
    }

    #[test]
    fn tiny_capacity_applies_backpressure_without_losing_events() {
        let want = pull_tokens(DOC);
        let got = channel_tokens(DOC, 7, 1);
        assert_eq!(got, want);
    }

    #[test]
    fn lexer_error_reaches_consumer_after_valid_prefix() {
        let (mut tx, mut rx) = pipeline(Arc::new(NamePool::new()), 8, None);
        tx.feed(b"<a><b>x</b>").unwrap();
        let e = tx.feed(b"</wrong>").unwrap_err();
        assert_eq!(e.code, ErrorCode::Syntax);
        // Everything lexed before the failure still comes through.
        let mut tokens = 0;
        let got = loop {
            match rx.next_token() {
                Ok(Some(_)) => tokens += 1,
                Ok(None) => panic!("stream must end with the error"),
                Err(e) => break e,
            }
        };
        assert!(tokens >= 3, "valid prefix delivered ({tokens} tokens)");
        assert_eq!(got.code, ErrorCode::Syntax);
        // Sticky on the producer too.
        assert_eq!(tx.feed(b"<more/>").unwrap_err().code, ErrorCode::Syntax);
    }

    #[test]
    fn stream_matcher_runs_over_a_live_channel() {
        let q = xqr_core::Engine::new().compile("//date").unwrap();
        let pattern = q.stream_pattern().unwrap().clone();
        let (mut tx, rx) = pipeline(Arc::new(NamePool::new()), 2, None);
        let feeder = thread::spawn(move || {
            for c in DOC.as_bytes().chunks(5) {
                tx.feed(c).unwrap();
            }
            tx.finish().unwrap();
        });
        let mut m = xqr_runtime::StreamMatcher::new(rx, pattern);
        let matches = m.all_matches().unwrap();
        feeder.join().unwrap();
        assert_eq!(matches, vec!["<date>2003-08-19</date>".to_string()]);
    }

    #[test]
    fn guard_token_budget_trips_across_the_channel() {
        let guard = QueryGuard::new(Limits::unlimited().with_max_tokens(3));
        let (mut tx, mut rx) = pipeline(Arc::new(NamePool::new()), 8, Some(guard));
        // Producer-side reader also carries the guard; feed a small doc
        // fully so the trip happens on the consumer side.
        tx.feed(b"<a><b/><c/></a>").unwrap();
        let _ = tx.finish();
        let err = loop {
            match rx.next_token() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("budget should trip"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, ErrorCode::Limit);
    }
}
