//! Plan explanation: a readable rendering of the compiled core tree plus
//! optimizer statistics — the engine's answer to the talk's "debugging
//! and explaining XQuery behavior" open problem.

use xqr_compiler::{CompiledQuery, Core, CoreClause, CoreName};

/// Render a compiled query: body plan, per-function plans, rewrite stats.
pub fn explain(query: &CompiledQuery) -> String {
    let mut out = String::new();
    out.push_str(&format!("body type: {}\n", query.body_type));
    out.push_str(&format!("needs node ids: {}\n", query.needs_node_ids));
    if !query.stats.is_empty() {
        let mut stats: Vec<_> = query.stats.iter().collect();
        stats.sort();
        out.push_str("rewrites:\n");
        for (rule, n) in stats {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
    }
    for f in &query.module.functions {
        out.push_str(&format!("function {}#{}:\n", f.name, f.params.len()));
        render(&f.body, 1, &mut out);
    }
    out.push_str("plan:\n");
    render(&query.module.body, 1, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(e: &Core, depth: usize, out: &mut String) {
    indent(depth, out);
    let label = match e {
        Core::Const(v) => format!("const {} ({})", v, v.type_of().name()),
        Core::Empty => "empty".into(),
        Core::Seq(items) => format!("sequence[{}]", items.len()),
        Core::Range(..) => "range".into(),
        Core::Var(v) => format!("var ${}", v.0),
        Core::ContextItem => "context-item".into(),
        Core::Root => "root".into(),
        Core::For { var, position, .. } => match position {
            Some(p) => format!("for ${} at ${}", var.0, p.0),
            None => format!("for ${}", var.0),
        },
        Core::Let { var, .. } => format!("let ${}", var.0),
        Core::OrderedFlwor { clauses, order, .. } => {
            let kinds: Vec<&str> = clauses
                .iter()
                .map(|c| match c {
                    CoreClause::For { .. } => "for",
                    CoreClause::Let { .. } => "let",
                    CoreClause::GroupLet { .. } => "group-join-let",
                })
                .collect();
            format!("flwor[{}] order-by[{}]", kinds.join(","), order.len())
        }
        Core::If { .. } => "if".into(),
        Core::And(..) => "and".into(),
        Core::Or(..) => "or".into(),
        Core::Ebv(_) => "ebv".into(),
        Core::Arith(op, ..) => format!("arith {}", op.symbol()),
        Core::Neg(_) => "neg".into(),
        Core::Compare(op, ..) => format!("compare {}", op.symbol()),
        Core::Quantified { every, var, .. } => {
            format!("{} ${}", if *every { "every" } else { "some" }, var.0)
        }
        Core::Union(..) => "union".into(),
        Core::Intersect(..) => "intersect".into(),
        Core::Except(..) => "except".into(),
        Core::Step { axis, test } => format!("step {:?}::{:?}", axis, test),
        Core::PathMap { .. } => "path-map".into(),
        Core::Ddo(_) => "ddo (sort + dedup)".into(),
        Core::Filter { .. } => "filter".into(),
        Core::PositionConst { position, .. } => format!("position [{position}] (skip-enabled)"),
        Core::Builtin(name, args) => format!("fn:{name}#{}", args.len()),
        Core::UserCall(fid, args) => format!("call #{}#{}", fid.0, args.len()),
        Core::InstanceOf(_, ty) => format!("instance-of {ty}"),
        Core::CastAs(_, ty, _) => format!("cast {}", ty.name()),
        Core::CastableAs(_, ty, _) => format!("castable {}", ty.name()),
        Core::TreatAs(_, ty) => format!("treat {ty}"),
        Core::Typeswitch { cases, .. } => format!("typeswitch[{}]", cases.len()),
        Core::ElemCtor { name, .. } => match name {
            CoreName::Const(q) => format!("element <{q}>"),
            CoreName::Computed(_) => "element <computed>".into(),
        },
        Core::AttrCtor { name, .. } => match name {
            CoreName::Const(q) => format!("attribute @{q}"),
            CoreName::Computed(_) => "attribute @computed".into(),
        },
        Core::TextCtor(_) => "text-ctor".into(),
        Core::CommentCtor(_) => "comment-ctor".into(),
        Core::PiCtor { .. } => "pi-ctor".into(),
        Core::DocCtor(_) => "document-ctor".into(),
        Core::IndexScan { pattern, .. } => {
            format!("index-scan {pattern} (fallback: navigation)")
        }
        Core::HashJoin { group, .. } => {
            if group.is_some() {
                "hash-group-join".into()
            } else {
                "hash-join".into()
            }
        }
    };
    out.push_str(&label);
    out.push('\n');
    e.for_each_child(&mut |c| render(c, depth + 1, out));
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_compiler::{compile, CompileOptions};

    #[test]
    fn explain_renders_plan_and_stats() {
        let q = compile(
            "for $x in (1, 2) where $x eq 2 return <r>{$x}</r>",
            &CompileOptions::default(),
        )
        .unwrap();
        let text = explain(&q);
        assert!(text.contains("plan:"), "{text}");
        assert!(text.contains("for $"), "{text}");
        assert!(text.contains("element <r>"), "{text}");
        assert!(text.contains("body type:"), "{text}");
    }

    #[test]
    fn explain_shows_join_and_skip_operators() {
        let q = compile(
            "declare variable $a external; declare variable $b external;
             for $x in $a return for $y in $b return if ($x/k = $y/k) then 1 else ()",
            &CompileOptions::default(),
        )
        .unwrap();
        let text = explain(&q);
        assert!(text.contains("hash-join"), "{text}");
        let q = compile("(1 to 10)[5]", &CompileOptions::default()).unwrap();
        assert!(explain(&q).contains("skip-enabled"));
    }
}
