//! # xqr-core — the engine facade
//!
//! The public API of the `xqr` XML query processor: create an [`Engine`],
//! load documents, [`Engine::compile`] queries into [`PreparedQuery`]s,
//! and execute them materialized ([`PreparedQuery::execute`]) or in
//! token-streaming mode ([`PreparedQuery::execute_streaming`]) when the
//! query shape allows — the architecture of the talk's XQRL/BEA engine.
//!
//! ```
//! use xqr_core::Engine;
//! let engine = Engine::new();
//! assert_eq!(engine.query_xml("<a><b>hi</b></a>", "string(//b)").unwrap(), "hi");
//! ```

pub mod engine;
pub mod explain;

pub use engine::{
    bind, contain_panic, context_with_doc, Engine, EngineOptions, PreparedQuery, QueryResult,
};
pub use explain::explain;

// Re-export the layers a downstream user needs to drive the API.
pub use xqr_compiler::{CompileOptions, CompiledQuery, RewriteConfig};
pub use xqr_runtime::{DynamicContext, Item, RuntimeOptions, Sequence, StreamStats};
pub use xqr_store::{DocId, Document, NodeId, NodeRef, Store};
pub use xqr_xdm::{
    AtomicValue, CancelHandle, Error, ErrorCode, GuardUsage, Limits, QName, QueryGuard, Result,
};
