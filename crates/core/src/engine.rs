//! The engine facade: compile once, execute many times, stream when the
//! query allows it.

use crate::explain::explain;
use std::sync::Arc;
use xqr_compiler::{compile, CompileOptions, CompiledQuery};
use xqr_runtime::{
    serialize_sequence, Counters, DynamicContext, Evaluator, ExecState, Item, RuntimeOptions,
    Sequence, StreamMatcher, StreamPattern, StreamStats,
};
use xqr_store::{DocId, NodeRef, Store};
use xqr_tokenstream::ParserTokenIterator;
use xqr_xdm::{NamePool, QName, Result};
use xqr_xmlparse;

/// Stack for the evaluation thread: recursive-descent evaluation over
/// deep queries/documents is stack-hungry in unoptimized builds.
const EVAL_STACK_BYTES: usize = 256 * 1024 * 1024;

/// Engine-level options.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    pub compile: CompileOptions,
    pub runtime: RuntimeOptions,
}

impl EngineOptions {
    /// Options with the optimizer disabled (the materializing baseline
    /// for the benches).
    pub fn unoptimized() -> Self {
        EngineOptions {
            compile: CompileOptions {
                rewrite: xqr_compiler::RewriteConfig::none(),
                ..Default::default()
            },
            runtime: RuntimeOptions::default(),
        }
    }
}

/// The query engine: a document store plus compilation options.
pub struct Engine {
    store: Arc<Store>,
    options: EngineOptions,
}

impl Engine {
    pub fn new() -> Engine {
        Engine::with_options(EngineOptions::default())
    }

    pub fn with_options(mut options: EngineOptions) -> Engine {
        // The evaluation thread has a large stack; allow deep recursion.
        if options.runtime.max_call_depth == RuntimeOptions::default().max_call_depth {
            options.runtime.max_call_depth = 2048;
        }
        Engine { store: Store::new(), options }
    }

    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    pub fn names(&self) -> &Arc<NamePool> {
        self.store.names()
    }

    /// Parse and register a document under a URI (for `fn:doc`).
    pub fn load_document(&self, uri: &str, xml: &str) -> Result<DocId> {
        self.store.load_xml(xml, Some(uri))
    }

    /// Compile a query with the engine's options.
    pub fn compile(&self, query: &str) -> Result<PreparedQuery> {
        let compiled = compile(query, &self.options.compile)?;
        let streamable = StreamPattern::extract(&compiled.module.body);
        // `count(//path)` runs in streaming counting mode: matches are
        // skipped over, never serialized.
        let streamable_count = match &compiled.module.body {
            xqr_compiler::Core::Builtin("count", args) if args.len() == 1 => {
                StreamPattern::extract(&args[0])
            }
            _ => None,
        };
        Ok(PreparedQuery {
            compiled,
            streamable,
            streamable_count,
            runtime: self.options.runtime.clone(),
        })
    }

    /// One-shot convenience: run `query` against `xml` bound as the
    /// context item, returning the serialized result.
    pub fn query_xml(&self, xml: &str, query: &str) -> Result<String> {
        let prepared = self.compile(query)?;
        let doc = self.store.load_xml(xml, None)?;
        let mut ctx = DynamicContext::new();
        ctx.context_item = Some(Item::Node(NodeRef::new(doc, xqr_store::NodeId(0))));
        let result = prepared.execute(self, &ctx)?;
        Ok(result.serialize())
    }

    /// One-shot convenience without input.
    pub fn query(&self, query: &str) -> Result<String> {
        let prepared = self.compile(query)?;
        let result = prepared.execute(self, &DynamicContext::new())?;
        Ok(result.serialize())
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// A compiled, reusable query.
pub struct PreparedQuery {
    compiled: CompiledQuery,
    streamable: Option<StreamPattern>,
    streamable_count: Option<StreamPattern>,
    runtime: RuntimeOptions,
}

impl PreparedQuery {
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// Can this query run in token-streaming mode (E1)?
    pub fn is_streamable(&self) -> bool {
        self.streamable.is_some()
    }

    /// Is this a `count(//path)` query that can stream-count?
    pub fn is_streamable_count(&self) -> bool {
        self.streamable_count.is_some()
    }

    /// Stream-count matches over XML text without materializing anything
    /// (for `count(//path)`-shaped queries). Returns (count, stats).
    pub fn execute_streaming_count(
        &self,
        engine: &Engine,
        xml: &str,
    ) -> Result<(u64, StreamStats)> {
        let pattern = self.streamable_count.clone().ok_or_else(|| {
            xqr_xdm::Error::new(
                xqr_xdm::ErrorCode::Internal,
                "query is not a streamable count; use execute()",
            )
        })?;
        let it = ParserTokenIterator::new(xml, engine.names().clone());
        let mut matcher = StreamMatcher::new(it, pattern);
        let n = matcher.count_matches()?;
        Ok((n, matcher.stats))
    }

    /// Streaming emits *outermost* matches; for child-only patterns this
    /// equals materialized evaluation exactly (matches cannot nest).
    pub fn streaming_is_exact(&self) -> bool {
        self.streamable.as_ref().map(|p| p.is_exact()).unwrap_or(false)
    }

    /// Whether execution needs node identities (E11's analysis).
    pub fn needs_node_ids(&self) -> bool {
        self.compiled.needs_node_ids
    }

    /// Human-readable plan.
    pub fn explain(&self) -> String {
        let mut text = explain(&self.compiled);
        text.push_str(&format!("streamable: {}\n", self.is_streamable()));
        text
    }

    /// Execute against the engine's store, on a dedicated evaluation
    /// thread with a roomy stack.
    pub fn execute(&self, engine: &Engine, ctx: &DynamicContext) -> Result<QueryResult> {
        let store = engine.store.clone();
        let compiled = &self.compiled;
        let runtime = self.runtime.clone();
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("xqr-eval".into())
                .stack_size(EVAL_STACK_BYTES)
                .spawn_scoped(scope, move || -> Result<QueryResult> {
                    let ev = Evaluator::new(&compiled.module, ctx).with_options(runtime);
                    let mut st = ExecState::new(store.clone(), compiled.module.var_count);
                    let items = ev.eval_module(&mut st)?;
                    Ok(QueryResult { items, store, counters: ev.counters })
                })
                .expect("spawn eval thread")
                .join()
                .expect("eval thread panicked")
        })
    }

    /// Execute in token-streaming mode directly over XML text, invoking
    /// `on_match` for each serialized result subtree as soon as its end
    /// tag is parsed. Errors if the query is not streamable.
    pub fn execute_streaming<F: FnMut(&str)>(
        &self,
        engine: &Engine,
        xml: &str,
        mut on_match: F,
    ) -> Result<StreamStats> {
        let pattern = self.streamable.clone().ok_or_else(|| {
            xqr_xdm::Error::new(
                xqr_xdm::ErrorCode::Internal,
                "query is not streamable; use execute()",
            )
        })?;
        let it = ParserTokenIterator::new(xml, engine.names().clone());
        let mut matcher = StreamMatcher::new(it, pattern);
        while let Some(m) = matcher.next_match()? {
            on_match(&m);
        }
        Ok(matcher.stats)
    }
}

/// The materialized result of one execution.
pub struct QueryResult {
    pub items: Sequence,
    pub store: Arc<Store>,
    pub counters: Counters,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serialize per the sequence serialization rules.
    pub fn serialize(&self) -> String {
        serialize_sequence(&self.items, &self.store)
    }

    /// The string values of the items.
    pub fn string_values(&self) -> Vec<String> {
        self.items.iter().map(|i| i.string_value(&self.store)).collect()
    }

    /// Serialize with pretty-printed (indented) node items.
    pub fn serialize_pretty(&self) -> Result<String> {
        let opts = xqr_xmlparse::WriterOptions { indent: Some("  ".into()), declaration: false };
        let mut out = String::new();
        let mut prev_atomic = false;
        for item in &self.items {
            match item {
                Item::Atomic(_) => {
                    if prev_atomic {
                        out.push(' ');
                    }
                    out.push_str(&item.string_value(&self.store));
                    prev_atomic = true;
                }
                Item::Node(n) => {
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    let doc = self.store.doc_of(*n);
                    out.push_str(&doc.serialize_node_opts(n.node, opts.clone())?);
                    prev_atomic = false;
                }
            }
        }
        Ok(out)
    }
}

/// Build a dynamic context bound to a document loaded in an engine.
pub fn context_with_doc(engine: &Engine, uri: &str, xml: &str) -> Result<DynamicContext> {
    let id = engine.load_document(uri, xml)?;
    let mut ctx = DynamicContext::new();
    ctx.context_item = Some(Item::Node(NodeRef::new(id, xqr_store::NodeId(0))));
    ctx.add_document(uri, xml);
    Ok(ctx)
}

/// Bind a variable by local name (test convenience).
pub fn bind(ctx: &mut DynamicContext, name: &str, value: Sequence) {
    ctx.bind_variable(QName::local(name), value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_queries() {
        let engine = Engine::new();
        assert_eq!(engine.query("1 + 1").unwrap(), "2");
        assert_eq!(
            engine.query_xml("<a><b>x</b></a>", "string(/a/b)").unwrap(),
            "x"
        );
    }

    #[test]
    fn prepared_queries_are_reusable() {
        let engine = Engine::new();
        let q = engine.compile("declare variable $n external; $n * 2").unwrap();
        for i in 1..5 {
            let mut ctx = DynamicContext::new();
            bind(&mut ctx, "n", vec![Item::integer(i)]);
            assert_eq!(q.execute(&engine, &ctx).unwrap().serialize(), (i * 2).to_string());
        }
    }

    #[test]
    fn doc_function_through_engine() {
        let engine = Engine::new();
        engine.load_document("bib.xml", "<bib><b/><b/></bib>").unwrap();
        assert_eq!(engine.query(r#"count(doc("bib.xml")//b)"#).unwrap(), "2");
    }

    #[test]
    fn streamable_detection_and_streaming_run() {
        let engine = Engine::new();
        let q = engine.compile("/list/item").unwrap();
        assert!(q.is_streamable());
        let mut hits = Vec::new();
        let stats = q
            .execute_streaming(&engine, "<list><item>1</item><x><item>no</item></x><item>2</item></list>", |m| {
                hits.push(m.to_string())
            })
            .unwrap();
        assert_eq!(hits, vec!["<item>1</item>", "<item>2</item>"]);
        assert_eq!(stats.matches, 2);
        let q2 = engine.compile("1 + 1").unwrap();
        assert!(!q2.is_streamable());
        assert!(q2.execute_streaming(&engine, "<a/>", |_| {}).is_err());
    }

    #[test]
    fn streaming_and_materialized_agree() {
        let engine = Engine::new();
        let xml = "<r><a><b>1</b></a><b>2</b><c><b>3</b></c></r>";
        let q = engine.compile("//b").unwrap();
        let mut streamed = Vec::new();
        q.execute_streaming(&engine, xml, |m| streamed.push(m.to_string())).unwrap();
        let out = engine.query_xml(xml, "//b").unwrap();
        assert_eq!(streamed.join(""), out);
    }

    #[test]
    fn deep_recursion_allowed_on_engine_thread() {
        let engine = Engine::new();
        let out = engine
            .query(
                "declare function local:sum($n as xs:integer) as xs:integer {
                   if ($n le 0) then 0 else $n + local:sum($n - 1)
                 };
                 local:sum(2000)",
            )
            .unwrap();
        assert_eq!(out, "2001000");
    }

    #[test]
    fn explain_is_exposed() {
        let engine = Engine::new();
        let q = engine.compile("//a[3]").unwrap();
        let text = q.explain();
        assert!(text.contains("streamable: false"), "{text}");
        assert!(text.contains("skip-enabled"), "{text}");
    }

    #[test]
    fn counters_surface() {
        let engine = Engine::new();
        let q = engine.compile("<a>{1}</a>").unwrap();
        let r = q.execute(&engine, &DynamicContext::new()).unwrap();
        assert_eq!(r.counters.nodes_constructed.get(), 1);
        assert!(!q.needs_node_ids());
    }
}
