//! The engine facade: compile once, execute many times, stream when the
//! query allows it.

use crate::explain::explain;
use std::sync::Arc;
use xqr_compiler::{compile, CompileOptions, CompiledQuery};
use xqr_runtime::{
    serialize_sequence, Counters, DynamicContext, Evaluator, ExecState, Item, ParallelConfig,
    RuntimeOptions, ScanCache, Sequence, StreamMatcher, StreamPattern, StreamStats,
};
use xqr_store::{DocId, NodeRef, Store};
use xqr_tokenstream::ParserTokenIterator;
use xqr_xdm::{Error, NamePool, QName, QueryGuard, Result};
use xqr_xmlparse;

/// Render a panic payload (the engine's fault-containment boundary turns
/// panics into `err:XQRL0000` instead of aborting the embedder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with panics contained: a panic becomes `err:XQRL0000`.
///
/// Public because panic containment is a boundary concern: every API an
/// embedder calls directly (the service's catalog loads, say) wants the
/// same "a panic is an internal error, not an abort" conversion the
/// engine applies around evaluation.
pub fn contain_panic<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(Error::internal(format!(
            "evaluation panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

/// Stack for the evaluation thread: recursive-descent evaluation over
/// deep queries/documents is stack-hungry in unoptimized builds.
const EVAL_STACK_BYTES: usize = 256 * 1024 * 1024;

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    pub compile: CompileOptions,
    pub runtime: RuntimeOptions,
    /// Build a structural index for every document registered through
    /// [`Engine::load_document`], enabling index-backed access paths.
    /// Transient `query_xml` inputs are never indexed. Default: `true`.
    pub index_documents: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            compile: CompileOptions::default(),
            runtime: RuntimeOptions::default(),
            index_documents: true,
        }
    }
}

impl EngineOptions {
    /// Options with the optimizer disabled (the materializing baseline
    /// for the benches): no rewrites, no access-path selection, no
    /// document indexing.
    pub fn unoptimized() -> Self {
        EngineOptions {
            compile: CompileOptions {
                rewrite: xqr_compiler::RewriteConfig::none(),
                access_paths: false,
                ..Default::default()
            },
            runtime: RuntimeOptions::default(),
            index_documents: false,
        }
    }

    /// A stable fingerprint of everything that affects what
    /// [`Engine::compile`] produces — plan caches key on
    /// `(query text, fingerprint)` so a cached plan is only reused under
    /// options that would have compiled it identically.
    ///
    /// Derived from the `Debug` rendering of the options, which covers
    /// every field (rewrite rule set, typing, memoization, call depth,
    /// limits); any new option field automatically perturbs the print.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}", self.compile).hash(&mut h);
        format!("{:?}", self.runtime).hash(&mut h);
        h.finish()
    }

    /// Set the morsel-parallel join configuration (builder form).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.runtime.parallel = parallel;
        self
    }

    /// Is morsel-parallel join execution enabled?
    pub fn parallel_joins(&self) -> bool {
        self.runtime.parallel.enabled
    }
}

/// The query engine: a document store plus compilation options.
pub struct Engine {
    store: Arc<Store>,
    options: EngineOptions,
}

impl Engine {
    pub fn new() -> Engine {
        Engine::with_options(EngineOptions::default())
    }

    pub fn with_options(mut options: EngineOptions) -> Engine {
        // The evaluation thread has a large stack; allow deep recursion.
        if options.runtime.max_call_depth == RuntimeOptions::default().max_call_depth {
            options.runtime.max_call_depth = 2048;
        }
        Engine {
            store: Store::new(),
            options,
        }
    }

    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    pub fn names(&self) -> &Arc<NamePool> {
        self.store.names()
    }

    /// Parse and register a document under a URI (for `fn:doc`).
    ///
    /// When [`EngineOptions::index_documents`] is set, a structural index
    /// is built and attached so index-eligible queries take index-backed
    /// access paths. The build is guarded by the engine's limits; a build
    /// that trips its budget leaves the document loaded but unindexed —
    /// queries then fall back to navigation.
    pub fn load_document(&self, uri: &str, xml: &str) -> Result<DocId> {
        let id = self.store.load_xml(xml, Some(uri))?;
        if self.options.index_documents {
            let guard = QueryGuard::new(self.options.runtime.limits);
            let _ = xqr_index::ensure_indexed(&self.store, id, &guard);
        }
        Ok(id)
    }

    /// Compile a query with the engine's options.
    pub fn compile(&self, query: &str) -> Result<PreparedQuery> {
        let compiled = compile(query, &self.options.compile)?;
        let streamable = StreamPattern::extract(&compiled.module.body);
        // `count(//path)` runs in streaming counting mode: matches are
        // skipped over, never serialized.
        let streamable_count = match &compiled.module.body {
            xqr_compiler::Core::Builtin("count", args) if args.len() == 1 => {
                StreamPattern::extract(&args[0])
            }
            _ => None,
        };
        Ok(PreparedQuery {
            compiled,
            streamable,
            streamable_count,
            runtime: self.options.runtime.clone(),
        })
    }

    /// One-shot convenience: run `query` against `xml` bound as the
    /// context item, returning the serialized result.
    ///
    /// The input document is removed from the store once the result is
    /// serialized, so repeated one-shot queries run in bounded memory
    /// instead of growing the store by one document per call.
    pub fn query_xml(&self, xml: &str, query: &str) -> Result<String> {
        let prepared = self.compile(query)?;
        let doc = self.store.load_xml(xml, None)?;
        let mut ctx = DynamicContext::new();
        ctx.context_item = Some(Item::Node(NodeRef::new(doc, xqr_store::NodeId(0))));
        // Serialize before removing: result items may reference nodes of
        // the input document.
        let out = prepared
            .execute(self, &ctx)
            .and_then(|result| result.serialize_guarded());
        self.store.remove_document(doc);
        out
    }

    /// One-shot convenience without input.
    pub fn query(&self, query: &str) -> Result<String> {
        let prepared = self.compile(query)?;
        let result = prepared.execute(self, &DynamicContext::new())?;
        result.serialize_guarded()
    }

    /// [`Engine::compile`] wrapped in an [`Arc`], the form plan caches
    /// hand out: a [`PreparedQuery`] is immutable and `Send + Sync`, so
    /// one compilation can serve concurrent executions on many threads.
    pub fn compile_shared(&self, query: &str) -> Result<Arc<PreparedQuery>> {
        self.compile(query).map(Arc::new)
    }

    /// Run many queries over one document in a single pass, sharing
    /// inverted-list scans: the document is loaded (and, when
    /// [`EngineOptions::index_documents`] is set, indexed) **once**, and
    /// queries touching the same QNames reuse each other's path-filtered
    /// lists through a batch-scoped [`ScanCache`] instead of rebuilding
    /// them. Per-query failures are per-slot `Err`s — one bad query does
    /// not fail its batch siblings. The document is removed when the
    /// batch completes, like [`Engine::query_xml`].
    pub fn query_batch(&self, xml: &str, queries: &[&str]) -> Vec<Result<String>> {
        let doc = match self.store.load_xml(xml, None) {
            Ok(doc) => doc,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        if self.options.index_documents {
            let guard = QueryGuard::new(self.options.runtime.limits);
            let _ = xqr_index::ensure_indexed(&self.store, doc, &guard);
        }
        let cache = Arc::new(ScanCache::new());
        let mut ctx = DynamicContext::new();
        ctx.context_item = Some(Item::Node(NodeRef::new(doc, xqr_store::NodeId(0))));
        let out = queries
            .iter()
            .map(|query| {
                let prepared = self.compile(query)?;
                let guard = QueryGuard::new(prepared.runtime.limits);
                prepared
                    .execute_shared_scans(self, &ctx, guard, cache.clone())
                    .and_then(|result| result.serialize_guarded())
            })
            .collect();
        self.store.remove_document(doc);
        out
    }
}

// The service layer shares these across threads; breaking `Send + Sync`
// on any of them is a compile error here, not a runtime surprise.
const _: () = {
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn _assertions() {
        assert_send_sync::<Engine>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<Store>();
        assert_send_sync::<xqr_xdm::CancelHandle>();
        assert_send_sync::<xqr_xdm::QueryGuard>();
        // `QueryResult` carries per-execution `Cell` counters: it moves
        // between threads (worker → caller) but is not shared.
        assert_send::<QueryResult>();
    }
};

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// A compiled, reusable query.
pub struct PreparedQuery {
    compiled: CompiledQuery,
    streamable: Option<StreamPattern>,
    streamable_count: Option<StreamPattern>,
    runtime: RuntimeOptions,
}

impl PreparedQuery {
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// Can this query run in token-streaming mode (E1)?
    pub fn is_streamable(&self) -> bool {
        self.streamable.is_some()
    }

    /// The extracted streamable pattern, if any. The subscription
    /// subsystem compiles these into a combined shared-prefix automaton
    /// so one document pass serves every standing query.
    pub fn stream_pattern(&self) -> Option<&StreamPattern> {
        self.streamable.as_ref()
    }

    /// Is this a `count(//path)` query that can stream-count?
    pub fn is_streamable_count(&self) -> bool {
        self.streamable_count.is_some()
    }

    /// Stream-count matches over XML text without materializing anything
    /// (for `count(//path)`-shaped queries). Returns (count, stats).
    pub fn execute_streaming_count(
        &self,
        engine: &Engine,
        xml: &str,
    ) -> Result<(u64, StreamStats)> {
        let pattern = self.streamable_count.clone().ok_or_else(|| {
            xqr_xdm::Error::new(
                xqr_xdm::ErrorCode::Internal,
                "query is not a streamable count; use execute()",
            )
        })?;
        let guard = QueryGuard::new(self.runtime.limits);
        let it = if guard.is_unlimited() {
            ParserTokenIterator::new(xml, engine.names().clone())
        } else {
            ParserTokenIterator::with_guard(xml, engine.names().clone(), guard.clone())
        };
        let mut matcher = StreamMatcher::new(it, pattern);
        contain_panic(|| {
            let n = matcher.count_matches()?;
            Ok((n, matcher.stats))
        })
    }

    /// Streaming emits *outermost* matches; for child-only patterns this
    /// equals materialized evaluation exactly (matches cannot nest).
    pub fn streaming_is_exact(&self) -> bool {
        self.streamable
            .as_ref()
            .map(|p| p.is_exact())
            .unwrap_or(false)
    }

    /// Whether execution needs node identities (E11's analysis).
    pub fn needs_node_ids(&self) -> bool {
        self.compiled.needs_node_ids
    }

    /// Human-readable plan.
    pub fn explain(&self) -> String {
        let mut text = explain(&self.compiled);
        match &self.streamable {
            Some(p) => text.push_str(&format!(
                "streamable: true (steps: {}, exact: {})\n",
                p.steps.len(),
                p.is_exact()
            )),
            None => text.push_str("streamable: false\n"),
        }
        text.push_str(&format!("limits: {}\n", self.runtime.limits));
        text.push_str(&format!("parallel: {}\n", self.runtime.parallel));
        text
    }

    /// Execute against the engine's store, on a dedicated evaluation
    /// thread with a roomy stack. Budgets come from the engine's
    /// [`RuntimeOptions::limits`]; use [`PreparedQuery::execute_guarded`]
    /// to supply a guard whose [`xqr_xdm::CancelHandle`] another thread
    /// holds.
    pub fn execute(&self, engine: &Engine, ctx: &DynamicContext) -> Result<QueryResult> {
        self.execute_guarded(engine, ctx, QueryGuard::new(self.runtime.limits))
    }

    /// [`PreparedQuery::execute`] with a caller-supplied guard.
    ///
    /// The guard carries the deadline, budgets and cancellation flag for
    /// this one execution; obtain a [`xqr_xdm::CancelHandle`] from it
    /// *before* calling and trigger it from any other thread to stop the
    /// query with `err:XQRL0003`. Panics on the evaluation thread are
    /// contained and surface as `err:XQRL0000` — they never abort the
    /// embedding process.
    pub fn execute_guarded(
        &self,
        engine: &Engine,
        ctx: &DynamicContext,
        guard: QueryGuard,
    ) -> Result<QueryResult> {
        self.execute_inner(engine, ctx, guard, None)
    }

    /// [`PreparedQuery::execute_guarded`] with a batch-scoped scan cache
    /// installed: inverted-list scans this execution builds are shared
    /// with (and reused from) every other query holding the same cache.
    /// The batch APIs ([`Engine::query_batch`], the service's
    /// `run_batch`) call this; standalone executions skip the cache
    /// entirely.
    pub fn execute_shared_scans(
        &self,
        engine: &Engine,
        ctx: &DynamicContext,
        guard: QueryGuard,
        scans: Arc<ScanCache>,
    ) -> Result<QueryResult> {
        self.execute_inner(engine, ctx, guard, Some(scans))
    }

    fn execute_inner(
        &self,
        engine: &Engine,
        ctx: &DynamicContext,
        guard: QueryGuard,
        scans: Option<Arc<ScanCache>>,
    ) -> Result<QueryResult> {
        // A guard that expired (or was cancelled) while the query waited
        // in a run queue must fail here, deterministically — the charge
        // stride never polls the clock on a query this cheap.
        guard.check_startup()?;
        let store = engine.store.clone();
        let compiled = &self.compiled;
        let runtime = self.runtime.clone();
        std::thread::scope(|scope| {
            let handle = std::thread::Builder::new()
                .name("xqr-eval".into())
                .stack_size(EVAL_STACK_BYTES)
                .spawn_scoped(scope, move || -> Result<QueryResult> {
                    let ev = Evaluator::new(&compiled.module, ctx).with_options(runtime);
                    let mut st =
                        ExecState::with_guard(store.clone(), compiled.module.var_count, guard);
                    if let Some(cache) = scans {
                        st = st.with_scan_cache(cache);
                    }
                    let items = ev.eval_module(&mut st);
                    ev.counters.record_guard_usage(&st.guard.usage());
                    // On success the constructed-document ledger
                    // transfers to the result (freed when it drops); on
                    // error or panic, `ExecState::drop` frees it.
                    let items = items?;
                    let mut counters = ev.counters;
                    counters.constructed_docs = st.take_constructed_docs();
                    Ok(QueryResult {
                        items,
                        store,
                        counters,
                        guard: st.guard.clone(),
                    })
                })
                .map_err(|e| Error::internal(format!("failed to spawn eval thread: {e}")))?;
            match handle.join() {
                Ok(result) => result,
                Err(payload) => Err(Error::internal(format!(
                    "evaluation thread panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        })
    }

    /// Execute in token-streaming mode directly over XML text, invoking
    /// `on_match` for each serialized result subtree as soon as its end
    /// tag is parsed. Errors if the query is not streamable.
    pub fn execute_streaming<F: FnMut(&str)>(
        &self,
        engine: &Engine,
        xml: &str,
        mut on_match: F,
    ) -> Result<StreamStats> {
        let pattern = self.streamable.clone().ok_or_else(|| {
            xqr_xdm::Error::new(
                xqr_xdm::ErrorCode::Internal,
                "query is not streamable; use execute()",
            )
        })?;
        let guard = QueryGuard::new(self.runtime.limits);
        let mut matcher = if guard.is_unlimited() {
            let it = ParserTokenIterator::new(xml, engine.names().clone());
            StreamMatcher::new(it, pattern)
        } else {
            let it = ParserTokenIterator::with_guard(xml, engine.names().clone(), guard.clone());
            StreamMatcher::new(it, pattern).with_guard(guard)
        };
        contain_panic(|| {
            while let Some(m) = matcher.next_match()? {
                on_match(&m);
            }
            Ok(matcher.stats)
        })
    }
}

/// The materialized result of one execution.
///
/// Owns the store documents its constructors allocated: node identities
/// created by the query (element/document/attribute/text/comment/PI
/// constructors, plus context documents loaded by `fn:doc`) live exactly
/// as long as the result and are freed from the store when it drops. In
/// a long-lived shared store (the query service) they would otherwise
/// accumulate forever. Extract what you need — usually via
/// [`QueryResult::serialize_guarded`] — before dropping it.
#[derive(Debug)]
pub struct QueryResult {
    pub items: Sequence,
    pub store: Arc<Store>,
    pub counters: Counters,
    /// The execution's guard, kept so serialization can charge the
    /// output-byte budget.
    guard: QueryGuard,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serialize per the sequence serialization rules.
    ///
    /// Delegates to [`QueryResult::serialize_guarded`] so output-byte
    /// budgets can never be bypassed; because this signature cannot
    /// report the failure, it **panics** when the execution's budget is
    /// exceeded. Prefer `serialize_guarded` in any code that configures
    /// [`xqr_xdm::Limits::with_max_output_bytes`].
    #[deprecated(
        since = "0.1.0",
        note = "use serialize_guarded(): this panics when an output-byte budget is exceeded"
    )]
    pub fn serialize(&self) -> String {
        self.serialize_guarded()
            .unwrap_or_else(|e| panic!("QueryResult::serialize: {e}"))
    }

    /// Serialize per the sequence serialization rules, charging the
    /// execution's output-byte budget: errors with `err:XQRL0001` when
    /// the serialized form exceeds the cap set in
    /// [`xqr_xdm::Limits::with_max_output_bytes`].
    pub fn serialize_guarded(&self) -> Result<String> {
        let out = serialize_sequence(&self.items, &self.store);
        self.guard.note_output_bytes(out.len() as u64)?;
        Ok(out)
    }

    /// The string values of the items.
    pub fn string_values(&self) -> Vec<String> {
        self.items
            .iter()
            .map(|i| i.string_value(&self.store))
            .collect()
    }

    /// Serialize with pretty-printed (indented) node items.
    pub fn serialize_pretty(&self) -> Result<String> {
        let opts = xqr_xmlparse::WriterOptions {
            indent: Some("  ".into()),
            declaration: false,
        };
        let mut out = String::new();
        let mut prev_atomic = false;
        for item in &self.items {
            match item {
                Item::Atomic(_) => {
                    if prev_atomic {
                        out.push(' ');
                    }
                    out.push_str(&item.string_value(&self.store));
                    prev_atomic = true;
                }
                Item::Node(n) => {
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    let doc = self.store.doc_of(*n);
                    out.push_str(&doc.serialize_node_opts(n.node, opts.clone())?);
                    prev_atomic = false;
                }
            }
        }
        Ok(out)
    }
}

impl Drop for QueryResult {
    fn drop(&mut self) {
        // Constructed documents live exactly as long as their result.
        // Each removal is panic-contained: drops can run mid-unwind,
        // where a second panic (injected faults target the removal
        // path) would abort the process. A removal that panicked is
        // parked on the store's orphan list and retried by a later
        // sweep — a bounded, recoverable leak, never a permanent one.
        for id in std::mem::take(&mut self.counters.constructed_docs) {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.store.remove_document(id)
            }))
            .is_err()
            {
                self.store.park_orphan(id);
            }
        }
    }
}

/// Build a dynamic context bound to a document loaded in an engine.
pub fn context_with_doc(engine: &Engine, uri: &str, xml: &str) -> Result<DynamicContext> {
    let id = engine.load_document(uri, xml)?;
    let mut ctx = DynamicContext::new();
    ctx.context_item = Some(Item::Node(NodeRef::new(id, xqr_store::NodeId(0))));
    ctx.add_document(uri, xml);
    Ok(ctx)
}

/// Bind a variable by local name (test convenience).
pub fn bind(ctx: &mut DynamicContext, name: &str, value: Sequence) {
    ctx.bind_variable(QName::local(name), value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_queries() {
        let engine = Engine::new();
        assert_eq!(engine.query("1 + 1").unwrap(), "2");
        assert_eq!(
            engine.query_xml("<a><b>x</b></a>", "string(/a/b)").unwrap(),
            "x"
        );
    }

    #[test]
    fn prepared_queries_are_reusable() {
        let engine = Engine::new();
        let q = engine
            .compile("declare variable $n external; $n * 2")
            .unwrap();
        for i in 1..5 {
            let mut ctx = DynamicContext::new();
            bind(&mut ctx, "n", vec![Item::integer(i)]);
            assert_eq!(
                q.execute(&engine, &ctx)
                    .unwrap()
                    .serialize_guarded()
                    .unwrap(),
                (i * 2).to_string()
            );
        }
    }

    #[test]
    fn one_shot_queries_run_in_bounded_memory() {
        // Regression: `query_xml` used to load the input document into
        // the shared store on every call and never remove it.
        let engine = Engine::new();
        for i in 0..1000 {
            let xml = format!("<a><b>{i}</b></a>");
            assert_eq!(
                engine.query_xml(&xml, "string(/a/b)").unwrap(),
                i.to_string()
            );
        }
        assert_eq!(engine.store().doc_count(), 0);
        // The input document is removed even when execution fails.
        assert!(engine.query_xml("<a/>", "1 idiv 0").is_err());
        assert_eq!(engine.store().doc_count(), 0);
    }

    #[test]
    fn one_prepared_plan_shared_across_eight_threads() {
        let engine = Engine::new();
        engine
            .load_document(
                "bib.xml",
                "<bib><book><price>7</price></book><book><price>35</price></book></bib>",
            )
            .unwrap();
        let q = engine
            .compile(r#"sum(for $p in doc("bib.xml")//price return xs:integer($p))"#)
            .unwrap();
        let q = std::sync::Arc::new(q);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let q = q.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        (0..20)
                            .map(|_| {
                                q.execute(engine, &DynamicContext::new())
                                    .unwrap()
                                    .serialize_guarded()
                                    .unwrap()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for out in h.join().unwrap() {
                    assert_eq!(out, "42");
                }
            }
        });
    }

    #[test]
    fn doc_function_through_engine() {
        let engine = Engine::new();
        engine
            .load_document("bib.xml", "<bib><b/><b/></bib>")
            .unwrap();
        assert_eq!(engine.query(r#"count(doc("bib.xml")//b)"#).unwrap(), "2");
    }

    #[test]
    fn streamable_detection_and_streaming_run() {
        let engine = Engine::new();
        let q = engine.compile("/list/item").unwrap();
        assert!(q.is_streamable());
        let mut hits = Vec::new();
        let stats = q
            .execute_streaming(
                &engine,
                "<list><item>1</item><x><item>no</item></x><item>2</item></list>",
                |m| hits.push(m.to_string()),
            )
            .unwrap();
        assert_eq!(hits, vec!["<item>1</item>", "<item>2</item>"]);
        assert_eq!(stats.matches, 2);
        let q2 = engine.compile("1 + 1").unwrap();
        assert!(!q2.is_streamable());
        assert!(q2.execute_streaming(&engine, "<a/>", |_| {}).is_err());
    }

    #[test]
    fn streaming_and_materialized_agree() {
        let engine = Engine::new();
        let xml = "<r><a><b>1</b></a><b>2</b><c><b>3</b></c></r>";
        let q = engine.compile("//b").unwrap();
        let mut streamed = Vec::new();
        q.execute_streaming(&engine, xml, |m| streamed.push(m.to_string()))
            .unwrap();
        let out = engine.query_xml(xml, "//b").unwrap();
        assert_eq!(streamed.join(""), out);
    }

    #[test]
    fn deep_recursion_allowed_on_engine_thread() {
        let engine = Engine::new();
        let out = engine
            .query(
                "declare function local:sum($n as xs:integer) as xs:integer {
                   if ($n le 0) then 0 else $n + local:sum($n - 1)
                 };
                 local:sum(2000)",
            )
            .unwrap();
        assert_eq!(out, "2001000");
    }

    #[test]
    fn explain_is_exposed() {
        let engine = Engine::new();
        let q = engine.compile("//a[3]").unwrap();
        let text = q.explain();
        assert!(text.contains("streamable: false"), "{text}");
        assert!(text.contains("skip-enabled"), "{text}");
    }

    #[test]
    fn injected_panic_becomes_internal_error() {
        let engine = Engine::with_options(EngineOptions {
            runtime: RuntimeOptions {
                debug_inject_panic: true,
                ..Default::default()
            },
            ..Default::default()
        });
        let err = engine.query("1 + 1").unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Internal);
        assert!(err.to_string().contains("panicked"), "{err}");
        // The process survived; a normal engine still works.
        assert_eq!(Engine::new().query("2 + 2").unwrap(), "4");
    }

    #[test]
    fn explain_reports_limits() {
        let engine = Engine::new();
        let q = engine.compile("1").unwrap();
        assert!(q.explain().contains("limits: unlimited"), "{}", q.explain());
        let engine = Engine::with_options(EngineOptions {
            runtime: RuntimeOptions {
                limits: xqr_xdm::Limits::unlimited().with_max_items(10),
                ..Default::default()
            },
            ..Default::default()
        });
        let q = engine.compile("1").unwrap();
        assert!(q.explain().contains("items: 10"), "{}", q.explain());
    }

    #[test]
    fn cancel_handle_stops_execution_from_another_thread() {
        use xqr_xdm::{ErrorCode, Limits, QueryGuard};
        let engine = Engine::new();
        // Unbounded-enough work that only cancellation can stop it.
        let q = engine.compile("sum(1 to 10000000000)").unwrap();
        let guard = QueryGuard::new(Limits::unlimited());
        let handle = guard.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            handle.cancel();
        });
        let err = q
            .execute_guarded(&engine, &DynamicContext::new(), guard)
            .unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.code, ErrorCode::Cancelled);
    }

    #[test]
    fn explain_reports_parallel_config() {
        let engine = Engine::new();
        let q = engine.compile("1").unwrap();
        assert!(
            q.explain().contains("parallel: on (morsels: auto"),
            "{}",
            q.explain()
        );
        let engine = Engine::with_options(
            EngineOptions::default().with_parallel(xqr_runtime::ParallelConfig::off()),
        );
        assert!(!engine.options().parallel_joins());
        let q = engine.compile("1").unwrap();
        assert!(q.explain().contains("parallel: off"), "{}", q.explain());
    }

    #[test]
    fn parallel_config_perturbs_fingerprint() {
        let on = EngineOptions::default();
        let off = EngineOptions::default().with_parallel(xqr_runtime::ParallelConfig::off());
        assert_ne!(on.fingerprint(), off.fingerprint());
    }

    #[test]
    fn query_batch_shares_one_document() {
        let engine = Engine::new();
        let xml = "<r><a><b>1</b></a><a><b>2</b></a><c>9</c></r>";
        let out = engine.query_batch(xml, &["count(//a/b)", "string(/r/c)", "count(//a)"]);
        let out: Vec<String> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, ["2", "9", "2"]);
        // The batch document is transient, exactly like query_xml's.
        assert_eq!(engine.store().doc_count(), 0);
    }

    #[test]
    fn query_batch_isolates_per_query_failures() {
        let engine = Engine::new();
        let out = engine.query_batch("<a/>", &["1 idiv 0", "((", "2 + 2"]);
        assert!(out[0].is_err());
        assert!(out[1].is_err());
        assert_eq!(out[2].as_deref().unwrap(), "4");
        assert_eq!(engine.store().doc_count(), 0);
    }

    #[test]
    fn counters_surface() {
        let engine = Engine::new();
        let q = engine.compile("<a>{1}</a>").unwrap();
        let r = q.execute(&engine, &DynamicContext::new()).unwrap();
        assert_eq!(r.counters.nodes_constructed.get(), 1);
        assert!(!q.needs_node_ids());
    }
}
