//! Generative fuzzing of the parser/printer pair: random query *text*
//! assembled from grammar templates must hit a print→parse→print
//! fixpoint, and randomly generated well-formed expressions must parse.

use proptest::prelude::*;
use xqr_xqparser::{parse_query, print_module};

/// Strategy: small closed XQuery expressions composed recursively from
/// templates. Everything generated is grammatically valid by
/// construction.
fn arb_query() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0i64..1000).prop_map(|i| i.to_string()),
        (0u32..100, 1u32..100).prop_map(|(a, b)| format!("{a}.{b}")),
        "[a-z]{1,6}".prop_map(|s| format!("\"{s}\"")),
        Just("()".to_string()),
        Just(".".to_string()).prop_map(|_| "(1, 2)".to_string()),
    ];
    atom.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("div"),
                    Just("idiv"),
                    Just("mod")
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("eq"),
                    Just("="),
                    Just("lt"),
                    Just("<="),
                    Just("and"),
                    Just("or")
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(if ({a}) then {b} else ())")),
            ("[a-z]{1,4}", inner.clone(), inner.clone())
                .prop_map(|(v, src, body)| format!("(for ${v} in {src} return {body})")),
            ("[a-z]{1,4}", inner.clone(), inner.clone())
                .prop_map(|(v, val, body)| format!("(let ${v} := {val} return ({body}))")),
            inner.clone().prop_map(|a| format!("count(({a}))")),
            inner.clone().prop_map(|a| format!("string(({a}))")),
            (inner.clone(), 1usize..4).prop_map(|(a, k)| format!("(({a}))[{k}]")),
            ("[a-z]{1,5}", inner.clone())
                .prop_map(|(tag, c)| format!("<{tag} a=\"{{{c}}}\">{{{c}}}</{tag}>")),
            inner
                .clone()
                .prop_map(|a| format!("(some $q in ({a}) satisfies $q eq 1)")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_queries_parse(q in arb_query()) {
        parse_query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
    }

    #[test]
    fn print_parse_print_fixpoint(q in arb_query()) {
        let m1 = parse_query(&q).unwrap();
        let p1 = print_module(&m1);
        let m2 = parse_query(&p1).unwrap_or_else(|e| panic!("printed {p1:?}: {e}"));
        let p2 = print_module(&m2);
        prop_assert_eq!(p1, p2, "source: {}", q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_garbage(s in ".{0,80}") {
        // Any input: parse returns Ok or Err, never panics.
        let _ = parse_query(&s);
    }

    #[test]
    fn parser_never_panics_on_query_like_garbage(s in "[a-z0-9$/(){}\\[\\]<>\"'@:=+*,. -]{0,60}") {
        let _ = parse_query(&s);
    }
}
