//! AST → query text. The inverse of the parser, used for plan debugging
//! ("lineage through all those representations", per the talk) and for
//! the print→parse→print fixpoint property test.
//!
//! Output favours explicitness over beauty: every operand is
//! parenthesized where precedence could bite, string literals use
//! doubled-quote escaping, and constructor content escapes `{`/`}`/`<`.

use crate::ast::*;
use xqr_xdm::AtomicValue;

/// Render a whole module (prolog + body).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    if m.prolog.boundary_space_preserve {
        out.push_str("declare boundary-space preserve;\n");
    }
    for (prefix, uri) in &m.prolog.namespaces {
        out.push_str(&format!(
            "declare namespace {prefix} = \"{}\";\n",
            escape_str(uri)
        ));
    }
    if let Some(uri) = &m.prolog.default_element_ns {
        out.push_str(&format!(
            "declare default element namespace \"{}\";\n",
            escape_str(uri)
        ));
    }
    if let Some(uri) = &m.prolog.default_function_ns {
        out.push_str(&format!(
            "declare default function namespace \"{}\";\n",
            escape_str(uri)
        ));
    }
    for v in &m.prolog.variables {
        out.push_str("declare variable $");
        out.push_str(&v.name.lexical());
        if let Some(ty) = &v.ty {
            out.push_str(&format!(" as {ty}"));
        }
        match &v.value {
            Some(e) => out.push_str(&format!(" := {}", print_expr(e))),
            None => out.push_str(" external"),
        }
        out.push_str(";\n");
    }
    for f in &m.prolog.functions {
        out.push_str("declare function ");
        out.push_str(&f.name.lexical());
        out.push('(');
        for (i, (p, ty)) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('$');
            out.push_str(&p.lexical());
            if let Some(t) = ty {
                out.push_str(&format!(" as {t}"));
            }
        }
        out.push(')');
        if let Some(t) = &f.return_type {
            out.push_str(&format!(" as {t}"));
        }
        match &f.body {
            Some(b) => out.push_str(&format!(" {{ {} }};\n", print_expr(b))),
            None => out.push_str(" external;\n"),
        }
    }
    out.push_str(&print_expr(&m.body));
    out
}

fn escape_str(s: &str) -> String {
    s.replace('"', "\"\"").replace('&', "&amp;")
}

fn axis_prefix(axis: AxisName) -> &'static str {
    match axis {
        AxisName::Child => "child::",
        AxisName::Descendant => "descendant::",
        AxisName::DescendantOrSelf => "descendant-or-self::",
        AxisName::Attribute => "attribute::",
        AxisName::SelfAxis => "self::",
        AxisName::Parent => "parent::",
        AxisName::Ancestor => "ancestor::",
        AxisName::AncestorOrSelf => "ancestor-or-self::",
        AxisName::FollowingSibling => "following-sibling::",
        AxisName::PrecedingSibling => "preceding-sibling::",
        AxisName::Following => "following::",
        AxisName::Preceding => "preceding::",
        AxisName::Namespace => "namespace::",
    }
}

fn print_test(t: &NodeTest) -> String {
    match t {
        NodeTest::Name(q) => q.lexical(),
        NodeTest::AnyName => "*".into(),
        NodeTest::NamespaceWildcard(_uri) => {
            // The prefix is gone after resolution; print `*` (matches a
            // superset — acceptable for debugging output, flagged here).
            "*".into()
        }
        NodeTest::LocalWildcard(local) => format!("*:{local}"),
        NodeTest::AnyKind => "node()".into(),
        NodeTest::Text => "text()".into(),
        NodeTest::Comment => "comment()".into(),
        NodeTest::Pi(Some(t)) => format!("processing-instruction(\"{t}\")"),
        NodeTest::Pi(None) => "processing-instruction()".into(),
        NodeTest::Document => "document-node()".into(),
        NodeTest::Element(Some(q)) => format!("element({})", q.lexical()),
        NodeTest::Element(None) => "element()".into(),
        NodeTest::Attribute(Some(q)) => format!("attribute({})", q.lexical()),
        NodeTest::Attribute(None) => "attribute()".into(),
    }
}

fn print_literal(v: &AtomicValue) -> String {
    match v {
        AtomicValue::String(s) => format!("\"{}\"", s.replace('"', "\"\"")),
        AtomicValue::Integer(i) => i.to_string(),
        AtomicValue::Decimal(d) => {
            let s = d.to_string();
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        AtomicValue::Double(d) => format!("{d:e}"),
        other => format!("\"{}\"", other.string_value().replace('"', "\"\"")),
    }
}

/// Render one expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v, _) => print_literal(v),
        Expr::VarRef(q, _) => format!("${}", q.lexical()),
        Expr::ContextItem(_) => ".".into(),
        Expr::Root(_) => "(/)".into(),
        Expr::Sequence(items, _) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("({})", inner.join(", "))
        }
        Expr::Range(a, b, _) => format!("({} to {})", print_expr(a), print_expr(b)),
        Expr::Arith(op, a, b, _) => {
            format!("({} {} {})", print_expr(a), op.symbol(), print_expr(b))
        }
        Expr::Neg(a, _) => format!("(-{})", print_expr(a)),
        Expr::Comparison(op, a, b, _) => {
            format!("({} {} {})", print_expr(a), op.symbol(), print_expr(b))
        }
        Expr::And(a, b, _) => format!("({} and {})", print_expr(a), print_expr(b)),
        Expr::Or(a, b, _) => format!("({} or {})", print_expr(a), print_expr(b)),
        Expr::Union(a, b, _) => format!("({} union {})", print_expr(a), print_expr(b)),
        Expr::Intersect(a, b, _) => {
            format!("({} intersect {})", print_expr(a), print_expr(b))
        }
        Expr::Except(a, b, _) => format!("({} except {})", print_expr(a), print_expr(b)),
        Expr::Path(lhs, rhs, _) => format!("{}/{}", print_expr(lhs), print_expr(rhs)),
        Expr::AxisStep {
            axis,
            test,
            predicates,
            ..
        } => {
            let mut s = format!("{}{}", axis_prefix(*axis), print_test(test));
            for p in predicates {
                s.push_str(&format!("[{}]", print_expr(p)));
            }
            s
        }
        Expr::Filter(inner, predicates, _) => {
            let mut s = format!("({})", print_expr(inner));
            for p in predicates {
                s.push_str(&format!("[{}]", print_expr(p)));
            }
            s
        }
        Expr::FunctionCall(name, args, _) => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{}({})", name.lexical(), args.join(", "))
        }
        Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            stable,
            return_clause,
            ..
        } => {
            let mut s = String::new();
            for c in clauses {
                match c {
                    FlworClause::For {
                        var,
                        position,
                        ty,
                        source,
                    } => {
                        s.push_str(&format!("for ${}", var.lexical()));
                        if let Some(t) = ty {
                            s.push_str(&format!(" as {t}"));
                        }
                        if let Some(p) = position {
                            s.push_str(&format!(" at ${}", p.lexical()));
                        }
                        s.push_str(&format!(" in {} ", print_expr(source)));
                    }
                    FlworClause::Let { var, ty, value } => {
                        s.push_str(&format!("let ${}", var.lexical()));
                        if let Some(t) = ty {
                            s.push_str(&format!(" as {t}"));
                        }
                        s.push_str(&format!(" := {} ", print_expr(value)));
                    }
                }
            }
            if let Some(w) = where_clause {
                s.push_str(&format!("where {} ", print_expr(w)));
            }
            if !order_by.is_empty() {
                if *stable {
                    s.push_str("stable ");
                }
                s.push_str("order by ");
                for (i, spec) in order_by.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&print_expr(&spec.key));
                    if spec.descending {
                        s.push_str(" descending");
                    }
                    match spec.empty_least {
                        Some(true) => s.push_str(" empty least"),
                        Some(false) => s.push_str(" empty greatest"),
                        None => {}
                    }
                }
                s.push(' ');
            }
            s.push_str(&format!("return {}", print_expr(return_clause)));
            format!("({s})")
        }
        Expr::Quantified {
            every,
            bindings,
            satisfies,
            ..
        } => {
            let kw = if *every { "every" } else { "some" };
            let binds: Vec<String> = bindings
                .iter()
                .map(|(v, ty, src)| {
                    let t = ty.as_ref().map(|t| format!(" as {t}")).unwrap_or_default();
                    format!("${}{} in {}", v.lexical(), t, print_expr(src))
                })
                .collect();
            format!(
                "({kw} {} satisfies {})",
                binds.join(", "),
                print_expr(satisfies)
            )
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => format!(
            "(if ({}) then {} else {})",
            print_expr(cond),
            print_expr(then_branch),
            print_expr(else_branch)
        ),
        Expr::Typeswitch {
            operand,
            cases,
            default_var,
            default_body,
            ..
        } => {
            let mut s = format!("(typeswitch ({})", print_expr(operand));
            for c in cases {
                s.push_str(" case ");
                if let Some(v) = &c.var {
                    s.push_str(&format!("${} as ", v.lexical()));
                }
                s.push_str(&format!("{} return {}", c.ty, print_expr(&c.body)));
            }
            s.push_str(" default ");
            if let Some(v) = default_var {
                s.push_str(&format!("${} ", v.lexical()));
            }
            s.push_str(&format!("return {})", print_expr(default_body)));
            s
        }
        Expr::InstanceOf(a, ty, _) => format!("({} instance of {ty})", print_expr(a)),
        Expr::CastAs(a, ty, _) => format!("({} cast as {})", print_expr(a), single_ty(ty)),
        Expr::CastableAs(a, ty, _) => {
            format!("({} castable as {})", print_expr(a), single_ty(ty))
        }
        Expr::TreatAs(a, ty, _) => format!("({} treat as {ty})", print_expr(a)),
        Expr::DirectElement {
            name,
            attributes,
            namespaces,
            content,
            ..
        } => {
            let mut s = format!("<{}", name.lexical());
            for (prefix, uri) in namespaces {
                match prefix {
                    Some(p) => s.push_str(&format!(" xmlns:{p}=\"{}\"", escape_attr(uri))),
                    None => s.push_str(&format!(" xmlns=\"{}\"", escape_attr(uri))),
                }
            }
            for (aname, parts) in attributes {
                s.push_str(&format!(" {}=\"", aname.lexical()));
                for part in parts {
                    match part {
                        AttrPart::Text(t) => s.push_str(&escape_attr(t)),
                        AttrPart::Enclosed(e) => s.push_str(&format!("{{{}}}", print_expr(e))),
                    }
                }
                s.push('"');
            }
            if content.is_empty() {
                s.push_str("/>");
            } else {
                s.push('>');
                for c in content {
                    match c {
                        DirContent::Text(t) => s.push_str(&escape_content(t)),
                        DirContent::Enclosed(e) => s.push_str(&format!("{{{}}}", print_expr(e))),
                        DirContent::Child(e) => s.push_str(&print_expr(e)),
                    }
                }
                s.push_str(&format!("</{}>", name.lexical()));
            }
            s
        }
        Expr::ComputedElement { name, content, .. } => {
            computed("element", name, content.as_deref())
        }
        Expr::ComputedAttribute { name, content, .. } => {
            computed("attribute", name, content.as_deref())
        }
        Expr::ComputedText(e, _) => format!("text {{ {} }}", print_expr(e)),
        Expr::ComputedComment(e, _) => format!("comment {{ {} }}", print_expr(e)),
        Expr::ComputedPi {
            target, content, ..
        } => computed("processing-instruction", target, content.as_deref()),
        Expr::ComputedDocument(e, _) => format!("document {{ {} }}", print_expr(e)),
        Expr::Ordered(e, _) => format!("ordered {{ {} }}", print_expr(e)),
        Expr::Unordered(e, _) => format!("unordered {{ {} }}", print_expr(e)),
    }
}

fn single_ty(ty: &xqr_xdm::SequenceType) -> String {
    ty.to_string()
}

fn computed(kw: &str, name: &NameOrExpr, content: Option<&Expr>) -> String {
    let n = match name {
        NameOrExpr::Name(q) => q.lexical(),
        NameOrExpr::Expr(e) => format!("{{ {} }}", print_expr(e)),
    };
    match content {
        Some(c) => format!("{kw} {n} {{ {} }}", print_expr(c)),
        None => format!("{kw} {n} {{ }}"),
    }
}

fn escape_attr(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('"', "&quot;")
        .replace('<', "&lt;")
        .replace('{', "{{")
        .replace('}', "}}")
}

fn escape_content(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('{', "{{")
        .replace('}', "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// print → parse → print must be a fixpoint (positions differ, text
    /// must not).
    fn fixpoint(query: &str) {
        let m1 = parse_query(query).unwrap_or_else(|e| panic!("{query}: {e}"));
        let p1 = print_module(&m1);
        let m2 = parse_query(&p1).unwrap_or_else(|e| panic!("printed {p1:?}: {e}"));
        let p2 = print_module(&m2);
        assert_eq!(p1, p2, "printer not a fixpoint for {query:?}");
    }

    #[test]
    fn expressions_roundtrip() {
        for q in [
            "1 + 2 * 3",
            "(1, 2, 3)[2]",
            "-5.5",
            "1 to 10",
            "\"it''s\"",
            "$x/a/b[1]/@c",
            "//book[author/last eq \"Laing\"]",
            "for $x at $i in (1, 2) where $x gt 1 order by $x descending empty least return $x + $i",
            "some $x in (1, 2), $y in (3, 4) satisfies $x eq $y",
            "if (1 lt 2) then \"y\" else \"n\"",
            "typeswitch (5) case $v as xs:integer return $v default return 0",
            "5 instance of xs:integer?",
            "\"5\" cast as xs:integer",
            "$x treat as node()+",
            "count((1, 2)) + sum((3, 4))",
            "$a union $b intersect $c",
            "let $x := <a b=\"{1+1}\">t{2}u</a> return $x",
            "element foo { attribute bar { 1 }, \"x\" }",
            "text { \"hi\" }",
            "unordered { //a }",
            "$x/ancestor::*[1]",
            "/child::a/descendant-or-self::node()/child::b",
        ] {
            fixpoint(q);
        }
    }

    #[test]
    fn boundary_space_roundtrips() {
        fixpoint("declare boundary-space preserve; <a> <b/> </a>");
    }

    #[test]
    fn modules_roundtrip() {
        fixpoint(
            "declare namespace m = \"urn:m\";
             declare variable $k as xs:integer := 5;
             declare variable $ext external;
             declare function m:f($x as xs:integer) as xs:integer { $x + $k };
             m:f(2) + count($ext)",
        );
    }

    #[test]
    fn printed_queries_evaluate_identically() {
        // A few closed queries: parse→print→parse→normalize must be
        // semantically stable (checked structurally via second print).
        for q in [
            "sum(for $x in (1 to 5) return $x * $x)",
            "string-join((\"a\", \"b\"), \"-\")",
            "<r>{ for $i in (1, 2) return <i v=\"{$i}\"/> }</r>",
        ] {
            fixpoint(q);
        }
    }

    #[test]
    fn escaping_in_printed_constructors() {
        fixpoint("<a>x {{ y }} &amp; z</a>");
        fixpoint("<a b=\"q&quot;w\"/>");
        fixpoint("<a>&lt;not-a-tag&gt;</a>");
    }
}
