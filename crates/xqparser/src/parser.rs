//! Recursive-descent XQuery parser.
//!
//! Character-level (no separate token stream): XQuery's lexical grammar
//! is mode-dependent (direct constructors embed XML syntax, `*` is an
//! operator after an operand and a wildcard at operand position), which
//! a hand-rolled descent handles naturally. Namespace prefixes are
//! resolved *during* parsing against the prolog and any in-scope
//! constructor `xmlns` attributes — the talk's "nested scopes" slide is
//! a parser concern here, not a runtime one.

use crate::ast::*;
use xqr_xdm::{
    AtomicType, AtomicValue, Decimal, Error, ErrorCode, ItemType, NameTest, NodeKind, Occurrence,
    QName, Result, SequenceType,
};

pub const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";
pub const XDT_NS: &str = "http://www.w3.org/2003/11/xpath-datatypes";
pub const FN_NS: &str = "http://www.w3.org/2003/11/xpath-functions";
pub const LOCAL_NS: &str = "http://www.w3.org/2003/11/xquery-local-functions";
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// Stack reserved for the parse thread. Recursive descent over ~17
/// productions per nesting level is stack-hungry in unoptimized builds;
/// parsing on a dedicated thread makes the depth guard ([`MAX_DEPTH`])
/// the only nesting limit, independent of the caller's stack.
const PARSER_STACK_BYTES: usize = 32 * 1024 * 1024;

/// Parse a complete query (prolog + body).
pub fn parse_query(src: &str) -> Result<Module> {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("xqr-parse".into())
            .stack_size(PARSER_STACK_BYTES)
            .spawn_scoped(scope, || {
                let mut p = Parser::new(src);
                p.parse_module()
            })
            .expect("spawn parser thread")
            .join()
            .expect("parser thread panicked")
    })
}

/// Parse a standalone expression (no prolog) — convenient in tests.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let module = parse_query(src)?;
    Ok(module.body)
}

struct NsBinding {
    prefix: String,
    uri: String,
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    ns: Vec<NsBinding>,
    /// Stack of default element namespaces (constructor-scoped).
    default_elem_ns: Vec<Option<String>>,
    default_fn_ns: String,
    /// Boundary-space policy for direct constructors.
    preserve_boundary_space: bool,
    /// Expression nesting depth (guards against stack exhaustion on
    /// adversarial input).
    depth: usize,
}

/// Maximum expression nesting depth before the parser reports a limit
/// error instead of risking stack exhaustion.
pub const MAX_DEPTH: usize = 200;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let ns = vec![
            NsBinding {
                prefix: "xml".into(),
                uri: XML_NS.into(),
            },
            NsBinding {
                prefix: "xs".into(),
                uri: XS_NS.into(),
            },
            NsBinding {
                prefix: "xsd".into(),
                uri: XS_NS.into(),
            },
            NsBinding {
                prefix: "xdt".into(),
                uri: XDT_NS.into(),
            },
            NsBinding {
                prefix: "fn".into(),
                uri: FN_NS.into(),
            },
            NsBinding {
                prefix: "xf".into(),
                uri: FN_NS.into(),
            },
            NsBinding {
                prefix: "local".into(),
                uri: LOCAL_NS.into(),
            },
        ];
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            ns,
            default_elem_ns: vec![None],
            default_fn_ns: FN_NS.into(),
            preserve_boundary_space: false,
            depth: 0,
        }
    }

    // ---- low-level cursor -------------------------------------------------

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::syntax(msg.into()).at(self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    /// Skip whitespace and (nested) `(: ... :)` comments.
    fn ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.starts_with("(:") {
                let mut depth = 0usize;
                while self.pos < self.bytes.len() {
                    if self.starts_with("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.starts_with(":)") {
                        depth -= 1;
                        self.pos += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return;
            }
        }
    }

    /// Consume a literal symbol after skipping whitespace.
    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    /// Consume a keyword (word-boundary checked).
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.ws();
        if self.starts_with(kw) {
            let after = self.pos + kw.len();
            let boundary = match self.bytes.get(after) {
                None => true,
                Some(&b) => !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'),
            };
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    /// Peek a keyword without consuming.
    fn peek_kw(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_kw(kw);
        self.pos = save;
        ok
    }

    /// Peek keyword sequence like ["for", "$"].
    fn peek_kw_then(&mut self, kw: &str, sym: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_kw(kw) && self.eat(sym);
        self.pos = save;
        ok
    }

    fn peek_two_kw(&mut self, kw1: &str, kw2: &str) -> bool {
        let save = self.pos;
        let ok = self.eat_kw(kw1) && self.eat_kw(kw2);
        self.pos = save;
        ok
    }

    fn at_eof(&mut self) -> bool {
        self.ws();
        self.pos >= self.bytes.len()
    }

    // ---- names ------------------------------------------------------------

    fn parse_ncname(&mut self) -> Result<String> {
        self.ws();
        let start = self.pos;
        let mut chars = self.src[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if xqr_xmlparse::is_name_start(c) => {}
            _ => return Err(self.err("expected a name")),
        }
        let mut end = self.src.len();
        for (i, c) in chars {
            if !xqr_xmlparse::is_name_char(c) {
                end = start + i;
                break;
            }
        }
        self.pos = end;
        Ok(self.src[start..end].to_string())
    }

    /// `prefix:local` or `local`. Returns (prefix, local). The `:` is
    /// only consumed when a name follows — `axis::`, `prefix:*` and
    /// `let $x := …` keep their colons.
    fn parse_raw_qname(&mut self) -> Result<(Option<String>, String)> {
        let first = self.parse_ncname()?;
        let name_follows = self.peek() == Some(b':')
            && self
                .peek_at(1)
                .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b >= 0x80);
        if name_follows {
            self.pos += 1;
            let local = self.parse_ncname_nows()?;
            Ok((Some(first), local))
        } else {
            Ok((None, first))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}")))
        }
    }

    fn parse_ncname_nows(&mut self) -> Result<String> {
        let start = self.pos;
        let mut chars = self.src[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if xqr_xmlparse::is_name_start(c) => {}
            _ => return Err(self.err("expected a name after ':'")),
        }
        let mut end = self.src.len();
        for (i, c) in chars {
            if !xqr_xmlparse::is_name_char(c) {
                end = start + i;
                break;
            }
        }
        self.pos = end;
        Ok(self.src[start..end].to_string())
    }

    fn lookup_prefix(&self, prefix: &str) -> Result<String> {
        for b in self.ns.iter().rev() {
            if b.prefix == prefix {
                return Ok(b.uri.clone());
            }
        }
        Err(Error::new(
            ErrorCode::UnboundPrefix,
            format!("unbound prefix {prefix:?}"),
        )
        .at(self.pos))
    }

    /// Resolve a parsed raw name in element context (default element ns
    /// applies when no prefix).
    fn resolve_element_name(&mut self, prefix: Option<String>, local: String) -> Result<QName> {
        match prefix {
            Some(p) => {
                let uri = self.lookup_prefix(&p)?;
                Ok(QName::prefixed(&uri, &p, &local))
            }
            None => match self.default_elem_ns.last().and_then(|o| o.clone()) {
                Some(uri) if !uri.is_empty() => Ok(QName::ns(&uri, &local)),
                _ => Ok(QName::local(&local)),
            },
        }
    }

    /// Resolve in no-default context (attributes, variables).
    fn resolve_plain_name(&mut self, prefix: Option<String>, local: String) -> Result<QName> {
        match prefix {
            Some(p) => {
                let uri = self.lookup_prefix(&p)?;
                Ok(QName::prefixed(&uri, &p, &local))
            }
            None => Ok(QName::local(&local)),
        }
    }

    /// Resolve a function name (default function ns applies).
    fn resolve_function_name(&mut self, prefix: Option<String>, local: String) -> Result<QName> {
        match prefix {
            Some(p) => {
                let uri = self.lookup_prefix(&p)?;
                Ok(QName::prefixed(&uri, &p, &local))
            }
            None => Ok(QName::ns(&self.default_fn_ns.clone(), &local)),
        }
    }

    fn parse_var_name(&mut self) -> Result<QName> {
        self.expect("$")?;
        let (p, l) = self.parse_raw_qname()?;
        self.resolve_plain_name(p, l)
    }

    // ---- module & prolog ---------------------------------------------------

    fn parse_module(&mut self) -> Result<Module> {
        let prolog = self.parse_prolog()?;
        let body = self.parse_expr()?;
        if !self.at_eof() {
            return Err(self.err("unexpected trailing input after query body"));
        }
        Ok(Module { prolog, body })
    }

    fn parse_prolog(&mut self) -> Result<Prolog> {
        let mut prolog = Prolog::default();
        loop {
            self.ws();
            let save = self.pos;
            let decl_kw = self.eat_kw("declare") || self.eat_kw("define");
            if !decl_kw {
                // `import module`/`import schema`/`module namespace` are
                // the (unsupported) module & schema-import features.
                if self.peek_two_kw("import", "module")
                    || self.peek_two_kw("import", "schema")
                    || self.peek_two_kw("module", "namespace")
                {
                    return Err(Error::new(
                        ErrorCode::StaticProlog,
                        "the module feature is not supported: inline the library functions",
                    )
                    .at(self.pos));
                }
                break;
            }
            if self.eat_kw("boundary-space") {
                if self.eat_kw("preserve") {
                    self.preserve_boundary_space = true;
                    prolog.boundary_space_preserve = true;
                } else if self.eat_kw("strip") {
                    self.preserve_boundary_space = false;
                } else {
                    return Err(self.err("expected 'preserve' or 'strip'"));
                }
                self.expect(";")?;
            } else if self.eat_kw("namespace") {
                let prefix = self.parse_ncname()?;
                self.expect("=")?;
                let uri = self.parse_string_literal()?;
                self.ns.push(NsBinding {
                    prefix: prefix.clone(),
                    uri: uri.clone(),
                });
                prolog.namespaces.push((prefix, uri));
                self.expect(";")?;
            } else if self.eat_kw("default") {
                if self.eat_kw("element") {
                    self.expect_kw("namespace")?;
                    let uri = self.parse_string_literal()?;
                    self.default_elem_ns[0] = Some(uri.clone());
                    prolog.default_element_ns = Some(uri);
                } else if self.eat_kw("function") {
                    self.expect_kw("namespace")?;
                    let uri = self.parse_string_literal()?;
                    self.default_fn_ns = uri.clone();
                    prolog.default_function_ns = Some(uri);
                } else {
                    return Err(self.err("expected 'element' or 'function' after 'default'"));
                }
                self.expect(";")?;
            } else if self.eat_kw("variable") {
                let name = self.parse_var_name()?;
                let ty = if self.eat_kw("as") {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                let value = if self.eat_kw("external") {
                    None
                } else if self.eat(":=") {
                    Some(self.parse_expr_single()?)
                } else if self.eat("{") {
                    // Older `define variable $x { expr }` syntax (as in
                    // the talk's module example).
                    let e = self.parse_expr()?;
                    self.expect("}")?;
                    Some(e)
                } else {
                    return Err(
                        self.err("expected ':=', '{' or 'external' in variable declaration")
                    );
                };
                prolog.variables.push(VarDecl { name, ty, value });
                self.expect(";").ok(); // tolerate missing ';' in old syntax
            } else if self.eat_kw("function") {
                let (p, l) = self.parse_raw_qname()?;
                let name = match p {
                    Some(_) => self.resolve_function_name(p, l)?,
                    // Unprefixed declarations land in local: per spec.
                    None => QName::prefixed(LOCAL_NS, "local", &l),
                };
                self.expect("(")?;
                let mut params = Vec::new();
                if !self.eat(")") {
                    loop {
                        let pname = self.parse_var_name()?;
                        let pty = if self.eat_kw("as") {
                            Some(self.parse_sequence_type()?)
                        } else {
                            None
                        };
                        params.push((pname, pty));
                        if self.eat(")") {
                            break;
                        }
                        self.expect(",")?;
                    }
                }
                let return_type = if self.eat_kw("as") {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                let body = if self.eat_kw("external") {
                    None
                } else {
                    self.expect("{")?;
                    let e = self.parse_expr()?;
                    self.expect("}")?;
                    Some(e)
                };
                prolog.functions.push(FunctionDecl {
                    name,
                    params,
                    return_type,
                    body,
                });
                self.expect(";").ok();
            } else {
                // Not a prolog declaration we know: rewind (could be the
                // body starting with a path like `declare/...` — unlikely
                // but don't swallow).
                self.pos = save;
                break;
            }
        }
        Ok(prolog)
    }

    // ---- expressions -------------------------------------------------------

    /// Expr := ExprSingle ("," ExprSingle)*
    fn parse_expr(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let first = self.parse_expr_single()?;
        if !self.peek_comma() {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(",") {
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items, pos))
    }

    fn peek_comma(&mut self) -> bool {
        self.ws();
        self.peek() == Some(b',')
    }

    fn parse_expr_single(&mut self) -> Result<Expr> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(Error::new(
                ErrorCode::Limit,
                format!("expression nesting exceeds {MAX_DEPTH} levels"),
            )
            .at(self.pos));
        }
        let result = self.parse_expr_single_inner();
        self.depth -= 1;
        result
    }

    fn parse_expr_single_inner(&mut self) -> Result<Expr> {
        self.ws();
        if self.peek_kw_then("validate", "{")
            || (self.peek_kw("validate") && {
                let save = self.pos;
                let two = self.eat_kw("validate")
                    && (self.eat_kw("lax") || self.eat_kw("strict"))
                    && self.eat("{");
                self.pos = save;
                two
            })
        {
            return Err(Error::new(
                ErrorCode::StaticProlog,
                "the schema validation feature is not supported (see DESIGN.md)",
            )
            .at(self.pos));
        }
        if self.peek_kw_then("for", "$") || self.peek_kw_then("let", "$") {
            return self.parse_flwor();
        }
        if self.peek_kw_then("some", "$") || self.peek_kw_then("every", "$") {
            return self.parse_quantified();
        }
        if self.peek_kw_then("if", "(") {
            return self.parse_if();
        }
        if self.peek_kw_then("typeswitch", "(") {
            return self.parse_typeswitch();
        }
        self.parse_or()
    }

    fn parse_flwor(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut clauses = Vec::new();
        loop {
            if self.peek_kw_then("for", "$") {
                self.eat_kw("for");
                loop {
                    let var = self.parse_var_name()?;
                    let ty = if self.eat_kw("as") {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    let position = if self.eat_kw("at") {
                        Some(self.parse_var_name()?)
                    } else {
                        None
                    };
                    self.expect_kw("in")?;
                    let source = self.parse_expr_single()?;
                    clauses.push(FlworClause::For {
                        var,
                        position,
                        ty,
                        source,
                    });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else if self.peek_kw_then("let", "$") {
                self.eat_kw("let");
                loop {
                    let var = self.parse_var_name()?;
                    let ty = if self.eat_kw("as") {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    self.expect(":=")?;
                    let value = self.parse_expr_single()?;
                    clauses.push(FlworClause::Let { var, ty, value });
                    if !self.eat(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(Box::new(self.parse_expr_single()?))
        } else {
            None
        };
        let mut stable = false;
        let mut order_by = Vec::new();
        if self.peek_two_kw("stable", "order") {
            self.eat_kw("stable");
            stable = true;
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let key = self.parse_expr_single()?;
                let descending = if self.eat_kw("descending") {
                    true
                } else {
                    self.eat_kw("ascending");
                    false
                };
                let empty_least = if self.eat_kw("empty") {
                    if self.eat_kw("least") {
                        Some(true)
                    } else if self.eat_kw("greatest") {
                        Some(false)
                    } else {
                        return Err(self.err("expected 'least' or 'greatest' after 'empty'"));
                    }
                } else {
                    None
                };
                order_by.push(OrderSpec {
                    key,
                    descending,
                    empty_least,
                });
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect_kw("return")?;
        let return_clause = Box::new(self.parse_expr_single()?);
        Ok(Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            stable,
            return_clause,
            pos,
        })
    }

    fn parse_quantified(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let every = if self.eat_kw("every") {
            true
        } else {
            self.eat_kw("some");
            false
        };
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            let ty = if self.eat_kw("as") {
                Some(self.parse_sequence_type()?)
            } else {
                None
            };
            self.expect_kw("in")?;
            let source = self.parse_expr_single()?;
            bindings.push((var, ty, source));
            if !self.eat(",") {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let satisfies = Box::new(self.parse_expr_single()?);
        Ok(Expr::Quantified {
            every,
            bindings,
            satisfies,
            pos,
        })
    }

    fn parse_if(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        self.eat_kw("if");
        self.expect("(")?;
        let cond = Box::new(self.parse_expr()?);
        self.expect(")")?;
        self.expect_kw("then")?;
        let then_branch = Box::new(self.parse_expr_single()?);
        self.expect_kw("else")?;
        let else_branch = Box::new(self.parse_expr_single()?);
        Ok(Expr::If {
            cond,
            then_branch,
            else_branch,
            pos,
        })
    }

    fn parse_typeswitch(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        self.eat_kw("typeswitch");
        self.expect("(")?;
        let operand = Box::new(self.parse_expr()?);
        self.expect(")")?;
        let mut cases = Vec::new();
        while self.eat_kw("case") {
            let var = if self.ws_peek() == Some(b'$') {
                let v = self.parse_var_name()?;
                self.expect("as")?;
                Some(v)
            } else {
                None
            };
            let ty = self.parse_sequence_type()?;
            self.expect_kw("return")?;
            let body = self.parse_expr_single()?;
            cases.push(TypeswitchCase { var, ty, body });
        }
        if cases.is_empty() {
            return Err(self.err("typeswitch needs at least one case"));
        }
        self.expect_kw("default")?;
        let default_var = if self.ws_peek() == Some(b'$') {
            Some(self.parse_var_name()?)
        } else {
            None
        };
        self.expect_kw("return")?;
        let default_body = Box::new(self.parse_expr_single()?);
        Ok(Expr::Typeswitch {
            operand,
            cases,
            default_var,
            default_body,
            pos,
        })
    }

    fn ws_peek(&mut self) -> Option<u8> {
        self.ws();
        self.peek()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_comparison()?;
        while self.eat_kw("and") {
            let rhs = self.parse_comparison()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_range()?;
        let op = self.try_comparison_op();
        match op {
            Some(op) => {
                let rhs = self.parse_range()?;
                Ok(Expr::Comparison(op, Box::new(lhs), Box::new(rhs), pos))
            }
            None => Ok(lhs),
        }
    }

    fn try_comparison_op(&mut self) -> Option<CompOp> {
        self.ws();
        // Multi-char symbols first.
        for (sym, op) in [
            ("<<", CompOp::Before),
            (">>", CompOp::After),
            ("<=", CompOp::GenLe),
            (">=", CompOp::GenGe),
            ("!=", CompOp::GenNe),
        ] {
            if self.starts_with(sym) {
                self.pos += sym.len();
                return Some(op);
            }
        }
        // `<` could start a direct constructor only at operand position;
        // here we are at operator position, so it is a comparison.
        if self.starts_with("<") {
            self.pos += 1;
            return Some(CompOp::GenLt);
        }
        if self.starts_with(">") {
            self.pos += 1;
            return Some(CompOp::GenGt);
        }
        if self.starts_with("=") {
            self.pos += 1;
            return Some(CompOp::GenEq);
        }
        for (kw, op) in [
            ("eq", CompOp::ValEq),
            ("ne", CompOp::ValNe),
            ("lt", CompOp::ValLt),
            ("le", CompOp::ValLe),
            ("gt", CompOp::ValGt),
            ("ge", CompOp::ValGe),
            ("is", CompOp::Is),
        ] {
            if self.eat_kw(kw) {
                return Some(op);
            }
        }
        None
    }

    fn parse_range(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_additive()?;
        if self.eat_kw("to") {
            let rhs = self.parse_additive()?;
            Ok(Expr::Range(Box::new(lhs), Box::new(rhs), pos))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_multiplicative()?;
        loop {
            self.ws();
            if self.starts_with("+") {
                self.pos += 1;
                let rhs = self.parse_multiplicative()?;
                lhs = Expr::Arith(ArithOp::Add, Box::new(lhs), Box::new(rhs), pos);
            } else if self.starts_with("-") {
                self.pos += 1;
                let rhs = self.parse_multiplicative()?;
                lhs = Expr::Arith(ArithOp::Sub, Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_union_expr()?;
        loop {
            self.ws();
            if self.starts_with("*") {
                self.pos += 1;
                let rhs = self.parse_union_expr()?;
                lhs = Expr::Arith(ArithOp::Mul, Box::new(lhs), Box::new(rhs), pos);
            } else if self.eat_kw("div") {
                let rhs = self.parse_union_expr()?;
                lhs = Expr::Arith(ArithOp::Div, Box::new(lhs), Box::new(rhs), pos);
            } else if self.eat_kw("idiv") {
                let rhs = self.parse_union_expr()?;
                lhs = Expr::Arith(ArithOp::IDiv, Box::new(lhs), Box::new(rhs), pos);
            } else if self.eat_kw("mod") {
                let rhs = self.parse_union_expr()?;
                lhs = Expr::Arith(ArithOp::Mod, Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_union_expr(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_intersect_except()?;
        loop {
            self.ws();
            if self.eat_kw("union") || (self.starts_with("|") && !self.starts_with("||")) {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                }
                let rhs = self.parse_intersect_except()?;
                lhs = Expr::Union(Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_intersect_except(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut lhs = self.parse_instance_of()?;
        loop {
            if self.eat_kw("intersect") {
                let rhs = self.parse_instance_of()?;
                lhs = Expr::Intersect(Box::new(lhs), Box::new(rhs), pos);
            } else if self.eat_kw("except") {
                let rhs = self.parse_instance_of()?;
                lhs = Expr::Except(Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_instance_of(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_treat()?;
        if self.peek_two_kw("instance", "of") {
            self.eat_kw("instance");
            self.eat_kw("of");
            let ty = self.parse_sequence_type()?;
            Ok(Expr::InstanceOf(Box::new(lhs), ty, pos))
        } else {
            Ok(lhs)
        }
    }

    fn parse_treat(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_castable()?;
        if self.peek_two_kw("treat", "as") {
            self.eat_kw("treat");
            self.eat_kw("as");
            let ty = self.parse_sequence_type()?;
            Ok(Expr::TreatAs(Box::new(lhs), ty, pos))
        } else {
            Ok(lhs)
        }
    }

    fn parse_castable(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_cast()?;
        if self.peek_two_kw("castable", "as") {
            self.eat_kw("castable");
            self.eat_kw("as");
            let ty = self.parse_single_type()?;
            Ok(Expr::CastableAs(Box::new(lhs), ty, pos))
        } else {
            Ok(lhs)
        }
    }

    fn parse_cast(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let lhs = self.parse_unary()?;
        if self.peek_two_kw("cast", "as") {
            self.eat_kw("cast");
            self.eat_kw("as");
            let ty = self.parse_single_type()?;
            Ok(Expr::CastAs(Box::new(lhs), ty, pos))
        } else {
            Ok(lhs)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let mut negs = 0usize;
        loop {
            self.ws();
            if self.starts_with("-") {
                self.pos += 1;
                negs += 1;
            } else if self.starts_with("+") {
                self.pos += 1;
            } else {
                break;
            }
        }
        let inner = self.parse_path()?;
        if negs % 2 == 1 {
            Ok(Expr::Neg(Box::new(inner), pos))
        } else {
            Ok(inner)
        }
    }

    // ---- paths --------------------------------------------------------------

    fn parse_path(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        if self.starts_with("//") {
            self.pos += 2;
            let root = Expr::Root(pos);
            let dos = Expr::AxisStep {
                axis: AxisName::DescendantOrSelf,
                test: NodeTest::AnyKind,
                predicates: Vec::new(),
                pos,
            };
            let lhs = Expr::Path(Box::new(root), Box::new(dos), pos);
            return self.parse_relative_path_first(lhs, pos);
        }
        if self.starts_with("/") {
            self.pos += 1;
            let root = Expr::Root(pos);
            // A lone `/` is allowed.
            self.ws();
            if self.at_step_start() {
                return self.parse_relative_path_first(root, pos);
            }
            return Ok(root);
        }
        let first = self.parse_step()?;
        self.parse_relative_path(first, pos)
    }

    fn at_step_start(&mut self) -> bool {
        match self.peek() {
            Some(b) => {
                b == b'@'
                    || b == b'.'
                    || b == b'*'
                    || b == b'$'
                    || b == b'('
                    || b == b'\''
                    || b == b'"'
                    || b.is_ascii_alphanumeric()
                    || b == b'_'
                    || b == b'<'
                    || !b.is_ascii()
            }
            None => false,
        }
    }

    fn parse_relative_path_first(&mut self, lhs: Expr, pos: Pos) -> Result<Expr> {
        let step = self.parse_step()?;
        let joined = Expr::Path(Box::new(lhs), Box::new(step), pos);
        self.parse_relative_path(joined, pos)
    }

    fn parse_relative_path(&mut self, mut lhs: Expr, pos: Pos) -> Result<Expr> {
        loop {
            self.ws();
            if self.starts_with("//") {
                self.pos += 2;
                let dos = Expr::AxisStep {
                    axis: AxisName::DescendantOrSelf,
                    test: NodeTest::AnyKind,
                    predicates: Vec::new(),
                    pos,
                };
                lhs = Expr::Path(Box::new(lhs), Box::new(dos), pos);
                let step = self.parse_step()?;
                lhs = Expr::Path(Box::new(lhs), Box::new(step), pos);
            } else if self.starts_with("/") {
                self.pos += 1;
                let step = self.parse_step()?;
                lhs = Expr::Path(Box::new(lhs), Box::new(step), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    /// One step: an axis step or a filter (primary + predicates).
    fn parse_step(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        // `..` abbreviation.
        if self.starts_with("..") {
            self.pos += 2;
            let step = Expr::AxisStep {
                axis: AxisName::Parent,
                test: NodeTest::AnyKind,
                predicates: Vec::new(),
                pos,
            };
            return self.attach_predicates_axis(step);
        }
        // `@name` abbreviation.
        if self.starts_with("@") {
            self.pos += 1;
            let test = self.parse_node_test(AxisName::Attribute)?;
            let step = Expr::AxisStep {
                axis: AxisName::Attribute,
                test,
                predicates: Vec::new(),
                pos,
            };
            return self.attach_predicates_axis(step);
        }
        // Explicit axis `axis::test`.
        let save = self.pos;
        if let Ok(name) = self.parse_ncname() {
            if self.starts_with("::") {
                if let Some(axis) = AxisName::parse(&name) {
                    self.pos += 2;
                    let test = self.parse_node_test(axis)?;
                    let step = Expr::AxisStep {
                        axis,
                        test,
                        predicates: Vec::new(),
                        pos,
                    };
                    return self.attach_predicates_axis(step);
                }
                return Err(self.err(format!("unknown axis {name:?}")));
            }
        }
        self.pos = save;
        // Kind tests / name tests / wildcard as child-axis steps — but a
        // primary expression (literal, var, paren, call, constructor)
        // wins when it applies.
        if let Some(primary) = self.try_parse_primary()? {
            let mut preds = Vec::new();
            while self.eat("[") {
                preds.push(self.parse_expr()?);
                self.expect("]")?;
            }
            if preds.is_empty() {
                return Ok(primary);
            }
            return Ok(Expr::Filter(Box::new(primary), preds, pos));
        }
        // Fall back to a child-axis name test.
        let test = self.parse_node_test(AxisName::Child)?;
        let axis = match &test {
            NodeTest::Attribute(_) => AxisName::Attribute,
            _ => AxisName::Child,
        };
        let step = Expr::AxisStep {
            axis,
            test,
            predicates: Vec::new(),
            pos,
        };
        self.attach_predicates_axis(step)
    }

    fn attach_predicates_axis(&mut self, step: Expr) -> Result<Expr> {
        let mut step = step;
        while self.eat("[") {
            let p = self.parse_expr()?;
            self.expect("]")?;
            if let Expr::AxisStep { predicates, .. } = &mut step {
                predicates.push(p);
            }
        }
        Ok(step)
    }

    fn parse_node_test(&mut self, axis: AxisName) -> Result<NodeTest> {
        self.ws();
        if self.starts_with("*") {
            self.pos += 1;
            if self.peek() == Some(b':') {
                self.pos += 1;
                let local = self.parse_ncname_nows()?;
                return Ok(NodeTest::LocalWildcard(local));
            }
            return Ok(NodeTest::AnyName);
        }
        let (prefix, local) = self.parse_raw_qname()?;
        // prefix:* wildcard.
        if prefix.is_none() && self.peek() == Some(b':') && self.peek_at(1) == Some(b'*') {
            self.pos += 2;
            let uri = self.lookup_prefix(&local)?;
            return Ok(NodeTest::NamespaceWildcard(uri));
        }
        // Kind tests.
        if prefix.is_none() && self.starts_with("(") {
            match local.as_str() {
                "node" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(NodeTest::AnyKind);
                }
                "text" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(NodeTest::Text);
                }
                "comment" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(NodeTest::Comment);
                }
                "processing-instruction" => {
                    self.expect("(")?;
                    self.ws();
                    let target = if self.peek() == Some(b')') {
                        None
                    } else if matches!(self.peek(), Some(b'\'' | b'"')) {
                        Some(self.parse_string_literal()?)
                    } else {
                        Some(self.parse_ncname()?)
                    };
                    self.expect(")")?;
                    return Ok(NodeTest::Pi(target));
                }
                "document-node" => {
                    self.expect("(")?;
                    self.ws();
                    // Optional inner element test, ignored beyond parsing.
                    if !self.starts_with(")") {
                        let _ = self.parse_node_test(axis)?;
                    }
                    self.expect(")")?;
                    return Ok(NodeTest::Document);
                }
                "element" | "schema-element" => {
                    self.expect("(")?;
                    let name = self.parse_kind_test_name()?;
                    self.expect(")")?;
                    return Ok(NodeTest::Element(name));
                }
                "attribute" | "schema-attribute" => {
                    self.expect("(")?;
                    let name = self.parse_kind_test_name()?;
                    self.expect(")")?;
                    return Ok(NodeTest::Attribute(name));
                }
                _ => {}
            }
        }
        // Plain name test: default element namespace applies on
        // non-attribute axes.
        let q = if axis == AxisName::Attribute || axis == AxisName::Namespace {
            self.resolve_plain_name(prefix, local)?
        } else {
            self.resolve_element_name(prefix, local)?
        };
        Ok(NodeTest::Name(q))
    }

    /// Inside `element(...)` / `attribute(...)`: `*` or name, optionally
    /// `, typeName` (parsed and discarded — schema import is out of
    /// scope, documented in DESIGN.md).
    fn parse_kind_test_name(&mut self) -> Result<Option<QName>> {
        self.ws();
        let name = if self.peek() == Some(b')') {
            None
        } else if self.starts_with("*") {
            self.pos += 1;
            None
        } else {
            let (p, l) = self.parse_raw_qname()?;
            Some(self.resolve_element_name(p, l)?)
        };
        if self.eat(",") {
            self.ws();
            if self.starts_with("*") {
                self.pos += 1;
            } else {
                let _ = self.parse_raw_qname()?;
            }
        }
        Ok(name)
    }

    // ---- primaries ------------------------------------------------------------

    /// Try to parse a primary expression; `Ok(None)` means "not a
    /// primary here — treat as a name test".
    fn try_parse_primary(&mut self) -> Result<Option<Expr>> {
        self.ws();
        let pos = self.pos;
        match self.peek() {
            Some(b'\'') | Some(b'"') => {
                let s = self.parse_string_literal()?;
                return Ok(Some(Expr::Literal(AtomicValue::string(s.as_str()), pos)));
            }
            Some(b'0'..=b'9') => return Ok(Some(self.parse_numeric_literal()?)),
            Some(b'.') => {
                if self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
                    return Ok(Some(self.parse_numeric_literal()?));
                }
                if self.starts_with("..") {
                    return Ok(None); // handled by step parser
                }
                self.pos += 1;
                return Ok(Some(Expr::ContextItem(pos)));
            }
            Some(b'$') => {
                let name = self.parse_var_name()?;
                return Ok(Some(Expr::VarRef(name, pos)));
            }
            Some(b'(') => {
                self.pos += 1;
                self.ws();
                if self.starts_with(")") {
                    self.pos += 1;
                    return Ok(Some(Expr::empty(pos)));
                }
                let e = self.parse_expr()?;
                self.expect(")")?;
                return Ok(Some(e));
            }
            Some(b'<') => {
                // Direct constructor (only valid at operand position).
                return Ok(Some(self.parse_direct_constructor()?));
            }
            _ => {}
        }
        // ordered/unordered blocks.
        if self.peek_kw_then("ordered", "{") {
            self.eat_kw("ordered");
            self.expect("{")?;
            let e = self.parse_expr()?;
            self.expect("}")?;
            return Ok(Some(Expr::Ordered(Box::new(e), pos)));
        }
        if self.peek_kw_then("unordered", "{") {
            self.eat_kw("unordered");
            self.expect("{")?;
            let e = self.parse_expr()?;
            self.expect("}")?;
            return Ok(Some(Expr::Unordered(Box::new(e), pos)));
        }
        // Computed constructors.
        if let Some(e) = self.try_parse_computed_constructor()? {
            return Ok(Some(e));
        }
        // Function call: QName "(" — but kind-test names are not calls.
        let save = self.pos;
        if let Ok((prefix, local)) = self.parse_raw_qname() {
            self.ws();
            if self.starts_with("(")
                && !(prefix.is_none()
                    && matches!(
                        local.as_str(),
                        "node"
                            | "text"
                            | "comment"
                            | "processing-instruction"
                            | "document-node"
                            | "element"
                            | "attribute"
                            | "schema-element"
                            | "schema-attribute"
                            | "item"
                            | "empty-sequence"
                            | "if"
                            | "typeswitch"
                    ))
            {
                let name = self.resolve_function_name(prefix, local)?;
                self.expect("(")?;
                let mut args = Vec::new();
                self.ws();
                if !self.eat(")") {
                    loop {
                        args.push(self.parse_expr_single()?);
                        if self.eat(")") {
                            break;
                        }
                        self.expect(",")?;
                    }
                }
                return Ok(Some(Expr::FunctionCall(name, args, pos)));
            }
        }
        self.pos = save;
        Ok(None)
    }

    fn parse_numeric_literal(&mut self) -> Result<Expr> {
        self.ws();
        let pos = self.pos;
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_decimal = false;
        if self.peek() == Some(b'.') {
            is_decimal = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let mut is_double = false;
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_double = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        let value = if is_double {
            AtomicValue::Double(xqr_xdm::parse_double(text).map_err(|e| self.err(e.message))?)
        } else if is_decimal {
            AtomicValue::Decimal(Decimal::parse(text).map_err(|e| self.err(e.message))?)
        } else {
            AtomicValue::Integer(
                text.parse::<i64>()
                    .map_err(|_| self.err("integer literal overflow"))?,
            )
        };
        Ok(Expr::Literal(value, pos))
    }

    fn parse_string_literal(&mut self) -> Result<String> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'\'' | b'"')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(q) if q == quote => {
                    // Doubled quote is an escape.
                    if self.peek_at(1) == Some(quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(out);
                    }
                }
                Some(b'&') => {
                    let s = self.parse_entity_ref()?;
                    out.push_str(&s);
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().expect("in-bounds char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_entity_ref(&mut self) -> Result<String> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        let end = self.src[self.pos..]
            .find(';')
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = &self.src[self.pos + 1..end];
        self.pos = end + 1;
        Ok(match name {
            "lt" => "<".into(),
            "gt" => ">".into(),
            "amp" => "&".into(),
            "quot" => "\"".into(),
            "apos" => "'".into(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err("bad character reference"))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err("invalid codepoint"))?
                    .to_string()
            }
            _ if name.starts_with('#') => {
                let cp = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.err("bad character reference"))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err("invalid codepoint"))?
                    .to_string()
            }
            _ => return Err(self.err(format!("unknown entity &{name};"))),
        })
    }

    // ---- types -------------------------------------------------------------

    fn parse_sequence_type(&mut self) -> Result<SequenceType> {
        self.ws();
        // empty() / empty-sequence()
        if self.peek_kw_then("empty-sequence", "(") {
            self.eat_kw("empty-sequence");
            self.expect("(")?;
            self.expect(")")?;
            return Ok(SequenceType::Empty);
        }
        if self.peek_kw_then("empty", "(") {
            self.eat_kw("empty");
            self.expect("(")?;
            self.expect(")")?;
            return Ok(SequenceType::Empty);
        }
        let item = self.parse_item_type()?;
        let occ = self.parse_occurrence();
        Ok(SequenceType::Of(item, occ))
    }

    fn parse_occurrence(&mut self) -> Occurrence {
        match self.peek() {
            Some(b'?') => {
                self.pos += 1;
                Occurrence::Optional
            }
            Some(b'*') => {
                self.pos += 1;
                Occurrence::ZeroOrMore
            }
            Some(b'+') => {
                self.pos += 1;
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        }
    }

    fn parse_item_type(&mut self) -> Result<ItemType> {
        self.ws();
        if self.peek_kw_then("item", "(") {
            self.eat_kw("item");
            self.expect("(")?;
            self.expect(")")?;
            return Ok(ItemType::AnyItem);
        }
        let save = self.pos;
        let (prefix, local) = self.parse_raw_qname()?;
        if prefix.is_none() && self.starts_with("(") {
            match local.as_str() {
                "node" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(ItemType::AnyNode);
                }
                "text" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(ItemType::Kind(NodeKind::Text, NameTest::Any));
                }
                "comment" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(ItemType::Kind(NodeKind::Comment, NameTest::Any));
                }
                "processing-instruction" => {
                    self.expect("(")?;
                    self.ws();
                    if !self.starts_with(")") {
                        if matches!(self.peek(), Some(b'\'' | b'"')) {
                            let _ = self.parse_string_literal()?;
                        } else {
                            let _ = self.parse_ncname()?;
                        }
                    }
                    self.expect(")")?;
                    return Ok(ItemType::Kind(
                        NodeKind::ProcessingInstruction,
                        NameTest::Any,
                    ));
                }
                "document-node" => {
                    self.expect("(")?;
                    self.ws();
                    if !self.starts_with(")") {
                        let _ = self.parse_item_type()?;
                    }
                    self.expect(")")?;
                    return Ok(ItemType::Kind(NodeKind::Document, NameTest::Any));
                }
                "element" | "schema-element" => {
                    self.expect("(")?;
                    let name = self.parse_kind_test_name()?;
                    self.expect(")")?;
                    return Ok(ItemType::element(name));
                }
                "attribute" | "schema-attribute" => {
                    self.expect("(")?;
                    let name = self.parse_kind_test_name()?;
                    self.expect(")")?;
                    return Ok(ItemType::attribute(name));
                }
                _ => {}
            }
        }
        // Atomic type name.
        self.pos = save;
        let (prefix, local) = self.parse_raw_qname()?;
        let full = match &prefix {
            Some(p) => format!("{p}:{local}"),
            None => local.clone(),
        };
        match AtomicType::from_name(&full) {
            Some(t) => Ok(ItemType::Atomic(t)),
            None => Err(self.err(format!("unknown type name {full:?}"))),
        }
    }

    /// SingleType := AtomicType "?"?
    fn parse_single_type(&mut self) -> Result<SequenceType> {
        self.ws();
        let (prefix, local) = self.parse_raw_qname()?;
        let full = match &prefix {
            Some(p) => format!("{p}:{local}"),
            None => local.clone(),
        };
        let at = AtomicType::from_name(&full)
            .ok_or_else(|| self.err(format!("unknown atomic type {full:?}")))?;
        let occ = if self.peek() == Some(b'?') {
            self.pos += 1;
            Occurrence::Optional
        } else {
            Occurrence::One
        };
        Ok(SequenceType::Of(ItemType::Atomic(at), occ))
    }

    // ---- computed constructors -----------------------------------------------

    fn try_parse_computed_constructor(&mut self) -> Result<Option<Expr>> {
        self.ws();
        let pos = self.pos;
        let save = self.pos;
        for kw in [
            "element",
            "attribute",
            "text",
            "comment",
            "document",
            "processing-instruction",
        ] {
            if !self.peek_kw(kw) {
                continue;
            }
            self.eat_kw(kw);
            self.ws();
            match kw {
                "text" | "comment" | "document" => {
                    if self.starts_with("{") {
                        self.pos += 1;
                        let e = self.parse_expr()?;
                        self.expect("}")?;
                        let boxed = Box::new(e);
                        return Ok(Some(match kw {
                            "text" => Expr::ComputedText(boxed, pos),
                            "comment" => Expr::ComputedComment(boxed, pos),
                            _ => Expr::ComputedDocument(boxed, pos),
                        }));
                    }
                    self.pos = save;
                    return Ok(None);
                }
                "element" | "attribute" | "processing-instruction" => {
                    // name form: keyword QName { ... } ; expr form:
                    // keyword { nameExpr } { ... }
                    let name: NameOrExpr;
                    if self.starts_with("{") {
                        self.pos += 1;
                        let ne = self.parse_expr()?;
                        self.expect("}")?;
                        name = NameOrExpr::Expr(ne);
                    } else {
                        let name_save = self.pos;
                        match self.parse_raw_qname() {
                            Ok((p, l)) => {
                                self.ws();
                                if !self.starts_with("{") {
                                    // Not a constructor after all (e.g. a
                                    // path step named `element`).
                                    self.pos = save;
                                    return Ok(None);
                                }
                                let q = if kw == "attribute" {
                                    self.resolve_plain_name(p, l)?
                                } else {
                                    self.resolve_element_name(p, l)?
                                };
                                name = NameOrExpr::Name(q);
                                let _ = name_save;
                            }
                            Err(_) => {
                                self.pos = save;
                                return Ok(None);
                            }
                        }
                    }
                    self.ws();
                    if !self.starts_with("{") {
                        self.pos = save;
                        return Ok(None);
                    }
                    self.pos += 1;
                    self.ws();
                    let content = if self.starts_with("}") {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect("}")?;
                    return Ok(Some(match kw {
                        "element" => Expr::ComputedElement {
                            name: Box::new(name),
                            content,
                            pos,
                        },
                        "attribute" => Expr::ComputedAttribute {
                            name: Box::new(name),
                            content,
                            pos,
                        },
                        _ => Expr::ComputedPi {
                            target: Box::new(name),
                            content,
                            pos,
                        },
                    }));
                }
                _ => unreachable!(),
            }
        }
        Ok(None)
    }

    // ---- direct constructors ---------------------------------------------------

    fn parse_direct_constructor(&mut self) -> Result<Expr> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        if self.starts_with("<!--") {
            self.pos += 4;
            let end = self.src[self.pos..]
                .find("-->")
                .map(|i| self.pos + i)
                .ok_or_else(|| self.err("unterminated comment constructor"))?;
            let text = self.src[self.pos..end].to_string();
            self.pos = end + 3;
            return Ok(Expr::ComputedComment(
                Box::new(Expr::Literal(AtomicValue::string(text.as_str()), self.pos)),
                self.pos,
            ));
        }
        if self.starts_with("<?") {
            self.pos += 2;
            let target = self.parse_ncname_nows()?;
            let end = self.src[self.pos..]
                .find("?>")
                .map(|i| self.pos + i)
                .ok_or_else(|| self.err("unterminated PI constructor"))?;
            let data = self.src[self.pos..end].trim_start().to_string();
            self.pos = end + 2;
            return Ok(Expr::ComputedPi {
                target: Box::new(NameOrExpr::Name(QName::local(&target))),
                content: Some(Box::new(Expr::Literal(
                    AtomicValue::string(data.as_str()),
                    self.pos,
                ))),
                pos: self.pos,
            });
        }
        self.parse_direct_element()
    }

    fn parse_direct_element(&mut self) -> Result<Expr> {
        let pos = self.pos;
        self.expect("<")?;
        let (raw_prefix, raw_local) = self.parse_raw_qname()?;
        // Collect raw attributes first; xmlns bindings take effect for
        // resolving everything on this element and its content.
        let mut raw_attrs: Vec<(Option<String>, String, Vec<AttrPart>)> = Vec::new();
        let mut namespaces: Vec<(Option<String>, String)> = Vec::new();
        let mut pushed_ns = 0usize;
        let mut pushed_default = false;
        loop {
            self.ws();
            if self.starts_with("/>") || self.starts_with(">") {
                break;
            }
            let (ap, al) = self.parse_raw_qname()?;
            self.ws();
            self.expect("=")?;
            self.ws();
            let parts = self.parse_attr_value_template()?;
            let flat = |parts: &[AttrPart]| -> Option<String> {
                let mut s = String::new();
                for p in parts {
                    match p {
                        AttrPart::Text(t) => s.push_str(t),
                        AttrPart::Enclosed(_) => return None,
                    }
                }
                Some(s)
            };
            if ap.is_none() && al == "xmlns" {
                let uri =
                    flat(&parts).ok_or_else(|| self.err("xmlns value must be a literal string"))?;
                self.default_elem_ns.push(Some(uri.clone()));
                pushed_default = true;
                namespaces.push((None, uri));
            } else if ap.as_deref() == Some("xmlns") {
                let uri =
                    flat(&parts).ok_or_else(|| self.err("xmlns value must be a literal string"))?;
                self.ns.push(NsBinding {
                    prefix: al.clone(),
                    uri: uri.clone(),
                });
                pushed_ns += 1;
                namespaces.push((Some(al), uri));
            } else {
                raw_attrs.push((ap, al, parts));
            }
        }
        // Resolve names now that bindings are in scope.
        let name = self.resolve_element_name(raw_prefix, raw_local.clone())?;
        let mut attributes = Vec::new();
        for (ap, al, parts) in raw_attrs {
            let q = self.resolve_plain_name(ap, al)?;
            if attributes.iter().any(|(n, _): &(QName, _)| *n == q) {
                return Err(Error::new(
                    ErrorCode::DuplicateAttribute,
                    format!("duplicate attribute {q}"),
                )
                .at(self.pos));
            }
            attributes.push((q, parts));
        }
        let mut content = Vec::new();
        if self.eat("/>") {
            // Empty element.
        } else {
            self.expect(">")?;
            content = self.parse_element_content(&raw_local)?;
        }
        // Pop constructor-scoped bindings.
        for _ in 0..pushed_ns {
            self.ns.pop();
        }
        if pushed_default {
            self.default_elem_ns.pop();
        }
        Ok(Expr::DirectElement {
            name,
            attributes,
            namespaces,
            content,
            pos,
        })
    }

    fn parse_attr_value_template(&mut self) -> Result<Vec<AttrPart>> {
        let quote = match self.peek() {
            Some(q @ (b'\'' | b'"')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    if self.peek_at(1) == Some(quote) {
                        text.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(b'{') => {
                    if self.peek_at(1) == Some(b'{') {
                        text.push('{');
                        self.pos += 2;
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrPart::Text(std::mem::take(&mut text)));
                        }
                        self.pos += 1;
                        let e = self.parse_expr()?;
                        self.expect("}")?;
                        parts.push(AttrPart::Enclosed(e));
                    }
                }
                Some(b'}') => {
                    if self.peek_at(1) == Some(b'}') {
                        text.push('}');
                        self.pos += 2;
                    } else {
                        return Err(self.err("'}' must be doubled in attribute values"));
                    }
                }
                Some(b'&') => {
                    let s = self.parse_entity_ref()?;
                    text.push_str(&s);
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().expect("in-bounds char");
                    text.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        if !text.is_empty() {
            parts.push(AttrPart::Text(text));
        }
        Ok(parts)
    }

    fn parse_element_content(&mut self, closing_name: &str) -> Result<Vec<DirContent>> {
        let mut content = Vec::new();
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated element constructor")),
                Some(b'<') => {
                    if !text.is_empty() {
                        push_text(
                            &mut content,
                            std::mem::take(&mut text),
                            self.preserve_boundary_space,
                        );
                    }
                    if self.starts_with("</") {
                        self.pos += 2;
                        let (p, l) = self.parse_raw_qname()?;
                        let written = match &p {
                            Some(pp) => format!("{pp}:{l}"),
                            None => l.clone(),
                        };
                        // Match on written name (prefix included).
                        let expected_norm = closing_name;
                        if written.split(':').next_back() != expected_norm.split(':').next_back()
                            && written != expected_norm
                        {
                            return Err(self.err(format!(
                                "mismatched constructor end tag </{written}>, expected </{expected_norm}>"
                            )));
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(content);
                    }
                    if self.starts_with("<![CDATA[") {
                        self.pos += 9;
                        let end = self.src[self.pos..]
                            .find("]]>")
                            .map(|i| self.pos + i)
                            .ok_or_else(|| self.err("unterminated CDATA"))?;
                        text.push_str(&self.src[self.pos..end]);
                        self.pos = end + 3;
                        continue;
                    }
                    let child = self.parse_direct_constructor()?;
                    content.push(DirContent::Child(child));
                }
                Some(b'{') => {
                    if self.peek_at(1) == Some(b'{') {
                        text.push('{');
                        self.pos += 2;
                    } else {
                        if !text.is_empty() {
                            push_text(
                                &mut content,
                                std::mem::take(&mut text),
                                self.preserve_boundary_space,
                            );
                        }
                        self.pos += 1;
                        // The talk's customer query uses `{-- comment --}`;
                        // standard XQuery has no such form, but accept and
                        // drop it for compatibility with old examples.
                        self.ws();
                        if self.starts_with("--") {
                            let end = self.src[self.pos + 2..]
                                .find("--}")
                                .map(|i| self.pos + 2 + i)
                                .ok_or_else(|| self.err("unterminated {-- --} comment"))?;
                            self.pos = end + 3;
                            continue;
                        }
                        let e = self.parse_expr()?;
                        self.expect("}")?;
                        content.push(DirContent::Enclosed(e));
                    }
                }
                Some(b'}') => {
                    if self.peek_at(1) == Some(b'}') {
                        text.push('}');
                        self.pos += 2;
                    } else {
                        return Err(self.err("'}' must be doubled in element content"));
                    }
                }
                Some(b'&') => {
                    let s = self.parse_entity_ref()?;
                    text.push_str(&s);
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().expect("in-bounds char");
                    text.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Boundary-space policy: under "strip" (the XQuery default),
/// whitespace-only literal text between constructor pieces is dropped;
/// `declare boundary-space preserve` keeps it.
fn push_text(content: &mut Vec<DirContent>, text: String, preserve: bool) {
    if !preserve && text.chars().all(|c| c.is_ascii_whitespace()) {
        return;
    }
    content.push(DirContent::Text(text));
}
