//! The abstract syntax tree produced by the parser.
//!
//! This mirrors the talk's pipeline: "Text → Abstract syntax tree (for
//! editing) → Expression tree (for optimization)". The AST stays close
//! to surface syntax (FLWOR not yet decomposed, `//` already desugared);
//! the compiler crate normalizes it into the core expression tree.
//!
//! Every node carries the source offset it started at, preserving the
//! "lineage through all those representations (for debugging and error
//! reporting)" the talk calls out.

use xqr_xdm::{AtomicValue, QName, SequenceType};

/// Source position (byte offset into the query text).
pub type Pos = usize;

/// Axes, re-exported shape-compatible with the store's axis enum but
/// independent so the parser does not depend on the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisName {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Namespace,
}

impl AxisName {
    /// Parse an axis name (not the `FromStr` trait: this is fallible
    /// without an error payload).
    pub fn parse(s: &str) -> Option<AxisName> {
        Some(match s {
            "child" => AxisName::Child,
            "descendant" => AxisName::Descendant,
            "descendant-or-self" => AxisName::DescendantOrSelf,
            "attribute" => AxisName::Attribute,
            "self" => AxisName::SelfAxis,
            "parent" => AxisName::Parent,
            "ancestor" => AxisName::Ancestor,
            "ancestor-or-self" => AxisName::AncestorOrSelf,
            "following-sibling" => AxisName::FollowingSibling,
            "preceding-sibling" => AxisName::PrecedingSibling,
            "following" => AxisName::Following,
            "preceding" => AxisName::Preceding,
            "namespace" => AxisName::Namespace,
            _ => return None,
        })
    }
}

/// A node test within an axis step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A resolved name, e.g. `book` or `myNS:publisher`.
    Name(QName),
    /// `*`
    AnyName,
    /// `prefix:*` with the prefix resolved to its URI.
    NamespaceWildcard(String),
    /// `*:local`
    LocalWildcard(String),
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction(target?)`
    Pi(Option<String>),
    /// `document-node()`
    Document,
    /// `element()` / `element(name)`
    Element(Option<QName>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<QName>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::IDiv => "idiv",
            ArithOp::Mod => "mod",
        }
    }
}

/// The three comparison families from the talk's comparison table, plus
/// node order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    // Value comparisons: single values.
    ValEq,
    ValNe,
    ValLt,
    ValLe,
    ValGt,
    ValGe,
    // General comparisons: existential + coercion.
    GenEq,
    GenNe,
    GenLt,
    GenLe,
    GenGt,
    GenGe,
    // Node identity.
    Is,
    // Document order.
    Before,
    After,
}

impl CompOp {
    pub fn is_value(self) -> bool {
        matches!(
            self,
            CompOp::ValEq
                | CompOp::ValNe
                | CompOp::ValLt
                | CompOp::ValLe
                | CompOp::ValGt
                | CompOp::ValGe
        )
    }

    pub fn is_general(self) -> bool {
        matches!(
            self,
            CompOp::GenEq
                | CompOp::GenNe
                | CompOp::GenLt
                | CompOp::GenLe
                | CompOp::GenGt
                | CompOp::GenGe
        )
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::ValEq => "eq",
            CompOp::ValNe => "ne",
            CompOp::ValLt => "lt",
            CompOp::ValLe => "le",
            CompOp::ValGt => "gt",
            CompOp::ValGe => "ge",
            CompOp::GenEq => "=",
            CompOp::GenNe => "!=",
            CompOp::GenLt => "<",
            CompOp::GenLe => "<=",
            CompOp::GenGt => ">",
            CompOp::GenGe => ">=",
            CompOp::Is => "is",
            CompOp::Before => "<<",
            CompOp::After => ">>",
        }
    }
}

/// One FLWOR binding clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FlworClause {
    For {
        var: QName,
        /// `at $i` positional variable.
        position: Option<QName>,
        ty: Option<SequenceType>,
        source: Expr,
    },
    Let {
        var: QName,
        ty: Option<SequenceType>,
        value: Expr,
    },
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
    /// `empty least` (true) / `empty greatest` (false); None = default.
    pub empty_least: Option<bool>,
}

/// Direct-constructor content item.
#[derive(Debug, Clone, PartialEq)]
pub enum DirContent {
    /// Literal text (entities already resolved).
    Text(String),
    /// `{ expr }` enclosed expression.
    Enclosed(Expr),
    /// Nested element / computed constructor or any expression node.
    Child(Expr),
}

/// Attribute value template: literal and enclosed pieces.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    Text(String),
    Enclosed(Expr),
}

/// One case of a typeswitch.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeswitchCase {
    pub var: Option<QName>,
    pub ty: SequenceType,
    pub body: Expr,
}

/// An XQuery expression (26-ish kinds, per the talk's hierarchy slide).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(AtomicValue, Pos),
    VarRef(QName, Pos),
    ContextItem(Pos),
    /// `()` or `(e1, e2, ...)` — sequence construction by concatenation.
    Sequence(Vec<Expr>, Pos),
    Range(Box<Expr>, Box<Expr>, Pos),
    Arith(ArithOp, Box<Expr>, Box<Expr>, Pos),
    /// Unary minus (odd number of `-` signs).
    Neg(Box<Expr>, Pos),
    Comparison(CompOp, Box<Expr>, Box<Expr>, Pos),
    And(Box<Expr>, Box<Expr>, Pos),
    Or(Box<Expr>, Box<Expr>, Pos),
    Union(Box<Expr>, Box<Expr>, Pos),
    Intersect(Box<Expr>, Box<Expr>, Pos),
    Except(Box<Expr>, Box<Expr>, Pos),
    /// Binary `/`: evaluate rhs with every lhs node as context.
    Path(Box<Expr>, Box<Expr>, Pos),
    /// The document root of the context item (leading `/`).
    Root(Pos),
    /// An axis step with predicates.
    AxisStep {
        axis: AxisName,
        test: NodeTest,
        predicates: Vec<Expr>,
        pos: Pos,
    },
    /// Primary expression with filter predicates: `expr[pred]`.
    Filter(Box<Expr>, Vec<Expr>, Pos),
    FunctionCall(QName, Vec<Expr>, Pos),
    Flwor {
        clauses: Vec<FlworClause>,
        where_clause: Option<Box<Expr>>,
        /// `(stable)? order by` specs.
        order_by: Vec<OrderSpec>,
        stable: bool,
        return_clause: Box<Expr>,
        pos: Pos,
    },
    Quantified {
        every: bool,
        bindings: Vec<(QName, Option<SequenceType>, Expr)>,
        satisfies: Box<Expr>,
        pos: Pos,
    },
    If {
        cond: Box<Expr>,
        then_branch: Box<Expr>,
        else_branch: Box<Expr>,
        pos: Pos,
    },
    Typeswitch {
        operand: Box<Expr>,
        cases: Vec<TypeswitchCase>,
        default_var: Option<QName>,
        default_body: Box<Expr>,
        pos: Pos,
    },
    InstanceOf(Box<Expr>, SequenceType, Pos),
    CastAs(Box<Expr>, SequenceType, Pos),
    CastableAs(Box<Expr>, SequenceType, Pos),
    TreatAs(Box<Expr>, SequenceType, Pos),
    /// `<name attr="...">content</name>`
    DirectElement {
        name: QName,
        /// Resolved attributes with value templates.
        attributes: Vec<(QName, Vec<AttrPart>)>,
        /// Namespace declarations written on this element.
        namespaces: Vec<(Option<String>, String)>,
        content: Vec<DirContent>,
        pos: Pos,
    },
    ComputedElement {
        name: Box<NameOrExpr>,
        content: Option<Box<Expr>>,
        pos: Pos,
    },
    ComputedAttribute {
        name: Box<NameOrExpr>,
        content: Option<Box<Expr>>,
        pos: Pos,
    },
    ComputedText(Box<Expr>, Pos),
    ComputedComment(Box<Expr>, Pos),
    ComputedPi {
        target: Box<NameOrExpr>,
        content: Option<Box<Expr>>,
        pos: Pos,
    },
    ComputedDocument(Box<Expr>, Pos),
    /// `ordered { e }` / `unordered { e }` — the annotation the talk
    /// says optimization exploits.
    Ordered(Box<Expr>, Pos),
    Unordered(Box<Expr>, Pos),
}

/// Computed-constructor name: constant or runtime expression.
#[derive(Debug, Clone, PartialEq)]
pub enum NameOrExpr {
    Name(QName),
    Expr(Expr),
}

impl Expr {
    pub fn pos(&self) -> Pos {
        use Expr::*;
        match self {
            Literal(_, p)
            | VarRef(_, p)
            | ContextItem(p)
            | Sequence(_, p)
            | Range(_, _, p)
            | Arith(_, _, _, p)
            | Neg(_, p)
            | Comparison(_, _, _, p)
            | And(_, _, p)
            | Or(_, _, p)
            | Union(_, _, p)
            | Intersect(_, _, p)
            | Except(_, _, p)
            | Path(_, _, p)
            | Root(p)
            | Filter(_, _, p)
            | FunctionCall(_, _, p)
            | InstanceOf(_, _, p)
            | CastAs(_, _, p)
            | CastableAs(_, _, p)
            | TreatAs(_, _, p)
            | ComputedText(_, p)
            | ComputedComment(_, p)
            | ComputedDocument(_, p)
            | Ordered(_, p)
            | Unordered(_, p) => *p,
            AxisStep { pos, .. }
            | Flwor { pos, .. }
            | Quantified { pos, .. }
            | If { pos, .. }
            | Typeswitch { pos, .. }
            | DirectElement { pos, .. }
            | ComputedElement { pos, .. }
            | ComputedAttribute { pos, .. }
            | ComputedPi { pos, .. } => *pos,
        }
    }

    /// The empty sequence `()`.
    pub fn empty(pos: Pos) -> Expr {
        Expr::Sequence(Vec::new(), pos)
    }
}

/// A global variable declaration from the prolog.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub name: QName,
    pub ty: Option<SequenceType>,
    /// `None` = `external` (bound through the API).
    pub value: Option<Expr>,
}

/// A function declaration from the prolog.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    pub name: QName,
    pub params: Vec<(QName, Option<SequenceType>)>,
    pub return_type: Option<SequenceType>,
    /// `None` = external function.
    pub body: Option<Expr>,
}

/// The prolog: everything before the query body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prolog {
    pub namespaces: Vec<(String, String)>,
    /// `declare boundary-space preserve` keeps whitespace-only text in
    /// direct constructors (default: strip).
    pub boundary_space_preserve: bool,
    pub default_element_ns: Option<String>,
    pub default_function_ns: Option<String>,
    pub variables: Vec<VarDecl>,
    pub functions: Vec<FunctionDecl>,
}

/// A whole query: prolog + body expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub prolog: Prolog,
    pub body: Expr,
}
