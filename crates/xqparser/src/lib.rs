//! # xqr-xqparser — XQuery front-end
//!
//! Character-level recursive-descent parser producing the [`ast`] the
//! compiler normalizes. Covers the language surface the talk exercises:
//! prolog declarations, FLWOR with `at`/`order by`/`stable`, quantified
//! and conditional expressions, typeswitch, the type operators, full
//! path expressions with eight axes + kind tests + predicates, direct
//! and computed constructors with correct namespace scoping, and the
//! three comparison families.

pub mod ast;
pub mod parser;
pub mod printer;
#[cfg(test)]
mod tests;

pub use ast::*;
pub use parser::{parse_expr, parse_query, FN_NS, LOCAL_NS, XDT_NS, XS_NS};
pub use printer::{print_expr, print_module};
