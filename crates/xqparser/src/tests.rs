//! Parser unit tests, organized by language area.

use crate::ast::*;
use crate::parser::{parse_expr, parse_query, FN_NS, XS_NS};
use xqr_xdm::{AtomicValue, ErrorCode, ItemType, Occurrence, QName, SequenceType};

fn p(src: &str) -> Expr {
    parse_expr(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
}

fn perr(src: &str) -> xqr_xdm::Error {
    parse_expr(src).expect_err(&format!("expected parse failure for {src:?}"))
}

mod literals {
    use super::*;

    #[test]
    fn numeric_literals() {
        assert!(matches!(
            p("150"),
            Expr::Literal(AtomicValue::Integer(150), _)
        ));
        assert!(matches!(
            p("125.0"),
            Expr::Literal(AtomicValue::Decimal(_), _)
        ));
        assert!(matches!(
            p("125.e2"),
            Expr::Literal(AtomicValue::Double(_), _)
        ));
        assert!(matches!(
            p("1.5E-2"),
            Expr::Literal(AtomicValue::Double(_), _)
        ));
        assert!(matches!(p(".5"), Expr::Literal(AtomicValue::Decimal(_), _)));
    }

    #[test]
    fn string_literals() {
        match p(r#""hello""#) {
            Expr::Literal(AtomicValue::String(s), _) => assert_eq!(&*s, "hello"),
            other => panic!("{other:?}"),
        }
        match p(r#"'it''s'"#) {
            Expr::Literal(AtomicValue::String(s), _) => assert_eq!(&*s, "it's"),
            other => panic!("{other:?}"),
        }
        match p(r#""a""b""#) {
            Expr::Literal(AtomicValue::String(s), _) => assert_eq!(&*s, "a\"b"),
            other => panic!("{other:?}"),
        }
        match p(r#""x &amp; y""#) {
            Expr::Literal(AtomicValue::String(s), _) => assert_eq!(&*s, "x & y"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_sequence_and_parens() {
        assert!(matches!(p("()"), Expr::Sequence(v, _) if v.is_empty()));
        assert!(matches!(
            p("(1)"),
            Expr::Literal(AtomicValue::Integer(1), _)
        ));
        assert!(matches!(p("(1, 2, 3)"), Expr::Sequence(v, _) if v.len() == 3));
    }

    #[test]
    fn comments_are_skipped() {
        assert!(matches!(
            p("(: c :) 1"),
            Expr::Literal(AtomicValue::Integer(1), _)
        ));
        assert!(matches!(
            p("1 (: nested (: inner :) outer :) + 2"),
            Expr::Arith(ArithOp::Add, _, _, _)
        ));
    }
}

mod operators {
    use super::*;

    #[test]
    fn arithmetic_precedence() {
        // 1 - (4 * 8.5) shape: Sub at top
        match p("1 - 4 * 8.5") {
            Expr::Arith(ArithOp::Sub, _, rhs, _) => {
                assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, _, _, _)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("5 div 6"), Expr::Arith(ArithOp::Div, _, _, _)));
        assert!(matches!(p("7 idiv 2"), Expr::Arith(ArithOp::IDiv, _, _, _)));
        assert!(matches!(p("b mod 10"), Expr::Arith(ArithOp::Mod, _, _, _)));
    }

    #[test]
    fn unary_minus() {
        assert!(matches!(p("-55.5"), Expr::Neg(_, _)));
        assert!(matches!(
            p("--1"),
            Expr::Literal(AtomicValue::Integer(1), _)
        ));
        assert!(matches!(p("+1"), Expr::Literal(AtomicValue::Integer(1), _)));
    }

    #[test]
    fn comparisons_all_families() {
        assert!(matches!(
            p("1 eq 2"),
            Expr::Comparison(CompOp::ValEq, _, _, _)
        ));
        assert!(matches!(
            p("1 = 2"),
            Expr::Comparison(CompOp::GenEq, _, _, _)
        ));
        assert!(matches!(
            p("1 != 2"),
            Expr::Comparison(CompOp::GenNe, _, _, _)
        ));
        assert!(matches!(
            p("1 <= 2"),
            Expr::Comparison(CompOp::GenLe, _, _, _)
        ));
        assert!(matches!(
            p("$a is $b"),
            Expr::Comparison(CompOp::Is, _, _, _)
        ));
        assert!(matches!(
            p("$a << $b"),
            Expr::Comparison(CompOp::Before, _, _, _)
        ));
        assert!(matches!(
            p("$a >> $b"),
            Expr::Comparison(CompOp::After, _, _, _)
        ));
    }

    #[test]
    fn logic_and_ranges() {
        assert!(matches!(p("1 and 2"), Expr::And(_, _, _)));
        assert!(matches!(p("1 or 2 and 3"), Expr::Or(_, _, _)));
        assert!(matches!(p("1 to 3"), Expr::Range(_, _, _)));
    }

    #[test]
    fn set_operators() {
        assert!(matches!(p("$x union $y"), Expr::Union(_, _, _)));
        assert!(matches!(p("($x, $y) | $z"), Expr::Union(_, _, _)));
        assert!(matches!(p("$x intersect $y"), Expr::Intersect(_, _, _)));
        assert!(matches!(p("$x except $y"), Expr::Except(_, _, _)));
    }

    #[test]
    fn type_operators() {
        assert!(matches!(
            p("5 instance of xs:integer"),
            Expr::InstanceOf(_, _, _)
        ));
        assert!(matches!(p("5 cast as xs:string"), Expr::CastAs(_, _, _)));
        assert!(matches!(
            p("$x castable as xs:integer"),
            Expr::CastableAs(_, _, _)
        ));
        assert!(matches!(p("$x treat as node()+"), Expr::TreatAs(_, _, _)));
        match p("5 instance of xs:integer?") {
            Expr::InstanceOf(_, SequenceType::Of(_, Occurrence::Optional), _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_is_operator_after_operand_wildcard_at_operand() {
        assert!(matches!(p("2 * 3"), Expr::Arith(ArithOp::Mul, _, _, _)));
        // In a path step position, * is a wildcard.
        match p("$x/*") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::AnyName,
                    ..
                } => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}

mod paths {
    use super::*;

    #[test]
    fn abbreviated_and_full_axes() {
        // $x/child::person == $x/person
        let a = p("$x/child::person");
        let b = p("$x/person");
        match (&a, &b) {
            (Expr::Path(_, s1, _), Expr::Path(_, s2, _)) => {
                let ax1 = match &**s1 {
                    Expr::AxisStep { axis, .. } => *axis,
                    other => panic!("{other:?}"),
                };
                let ax2 = match &**s2 {
                    Expr::AxisStep { axis, .. } => *axis,
                    other => panic!("{other:?}"),
                };
                assert_eq!(ax1, ax2);
                assert_eq!(ax1, AxisName::Child);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_abbreviation() {
        match p("$x/@year") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    axis: AxisName::Attribute,
                    test: NodeTest::Name(q),
                    ..
                } => {
                    assert_eq!(q, QName::local("year"));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_slash_desugars() {
        // $x//b == $x/descendant-or-self::node()/b
        match p("$x//b") {
            Expr::Path(lhs, _, _) => match *lhs {
                Expr::Path(_, dos, _) => match *dos {
                    Expr::AxisStep {
                        axis: AxisName::DescendantOrSelf,
                        test: NodeTest::AnyKind,
                        ..
                    } => {}
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rooted_paths() {
        assert!(matches!(p("/"), Expr::Root(_)));
        match p("/bib") {
            Expr::Path(root, _, _) => assert!(matches!(*root, Expr::Root(_))),
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("//book"), Expr::Path(_, _, _)));
    }

    #[test]
    fn parent_abbreviation() {
        match p("$x/..") {
            Expr::Path(_, step, _) => {
                assert!(matches!(
                    *step,
                    Expr::AxisStep {
                        axis: AxisName::Parent,
                        test: NodeTest::AnyKind,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicates_on_steps_and_primaries() {
        match p("//book[3]") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep { predicates, .. } => assert_eq!(predicates.len(), 1),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("$x[1]"), Expr::Filter(_, _, _)));
        assert!(matches!(p("(1, 2, 3)[2]"), Expr::Filter(_, _, _)));
        // The classical mistake slide: $x/a/b[1] is $x/a/(b[1])
        match p("$x/a/b[1]") {
            Expr::Path(_, step, _) => {
                assert!(
                    matches!(*step, Expr::AxisStep { ref predicates, .. } if predicates.len() == 1)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kind_tests() {
        match p("$x/text()") {
            Expr::Path(_, step, _) => {
                assert!(matches!(
                    *step,
                    Expr::AxisStep {
                        test: NodeTest::Text,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        match p("$x/comment()") {
            Expr::Path(_, step, _) => {
                assert!(matches!(
                    *step,
                    Expr::AxisStep {
                        test: NodeTest::Comment,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        match p("$x/child::element(book)") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::Element(Some(q)),
                    ..
                } => {
                    assert_eq!(q.local_name(), "book");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match p("$x/attribute::attribute(*, xs:integer)") {
            Expr::Path(_, step, _) => {
                assert!(matches!(
                    *step,
                    Expr::AxisStep {
                        test: NodeTest::Attribute(None),
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcards() {
        match p("$x/*:publisher") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::LocalWildcard(l),
                    ..
                } => {
                    assert_eq!(l, "publisher")
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let q = parse_query("declare namespace myNS = \"urn:m\"; $x/myNS:*").unwrap();
        match q.body {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::NamespaceWildcard(ns),
                    ..
                } => {
                    assert_eq!(ns, "urn:m")
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reverse_axes() {
        let e = p("$x/ancestor::*");
        match e {
            Expr::Path(_, step, _) => {
                assert!(matches!(
                    *step,
                    Expr::AxisStep {
                        axis: AxisName::Ancestor,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_as_step() {
        // $x/f(.) — any expression can be a step.
        match p("$x/f(.)") {
            Expr::Path(_, step, _) => {
                assert!(matches!(*step, Expr::FunctionCall(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_prefix_in_path_errors() {
        let e = perr("$x/zz:name");
        assert_eq!(e.code, ErrorCode::UnboundPrefix);
    }
}

mod flwor {
    use super::*;

    #[test]
    fn basic_for_let_where_return() {
        let e =
            p(r#"for $x in //bib/book let $y := $x/author where $x/title = "U" return count($y)"#);
        match e {
            Expr::Flwor {
                clauses,
                where_clause,
                order_by,
                return_clause,
                ..
            } => {
                assert_eq!(clauses.len(), 2);
                assert!(matches!(clauses[0], FlworClause::For { .. }));
                assert!(matches!(clauses[1], FlworClause::Let { .. }));
                assert!(where_clause.is_some());
                assert!(order_by.is_empty());
                assert!(matches!(*return_clause, Expr::FunctionCall(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_for_bindings() {
        let e = p("for $b in //book, $p in //publisher return ($b, $p)");
        match e {
            Expr::Flwor { clauses, .. } => assert_eq!(clauses.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn positional_variable() {
        let e = p("for $x at $i in (1 to 10) return $i");
        match e {
            Expr::Flwor { clauses, .. } => match &clauses[0] {
                FlworClause::For { position, .. } => {
                    assert_eq!(position.as_ref().unwrap(), &QName::local("i"))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn typed_bindings() {
        let e = p("for $x as xs:integer in (1,2) return $x");
        match e {
            Expr::Flwor { clauses, .. } => match &clauses[0] {
                FlworClause::For { ty, .. } => assert_eq!(
                    ty.clone().unwrap(),
                    SequenceType::atomic(xqr_xdm::AtomicType::Integer)
                ),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_variants() {
        let e = p("for $x in //a order by $x/b descending empty least, $x/c return $x");
        match e {
            Expr::Flwor {
                order_by, stable, ..
            } => {
                assert_eq!(order_by.len(), 2);
                assert!(order_by[0].descending);
                assert_eq!(order_by[0].empty_least, Some(true));
                assert!(!order_by[1].descending);
                assert!(!stable);
            }
            other => panic!("{other:?}"),
        }
        let e = p("for $x in //a stable order by $x return $x");
        assert!(matches!(e, Expr::Flwor { stable: true, .. }));
    }

    #[test]
    fn quantified_expressions() {
        let e = p("some $x in (1, 2, 3) satisfies $x eq 1");
        assert!(matches!(e, Expr::Quantified { every: false, .. }));
        let e = p("every $x in //a, $y in //b satisfies $x eq $y");
        match e {
            Expr::Quantified {
                every: true,
                bindings,
                ..
            } => assert_eq!(bindings.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conditional() {
        let e = p("if ($book/@year < 1980) then <old/> else <new/>");
        assert!(matches!(e, Expr::If { .. }));
    }

    #[test]
    fn typeswitch_expression() {
        let e = p(
            "typeswitch ($x) case $a as xs:integer return 1 case xs:string return 2 default $d return 3",
        );
        match e {
            Expr::Typeswitch {
                cases, default_var, ..
            } => {
                assert_eq!(cases.len(), 2);
                assert!(cases[0].var.is_some());
                assert!(cases[1].var.is_none());
                assert_eq!(default_var.unwrap(), QName::local("d"));
            }
            other => panic!("{other:?}"),
        }
    }
}

mod constructors {
    use super::*;

    #[test]
    fn direct_element_literal_content() {
        let e = p("<result>literal text</result>");
        match e {
            Expr::DirectElement {
                name,
                attributes,
                content,
                ..
            } => {
                assert_eq!(name, QName::local("result"));
                assert!(attributes.is_empty());
                assert_eq!(content.len(), 1);
                assert!(matches!(&content[0], DirContent::Text(t) if t == "literal text"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn enclosed_expressions() {
        let e = p("<result>{$x/name}</result>");
        match e {
            Expr::DirectElement { content, .. } => {
                assert_eq!(content.len(), 1);
                assert!(matches!(&content[0], DirContent::Enclosed(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_content_and_escapes() {
        let e = p("<r>a {{not expr}} b {1+1} c</r>");
        match e {
            Expr::DirectElement { content, .. } => {
                assert_eq!(content.len(), 3);
                assert!(matches!(&content[0], DirContent::Text(t) if t == "a {not expr} b "));
                assert!(matches!(&content[1], DirContent::Enclosed(_)));
                assert!(matches!(&content[2], DirContent::Text(t) if t == " c"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_value_templates() {
        let e = p(r#"<tp name="{$tp/@name}" fixed="yes"/>"#);
        match e {
            Expr::DirectElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert!(matches!(&attributes[0].1[0], AttrPart::Enclosed(_)));
                assert!(matches!(&attributes[1].1[0], AttrPart::Text(t) if t == "yes"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_elements() {
        let e = p("<a><b>x</b><c/></a>");
        match e {
            Expr::DirectElement { content, .. } => {
                assert_eq!(content.len(), 2);
                assert!(matches!(
                    &content[0],
                    DirContent::Child(Expr::DirectElement { .. })
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn boundary_whitespace_stripped() {
        let e = p("<a>\n  <b/>\n  <c/>\n</a>");
        match e {
            Expr::DirectElement { content, .. } => {
                assert_eq!(content.len(), 2, "{content:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constructor_namespace_scoping() {
        // The talk's nested-scopes example: xmlns on the constructor
        // affects names inside, including enclosed query expressions.
        let q = parse_query(
            r#"declare namespace ns = "uri1";
               <b xmlns:ns="uri2">{ $x/ns:b }</b>"#,
        )
        .unwrap();
        match q.body {
            Expr::DirectElement {
                content,
                namespaces,
                ..
            } => {
                assert_eq!(namespaces.len(), 1);
                match &content[0] {
                    DirContent::Enclosed(Expr::Path(_, step, _)) => match &**step {
                        Expr::AxisStep {
                            test: NodeTest::Name(q),
                            ..
                        } => {
                            assert_eq!(q.namespace(), Some("uri2"));
                        }
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        // And outside the constructor, ns still means uri1.
        let q2 = parse_query(
            r#"declare namespace ns = "uri1";
               (<b xmlns:ns="uri2">x</b>, $x/ns:b)"#,
        )
        .unwrap();
        match q2.body {
            Expr::Sequence(items, _) => match &items[1] {
                Expr::Path(_, step, _) => match &**step {
                    Expr::AxisStep {
                        test: NodeTest::Name(q),
                        ..
                    } => {
                        assert_eq!(q.namespace(), Some("uri1"));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_namespace_on_constructor() {
        let e = p(r#"<a xmlns="urn:d"><b/></a>"#);
        match e {
            Expr::DirectElement { name, content, .. } => {
                assert_eq!(name.namespace(), Some("urn:d"));
                match &content[0] {
                    DirContent::Child(Expr::DirectElement { name, .. }) => {
                        assert_eq!(name.namespace(), Some("urn:d"));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn computed_constructors() {
        assert!(matches!(
            p("element foo { 1 }"),
            Expr::ComputedElement { .. }
        ));
        assert!(matches!(
            p("element { $n } { 1 }"),
            Expr::ComputedElement { .. }
        ));
        assert!(matches!(
            p("attribute year { 1967 }"),
            Expr::ComputedAttribute { .. }
        ));
        assert!(matches!(p("text { \"x\" }"), Expr::ComputedText(_, _)));
        assert!(matches!(
            p("comment { \"x\" }"),
            Expr::ComputedComment(_, _)
        ));
        assert!(matches!(
            p("document { <a/> }"),
            Expr::ComputedDocument(_, _)
        ));
    }

    #[test]
    fn element_as_path_step_still_works() {
        // `element` not followed by `{` must stay a name test.
        match p("$x/element") {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::Name(q),
                    ..
                } => {
                    assert_eq!(q.local_name(), "element")
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn talk_style_comment_in_constructor() {
        let e = p("<a>{-- a note --}<b/></a>");
        match e {
            Expr::DirectElement { content, .. } => assert_eq!(content.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entity_refs_in_content() {
        let e = p("<a>&lt;tag&gt; &amp; more</a>");
        match e {
            Expr::DirectElement { content, .. } => {
                assert!(matches!(&content[0], DirContent::Text(t) if t == "<tag> & more"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constructor_errors() {
        assert!(parse_expr("<a><b></a></b>").is_err());
        assert!(parse_expr("<a>").is_err());
        let e = perr(r#"<a x="1" x="2"/>"#);
        assert_eq!(e.code, ErrorCode::DuplicateAttribute);
        assert!(parse_expr("<a>}</a>").is_err());
    }
}

mod prolog {
    use super::*;

    #[test]
    fn namespace_declarations() {
        let m = parse_query(r#"declare namespace foo = "urn:foo"; <foo:a/>"#).unwrap();
        assert_eq!(m.prolog.namespaces.len(), 1);
        match m.body {
            Expr::DirectElement { name, .. } => assert_eq!(name.namespace(), Some("urn:foo")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_element_namespace() {
        let m = parse_query(r#"declare default element namespace "urn:d"; $x/book"#).unwrap();
        match m.body {
            Expr::Path(_, step, _) => match *step {
                Expr::AxisStep {
                    test: NodeTest::Name(q),
                    ..
                } => {
                    assert_eq!(q.namespace(), Some("urn:d"))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_declarations() {
        let m = parse_query(
            r#"declare variable $x as xs:integer external;
               declare variable $y := 42;
               $x + $y"#,
        )
        .unwrap();
        assert_eq!(m.prolog.variables.len(), 2);
        assert!(m.prolog.variables[0].value.is_none());
        assert!(m.prolog.variables[1].value.is_some());
    }

    #[test]
    fn function_declarations() {
        let m = parse_query(
            r#"declare function ns:foo($x as xs:integer) as element() { <a>{$x + 1}</a> };
               declare namespace ns = "urn:n";
               1"#,
        );
        // ns declared after use → unbound prefix error is acceptable;
        // declare ns first instead:
        assert!(m.is_err() || m.is_ok());
        let m = parse_query(
            r#"declare namespace ns = "urn:n";
               declare function ns:foo($x as xs:integer) as element() { <a>{$x + 1}</a> };
               ns:foo(2)"#,
        )
        .unwrap();
        assert_eq!(m.prolog.functions.len(), 1);
        let f = &m.prolog.functions[0];
        assert_eq!(f.name.namespace(), Some("urn:n"));
        assert_eq!(f.params.len(), 1);
        assert!(f.body.is_some());
        assert!(matches!(m.body, Expr::FunctionCall(_, _, _)));
    }

    #[test]
    fn unprefixed_function_goes_to_local() {
        let m = parse_query("declare function add($a, $b) { $a + $b }; add(1, 2)").unwrap();
        assert_eq!(
            m.prolog.functions[0].name.namespace(),
            Some(crate::parser::LOCAL_NS)
        );
    }

    #[test]
    fn old_style_define_variable() {
        let m = parse_query("define variable $zero as xs:integer {0} $zero").unwrap();
        assert_eq!(m.prolog.variables.len(), 1);
    }

    #[test]
    fn external_functions() {
        let m = parse_query(
            r#"declare namespace bea = "urn:bea";
               declare function bea:foo() as node()* external;
               bea:foo()"#,
        )
        .unwrap();
        assert!(m.prolog.functions[0].body.is_none());
    }
}

mod functions {
    use super::*;

    #[test]
    fn function_calls_resolve_to_default_fn_namespace() {
        match p("count($x)") {
            Expr::FunctionCall(name, args, _) => {
                assert_eq!(name.namespace(), Some(FN_NS));
                assert_eq!(args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xs_constructor_functions() {
        match p(r#"xs:date("2002-05-20")"#) {
            Expr::FunctionCall(name, _, _) => {
                assert_eq!(name.namespace(), Some(XS_NS));
                assert_eq!(name.local_name(), "date");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_calls_and_sequences() {
        match p("concat(\"a\", \"b\", string(1))") {
            Expr::FunctionCall(_, args, _) => assert_eq!(args.len(), 3),
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("true()"), Expr::FunctionCall(_, _, _)));
    }
}

mod types {
    use super::*;

    #[test]
    fn sequence_types() {
        match p("$x instance of element(book)*") {
            Expr::InstanceOf(
                _,
                SequenceType::Of(ItemType::Kind(_, _), Occurrence::ZeroOrMore),
                _,
            ) => {}
            other => panic!("{other:?}"),
        }
        match p("$x instance of empty()") {
            Expr::InstanceOf(_, SequenceType::Empty, _) => {}
            other => panic!("{other:?}"),
        }
        match p("$x instance of item()+") {
            Expr::InstanceOf(_, SequenceType::Of(ItemType::AnyItem, Occurrence::OneOrMore), _) => {}
            other => panic!("{other:?}"),
        }
        match p("$x instance of document-node()") {
            Expr::InstanceOf(_, SequenceType::Of(ItemType::Kind(_, _), Occurrence::One), _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_type_errors() {
        assert!(parse_expr("$x instance of xs:nothing").is_err());
        assert!(parse_expr("$x cast as xs:nope").is_err());
    }
}

mod errors {
    use super::*;

    #[test]
    fn syntax_errors_have_positions() {
        let e = perr("1 +");
        assert!(e.position.is_some());
        assert_eq!(e.code, ErrorCode::Syntax);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_expr("1 1").is_err());
        // Note: "1 )" — the ')' is trailing garbage too.
        assert!(parse_expr("1 )").is_err());
    }

    #[test]
    fn unterminated_things() {
        assert!(parse_expr("\"abc").is_err());
        assert!(parse_expr("(1, 2").is_err());
        assert!(parse_expr("for $x in (1,2) where 1").is_err());
    }
}

mod big_queries {
    use super::*;

    /// A condensed version of the talk's 60%-of-a-real-customer
    /// trading-partner query — the parser must handle the nesting depth
    /// and constructor/FLWOR interleaving.
    #[test]
    fn trading_partner_query_parses() {
        let q = r#"
            let $wlc := doc("tests/ebsample/data/ebSample.xml")
            let $tp-list :=
              for $tp in $wlc/wlc/trading-partner
              return
                <trading-partner
                  name="{$tp/@name}"
                  business-id="{$tp/party-identifier/@business-id}"
                  type="{$tp/@type}">
                  { for $tp-ad in $tp/address return $tp-ad }
                  { for $eps in $wlc/extended-property-set
                    where $tp/@extended-property-set-name eq $eps/@name
                    return $eps }
                  { for $client-cert in $tp/client-certificate
                    return <client-certificate name="{$client-cert/@name}"></client-certificate> }
                  {
                    for $eb-dc in $tp/delivery-channel
                    for $eb-de in $tp/document-exchange
                    for $eb-tp in $tp/transport
                    where $eb-dc/@document-exchange-name eq $eb-de/@name
                      and $eb-dc/@transport-name eq $eb-tp/@name
                      and $eb-de/@business-protocol-name eq "ebXML"
                    return
                      <ebxml-binding name="{$eb-dc/@name}">
                        {
                          if (empty($eb-de/EBXML-binding/@retries))
                          then ()
                          else $eb-de/EBXML-binding/@retries
                        }
                        <transport protocol="{$eb-tp/@protocol}"
                                   endpoint="{$eb-tp/endpoint[1]/@uri}">
                          {
                            for $ca in $wlc/wlc/collaboration-agreement
                            for $p1 in $ca/party[1]
                            for $p2 in $ca/party[2]
                            where $p1/@delivery-channel-name eq $eb-dc/@name
                            return
                              if ($p1/@trading-partner-name = $tp/@name)
                              then <authentication client-partner-name="{$p2/@name}"/>
                              else <authentication client-partner-name="{$p1/@name}"/>
                          }
                        </transport>
                      </ebxml-binding>
                  }
                </trading-partner>
            return <result>{ $tp-list }</result>
        "#;
        let m = parse_query(q).unwrap();
        assert!(matches!(m.body, Expr::Flwor { .. }));
    }

    #[test]
    fn deeply_nested_expressions() {
        let mut q = String::new();
        for _ in 0..150 {
            q.push('(');
        }
        q.push('1');
        for _ in 0..150 {
            q.push(')');
        }
        assert!(matches!(p(&q), Expr::Literal(AtomicValue::Integer(1), _)));
    }

    #[test]
    fn pathological_nesting_fails_gracefully() {
        // Past the guard: a limit error, not a stack overflow.
        let mut q = String::new();
        for _ in 0..500 {
            q.push('(');
        }
        q.push('1');
        for _ in 0..500 {
            q.push(')');
        }
        let e = super::parse_expr(&q).unwrap_err();
        assert_eq!(e.code, ErrorCode::Limit);
    }
}
