//! # xqr-faults — deterministic failpoints for the whole stack.
//!
//! A streaming processor can fail at any `next()` deep inside a
//! pipeline; this crate makes every such failure *injectable* so the
//! chaos suite can prove the stack's invariant: an injected fault yields
//! either a correct result (after retry/degradation) or a stable coded
//! error — never a wrong answer, a process abort, a deadlock, or a
//! leaked store document.
//!
//! ## Sites
//!
//! A **faultpoint** is a named site compiled into production code:
//!
//! ```ignore
//! xqr_faults::faultpoint!("store.read");
//! ```
//!
//! With the `failpoints` feature **off** (the default) the macro expands
//! to nothing — zero code, zero branches, verified by the bench guard in
//! `benches/engine.rs`. With the feature **on**, each site costs one
//! relaxed atomic load until a schedule is installed.
//!
//! ## Schedules
//!
//! A [`FaultSchedule`] is a seed plus rules. Every decision is a pure
//! function of `(seed, site, per-site hit index)`, so a chaos run is
//! exactly replayable from its seed: no clocks, no thread timing, no
//! global RNG. Rules choose a [`FaultKind`]: an error return
//! (`err:XQRL0005 Unavailable`), a panic (contained by the engine's
//! panic boundary as `err:XQRL0000`), a delay, a budget trip
//! (`err:XQRL0001`), or a spurious cancellation (`err:XQRL0003`).
//!
//! [`install`] takes a process-wide exclusive lock held by the returned
//! [`FaultGuard`]; concurrent chaos tests serialize on it instead of
//! trampling each other's schedules.

use std::time::Duration;
#[cfg(feature = "failpoints")]
use xqr_xdm::Error;
use xqr_xdm::Result;

/// What an armed faultpoint does when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return `err:XQRL0005 Unavailable` — a transient, retryable
    /// subsystem failure.
    ErrorReturn,
    /// Panic at the site. The engine's containment boundary turns this
    /// into `err:XQRL0000`; outside it, the caller must catch or degrade
    /// (lock-poison recovery is part of what this kind exercises).
    Panic,
    /// Sleep for the given duration, then proceed normally — exercises
    /// deadlines and queue back-pressure, not error paths.
    Delay(Duration),
    /// Return `err:XQRL0003 Cancelled` as if an embedder raced a cancel.
    Cancel,
    /// Return `err:XQRL0001 Limit` as if a budget tripped at the site.
    BudgetTrip,
}

/// One injection rule: which sites, which fault, how often.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Site name, exact (`"store.read"`) or a prefix wildcard
    /// (`"store.*"`, `"*"`).
    pub site: String,
    pub kind: FaultKind,
    /// Fire on (deterministically) one in `one_in` eligible hits;
    /// `1` fires on every eligible hit. Clamped to at least 1.
    pub one_in: u64,
    /// Let the first `skip_first` hits of the site pass untouched, so a
    /// pipeline gets partway in before the fault lands mid-stream.
    pub skip_first: u64,
    /// Stop firing after this many injections (`None` = unbounded).
    /// Bounded rules are what make "correct after retry" reachable.
    pub max_fires: Option<u64>,
}

impl FaultRule {
    pub fn new(site: impl Into<String>, kind: FaultKind) -> Self {
        FaultRule {
            site: site.into(),
            kind,
            one_in: 1,
            skip_first: 0,
            max_fires: None,
        }
    }

    pub fn one_in(mut self, n: u64) -> Self {
        self.one_in = n.max(1);
        self
    }

    pub fn skip_first(mut self, n: u64) -> Self {
        self.skip_first = n;
        self
    }

    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }

    #[cfg(feature = "failpoints")]
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// A seeded set of [`FaultRule`]s. Identical schedules make identical
/// decisions — the whole point.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultSchedule {
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            rules: Vec::new(),
        }
    }

    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// SplitMix64 — the standard stateless seed scrambler.
#[cfg(feature = "failpoints")]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "failpoints")]
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// True when this build carries the failpoint machinery (the
/// `failpoints` feature). Bench builds assert this is `false`.
pub const fn compiled_with_failpoints() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod active {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard};

    struct Registry {
        schedule: FaultSchedule,
        /// Per-site hit counters (every traversal of an armed site).
        hits: HashMap<&'static str, u64>,
        /// Per-site fire counters (hits where a rule injected).
        site_fires: HashMap<&'static str, u64>,
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static TOTAL_FIRES: AtomicU64 = AtomicU64::new(0);
    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
    /// Serializes installations: chaos tests in one binary take turns.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    fn registry() -> MutexGuard<'static, Option<Registry>> {
        // A panic *injected while the registry lock is held* cannot
        // happen (fault execution runs after release), but a panicking
        // chaos test thread can still poison it; recover — the registry
        // is only counters.
        REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Keeps a schedule installed; uninstalls on drop. Holds the
    /// process-wide installation lock, so at most one schedule is ever
    /// active and concurrent chaos tests serialize.
    pub struct FaultGuard {
        _exclusive: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            ACTIVE.store(false, Ordering::SeqCst);
            *registry() = None;
        }
    }

    /// Install `schedule`, arming every faultpoint in the process until
    /// the returned guard drops. Blocks while another schedule is live.
    pub fn install(schedule: FaultSchedule) -> FaultGuard {
        let exclusive = INSTALL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        *registry() = Some(Registry {
            schedule,
            hits: HashMap::new(),
            site_fires: HashMap::new(),
        });
        TOTAL_FIRES.store(0, Ordering::SeqCst);
        ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard {
            _exclusive: exclusive,
        }
    }

    /// The fast gate the faultpoint macros consult: one relaxed load.
    #[inline]
    pub fn armed() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Injections fired since the current schedule was installed.
    pub fn fires() -> u64 {
        TOTAL_FIRES.load(Ordering::Relaxed)
    }

    /// Hits (armed traversals) of one site under the current schedule.
    pub fn hits_at(site: &'static str) -> u64 {
        registry()
            .as_ref()
            .and_then(|r| r.hits.get(site).copied())
            .unwrap_or(0)
    }

    /// Injections fired at one site under the current schedule.
    pub fn fires_at(site: &'static str) -> u64 {
        registry()
            .as_ref()
            .and_then(|r| r.site_fires.get(site).copied())
            .unwrap_or(0)
    }

    /// Decide whether a rule fires for hit number `hit` of `site`.
    fn decide(schedule: &FaultSchedule, site: &str, hit: u64) -> Option<FaultKind> {
        for rule in &schedule.rules {
            if !rule.matches(site) || hit < rule.skip_first {
                continue;
            }
            let eligible = hit - rule.skip_first;
            let roll = splitmix64(schedule.seed ^ fnv1a(site) ^ eligible.wrapping_mul(0x9E37));
            if roll.is_multiple_of(rule.one_in.max(1)) {
                return Some(rule.kind);
            }
        }
        None
    }

    /// Evaluate a faultpoint. Called by the macros only when [`armed`].
    /// Error-class kinds return `Err`; `Panic` panics; `Delay` sleeps.
    pub fn evaluate(site: &'static str) -> Result<()> {
        let kind = {
            let mut reg = registry();
            let Some(reg) = reg.as_mut() else {
                return Ok(());
            };
            let hit = reg.hits.entry(site).or_insert(0);
            let this_hit = *hit;
            *hit += 1;
            let mut fired = None;
            if let Some(kind) = decide(&reg.schedule, site, this_hit) {
                // Bound per-rule firing via the site fire counter: rules
                // are per-site in practice, and the bound is what lets a
                // retry eventually succeed.
                let fires = reg.site_fires.entry(site).or_insert(0);
                let cap = reg
                    .schedule
                    .rules
                    .iter()
                    .find(|r| r.matches(site))
                    .and_then(|r| r.max_fires);
                if cap.is_none_or(|max| *fires < max) {
                    *fires += 1;
                    fired = Some(kind);
                }
            }
            fired
            // Lock released here: fault execution (sleep, panic) must
            // never hold the registry.
        };
        match kind {
            None => Ok(()),
            Some(k) => {
                TOTAL_FIRES.fetch_add(1, Ordering::Relaxed);
                match k {
                    FaultKind::ErrorReturn => {
                        Err(Error::unavailable(format!("injected fault at {site}")))
                    }
                    FaultKind::Cancel => Err(Error::cancelled(format!(
                        "injected spurious cancellation at {site}"
                    ))),
                    FaultKind::BudgetTrip => {
                        Err(Error::limit(format!("injected budget trip at {site}")))
                    }
                    FaultKind::Delay(d) => {
                        std::thread::sleep(d);
                        Ok(())
                    }
                    FaultKind::Panic => panic!("injected panic at faultpoint {site}"),
                }
            }
        }
    }

    /// [`evaluate`] for sites that cannot return an error: error-class
    /// kinds are skipped, `Panic` and `Delay` still execute.
    pub fn evaluate_infallible(site: &'static str) {
        match evaluate(site) {
            Ok(()) => {}
            Err(_) => {
                // The fire was counted; an error-class kind at an
                // infallible site degrades to "nothing happened".
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use active::{evaluate, evaluate_infallible, fires, fires_at, hits_at, install, FaultGuard};

#[cfg(feature = "failpoints")]
#[inline]
pub fn armed() -> bool {
    active::armed()
}

/// Feature-off stub: never armed, so `check`/the macros fold away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn armed() -> bool {
    false
}

/// Evaluate the faultpoint `site` if a schedule is armed. The callable
/// form of [`faultpoint!`] for sites that want to branch on the outcome
/// instead of propagating it. Always `Ok(())` when the feature is off.
#[inline]
pub fn check(site: &'static str) -> Result<()> {
    #[cfg(feature = "failpoints")]
    if armed() {
        return evaluate(site);
    }
    let _ = site;
    Ok(())
}

/// Faultpoint in a function returning [`xqr_xdm::Result`]: injected
/// error-class faults propagate with `?`; panics and delays execute in
/// place. Expands to nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        if $crate::armed() {
            $crate::evaluate($site)?;
        }
    };
}

/// No-op: the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {};
}

/// Faultpoint in a function that cannot return an error: only `Panic`
/// and `Delay` kinds execute; error-class kinds are ignored. Expands to
/// nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! faultpoint_infallible {
    ($site:expr) => {
        if $crate::armed() {
            $crate::evaluate_infallible($site);
        }
    };
}

/// No-op: the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! faultpoint_infallible {
    ($site:expr) => {};
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use xqr_xdm::ErrorCode;

    fn probe(site: &'static str) -> Result<()> {
        faultpoint!(site);
        Ok(())
    }

    #[test]
    fn unarmed_faultpoints_pass() {
        assert!(!armed());
        probe("nowhere").unwrap();
    }

    #[test]
    fn error_rule_fires_with_stable_code_and_uninstalls_on_drop() {
        {
            let _g = install(
                FaultSchedule::new(1).rule(FaultRule::new("store.read", FaultKind::ErrorReturn)),
            );
            assert!(armed());
            let err = probe("store.read").unwrap_err();
            assert_eq!(err.code, ErrorCode::Unavailable);
            assert_eq!(err.code.as_str(), "XQRL0005");
            assert!(err.is_retryable());
            probe("store.load").unwrap(); // unmatched site passes
            assert_eq!(fires(), 1);
            assert_eq!(fires_at("store.read"), 1);
            assert_eq!(hits_at("store.read"), 1);
        }
        assert!(!armed());
        probe("store.read").unwrap();
    }

    #[test]
    fn skip_first_and_max_fires_bound_injection() {
        let _g = install(
            FaultSchedule::new(7).rule(
                FaultRule::new("eval.next", FaultKind::BudgetTrip)
                    .skip_first(2)
                    .max_fires(1),
            ),
        );
        probe("eval.next").unwrap();
        probe("eval.next").unwrap();
        let err = probe("eval.next").unwrap_err();
        assert_eq!(err.code, ErrorCode::Limit);
        // Bounded: later hits pass — the shape retry loops rely on.
        for _ in 0..10 {
            probe("eval.next").unwrap();
        }
        assert_eq!(fires(), 1);
    }

    #[test]
    fn wildcard_rules_match_prefixes() {
        let _g = install(FaultSchedule::new(3).rule(FaultRule::new("store.*", FaultKind::Cancel)));
        assert_eq!(
            probe("store.remove").unwrap_err().code,
            ErrorCode::Cancelled
        );
        probe("plans.insert").unwrap();
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let _g = install(
                FaultSchedule::new(seed)
                    .rule(FaultRule::new("xml.read", FaultKind::ErrorReturn).one_in(3)),
            );
            (0..32).map(|_| probe("xml.read").is_err()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same decisions");
        assert_ne!(a, c, "different seed, different decisions");
        assert!(a.iter().any(|f| *f) && a.iter().any(|f| !*f), "{a:?}");
    }

    #[test]
    fn infallible_sites_only_panic_or_delay() {
        let _g = install(
            FaultSchedule::new(5).rule(FaultRule::new("store.remove", FaultKind::ErrorReturn)),
        );
        // Error kind at an infallible site: counted, but nothing thrown.
        evaluate_infallible("store.remove");
        assert_eq!(fires(), 1);
    }

    #[test]
    fn injected_panic_carries_the_site_name() {
        let _g =
            install(FaultSchedule::new(9).rule(FaultRule::new("pool.dispatch", FaultKind::Panic)));
        let payload = std::panic::catch_unwind(|| probe("pool.dispatch")).unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("pool.dispatch"), "{msg}");
    }
}
