//! Standing continuous queries over document streams — the paper's
//! message-broker scenario inverted into pub/sub: clients register
//! XQuery/XPath subscriptions once, documents arrive as a stream, and
//! each document is matched against *all* subscriptions in one shared
//! pass.
//!
//! Three pieces:
//!
//! - [`CombinedAutomaton`] / [`run_document`] — the subscription set's
//!   streamable patterns compiled into one shared-prefix trie run as an
//!   NFA state-set per document, with subtree `skip()` pruning when no
//!   live state can match;
//! - [`SubscriptionRegistry`] — generation-checked [`SubId`]s, per-
//!   subscription budgets and delivery sinks, and the publish path
//!   (shared pass + one-shot fallback over a single materialized
//!   document for non-streamable plans);
//! - [`PublishReport`] / [`SubscribeStats`] — per-publish outcomes and
//!   the counters the service surfaces.
//!
//! The correctness contract, enforced by the pubsub harness leg: N
//! standing subscriptions over a document stream ≡ N independent
//! one-shot queries per document — byte-for-byte, or the same stable
//! coded error, never cross-contamination.

mod automaton;
mod registry;

pub use automaton::{
    run_document, CombinedAutomaton, CombinedOutcome, CombinedRun, PatternId, PushAction,
};
pub use registry::{
    CollectingSink, Delivery, PublishReport, PublishSession, SubId, SubscribeStats,
    SubscriptionRegistry, SubscriptionSink,
};
