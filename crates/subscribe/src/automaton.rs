//! The combined matcher: every registered streamable pattern compiled
//! into ONE shared-prefix automaton, run once per published document.
//!
//! # Construction
//!
//! The automaton is a trie over `(descendant, QName)` steps: patterns
//! sharing a step prefix share the trie path (YFilter-style), so
//! matching cost scales with the *distinct structure* of the
//! subscription set, not its cardinality — 256 subscriptions over
//! common `//a/b/...` stems cost barely more than one.
//!
//! # Execution
//!
//! An NFA state-set run over the token stream. Each open element carries
//! a set of states; a state is a trie node in one of two modes:
//!
//! - **full** (`node << 1`): the node's path just matched ending at this
//!   element. Child and descendant out-edges both apply below it.
//! - **residual** (`node << 1 | 1`): the node matched at some ancestor
//!   and survives only because it has descendant out-edges; child edges
//!   do NOT apply (they are anchored to the element that completed the
//!   prefix). This distinction is what makes mixed child/descendant
//!   fan-out correct — a plain self-loop over the trie node would let
//!   child edges fire at arbitrary depth.
//!
//! A pattern accepts when its trie leaf is entered in full mode. Unlike
//! the single-query [`StreamMatcher`](xqr_runtime::StreamMatcher)
//! (outermost-match semantics), the combined run emits **every** match,
//! nested ones included, in document order — exactly the node set
//! materialized evaluation returns, so one shared pass substitutes for
//! N independent one-shot queries byte-for-byte.
//!
//! When the state set of an element comes up empty and no capture is in
//! flight, the whole subtree is `skip()`ed — the paper's pruning,
//! shared across every subscription at once.

use xqr_runtime::{StreamPattern, StreamStats};
use xqr_tokenstream::{Token, TokenIterator, TokenResolve};
use xqr_xdm::{QName, Result};
use xqr_xmlparse::{Attribute, NamespaceDecl, WriterOptions, XmlEvent, XmlWriter};

/// Index of a pattern in the slice the automaton was built from.
pub type PatternId = u32;

#[derive(Debug, Default)]
struct Node {
    /// Out-edges taken only from an element that completed this node's
    /// path (full mode). `None` = wildcard.
    child_edges: Vec<(Option<QName>, u32)>,
    /// Out-edges applicable at any depth below a completion.
    desc_edges: Vec<(Option<QName>, u32)>,
    /// Patterns whose full path ends here.
    accepts: Vec<PatternId>,
}

/// The shared-prefix trie/NFA over a set of streamable patterns.
#[derive(Debug)]
pub struct CombinedAutomaton {
    nodes: Vec<Node>,
    patterns: usize,
}

impl CombinedAutomaton {
    /// Build the trie; patterns keep their slice index as [`PatternId`].
    pub fn build(patterns: &[StreamPattern]) -> CombinedAutomaton {
        let mut nodes = vec![Node::default()];
        for (pid, pat) in patterns.iter().enumerate() {
            let mut cur = 0usize;
            for step in &pat.steps {
                let found = {
                    let list = if step.descendant {
                        &nodes[cur].desc_edges
                    } else {
                        &nodes[cur].child_edges
                    };
                    list.iter().find(|(n, _)| *n == step.name).map(|&(_, t)| t)
                };
                cur = match found {
                    Some(t) => t as usize,
                    None => {
                        let t = nodes.len();
                        nodes.push(Node::default());
                        let list = if step.descendant {
                            &mut nodes[cur].desc_edges
                        } else {
                            &mut nodes[cur].child_edges
                        };
                        list.push((step.name.clone(), t as u32));
                        t
                    }
                };
            }
            nodes[cur].accepts.push(pid as PatternId);
        }
        CombinedAutomaton {
            nodes,
            patterns: patterns.len(),
        }
    }

    /// Trie size — the quantity matching cost actually scales with.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// One NFA step: from the parent element's state set and a child
    /// element's name, compute the child's state set and the patterns
    /// accepting at it. `out`/`accepted` are scratch, cleared here.
    fn advance(
        &self,
        parent: &[u32],
        name: &QName,
        out: &mut Vec<u32>,
        accepted: &mut Vec<PatternId>,
    ) {
        out.clear();
        accepted.clear();
        for &s in parent {
            let node = &self.nodes[(s >> 1) as usize];
            let residual = s & 1 == 1;
            if !residual {
                for (n, t) in &node.child_edges {
                    if n.as_ref().is_none_or(|q| q == name) {
                        out.push(t << 1);
                    }
                }
            }
            for (n, t) in &node.desc_edges {
                if n.as_ref().is_none_or(|q| q == name) {
                    out.push(t << 1);
                }
            }
            if !node.desc_edges.is_empty() {
                // Survive below in residual mode: descendant edges stay
                // live at any depth, child edges are spent.
                out.push(s | 1);
            }
        }
        out.sort_unstable();
        out.dedup();
        for &s in out.iter() {
            if s & 1 == 0 {
                accepted.extend(self.nodes[(s >> 1) as usize].accepts.iter().copied());
            }
        }
        accepted.sort_unstable();
        accepted.dedup();
    }
}

/// Per-pattern results of one document pass: the serialized matches in
/// document order, or the error (budget trip, typically) that stopped
/// collection for that pattern alone.
#[derive(Debug)]
pub struct CombinedOutcome {
    pub per_pattern: Vec<Result<Vec<String>>>,
    pub stats: StreamStats,
}

/// An in-flight capture: one matched element being serialized for one or
/// more accepting patterns.
struct Capture {
    /// Open-element depth of the captured element (captures form a
    /// stack: strictly increasing depth).
    depth: usize,
    writer: XmlWriter,
    /// `(pattern, reserved match slot)` recipients. The slot was
    /// reserved at capture open, so nested matches land in document
    /// order of their start tags even though inner captures close first.
    recipients: Vec<(PatternId, usize)>,
}

/// What the driver should do after a pushed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushAction {
    /// Keep feeding tokens.
    Continue,
    /// The element just opened cannot contribute to any subscription:
    /// a *pull* driver should `skip_subtree()` on its iterator and
    /// report the count via [`CombinedRun::note_skipped`]. A *push*
    /// driver (tokens arrive whether it wants them or not) may ignore
    /// the hint — the run absorbs the dead subtree internally, at one
    /// depth-counter tick per token.
    SkipSubtree,
}

fn flush_pending(
    pending: &mut Option<(QName, Vec<Attribute>, Vec<NamespaceDecl>)>,
    captures: &mut [Capture],
) -> Result<()> {
    if let Some((name, attributes, namespaces)) = pending.take() {
        for c in captures.iter_mut() {
            c.writer.write(&XmlEvent::StartElement {
                name: name.clone(),
                attributes: attributes.clone(),
                namespaces: namespaces.clone(),
                empty: false,
            })?;
        }
    }
    Ok(())
}

/// The resumable state of one document pass: everything `run_document`
/// used to keep on its stack, liftable across chunk boundaries.
///
/// A pull driver (whole document in hand) loops `next_token` → [`push`]
/// and honours [`PushAction::SkipSubtree`] with a real `skip_subtree`.
/// A push driver (chunked ingestion: tokens appear as network bytes
/// arrive) calls [`push`] for whatever is available, in any number of
/// installments, and [`finish`]es when the producer signals end of
/// document. Both drivers produce identical [`CombinedOutcome`]s —
/// results, errors, and stats — which is what makes `publish_chunked`
/// byte-equivalent to `publish`.
///
/// The automaton is passed to [`push`] rather than stored so sessions
/// can own the run alongside the `Arc` of the plan that holds the
/// automaton; callers must pass the same automaton every time.
///
/// [`push`]: CombinedRun::push
/// [`finish`]: CombinedRun::finish
pub struct CombinedRun {
    per_pattern: Vec<Result<Vec<String>>>,
    stats: StreamStats,
    // Flat state-set arena: `states[bounds[d]..bounds[d+1]]` is the set
    // for open-element depth d+1; the trailing segment is the top.
    states: Vec<u32>,
    bounds: Vec<u32>,
    scratch: Vec<u32>,
    accepted: Vec<PatternId>,
    captures: Vec<Capture>,
    // Start-tag buffer: attributes/namespace tokens arrive after
    // StartElement; the tag is written to capture writers on the first
    // non-attribute token.
    pending: Option<(QName, Vec<Attribute>, Vec<NamespaceDecl>)>,
    // Nonzero while inside a dead subtree a push driver couldn't skip:
    // open-element depth below the dead element's parent.
    skip_depth: usize,
}

impl CombinedRun {
    pub fn new(automaton: &CombinedAutomaton) -> CombinedRun {
        CombinedRun {
            per_pattern: (0..automaton.pattern_count())
                .map(|_| Ok(Vec::new()))
                .collect(),
            stats: StreamStats::default(),
            states: vec![0], // trie root, full mode
            bounds: Vec::new(),
            scratch: Vec::new(),
            accepted: Vec::new(),
            captures: Vec::new(),
            pending: None,
            skip_depth: 0,
        }
    }

    /// Feed one token. `src` resolves its pooled ids (the iterator or
    /// tokenizer that produced it); `charge(pattern, bytes)` is invoked
    /// once per delivered match for per-subscription output budgets —
    /// an error there stops collection for that pattern only, while the
    /// shared pass and every other pattern continue. A returned error
    /// means the pass itself failed (capture serialization).
    pub fn push<R, F>(
        &mut self,
        automaton: &CombinedAutomaton,
        tok: &Token,
        src: &R,
        charge: &mut F,
    ) -> Result<PushAction>
    where
        R: TokenResolve + ?Sized,
        F: FnMut(PatternId, u64) -> Result<()>,
    {
        if self.skip_depth > 0 {
            // Inside a dead subtree the push driver couldn't skip:
            // count depth, touch nothing else. Matches the pull path's
            // accounting exactly — skip_subtree counts every consumed
            // token including the matching close.
            self.stats.tokens_skipped += 1;
            if tok.opens() {
                self.skip_depth += 1;
            } else if tok.closes() {
                self.skip_depth -= 1;
            }
            return Ok(PushAction::Continue);
        }
        self.stats.tokens_seen += 1;
        match tok {
            Token::StartDocument | Token::EndDocument => {}
            Token::StartElement(nid) => {
                let name = src.name(*nid);
                flush_pending(&mut self.pending, &mut self.captures)?;
                let start = self.bounds.last().copied().unwrap_or(0) as usize;
                automaton.advance(
                    &self.states[start..],
                    &name,
                    &mut self.scratch,
                    &mut self.accepted,
                );
                self.bounds.push(self.states.len() as u32);
                self.states.extend_from_slice(&self.scratch);
                let depth = self.bounds.len();
                // Open at most one capture per element; all accepting
                // patterns still collecting share its writer.
                let mut recipients: Vec<(PatternId, usize)> = Vec::new();
                for &pid in &self.accepted {
                    if let Ok(slots) = &mut self.per_pattern[pid as usize] {
                        slots.push(String::new()); // reserve in doc order
                        recipients.push((pid, slots.len() - 1));
                    }
                }
                if !recipients.is_empty() {
                    self.captures.push(Capture {
                        depth,
                        writer: XmlWriter::new(WriterOptions::default()),
                        recipients,
                    });
                }
                if !self.captures.is_empty() {
                    self.pending = Some((name, Vec::new(), Vec::new()));
                } else if self.scratch.is_empty() {
                    // No live state and nothing being serialized: no
                    // subscription can match anything below — skip the
                    // whole subtree, once, for all of them.
                    self.states
                        .truncate(self.bounds.pop().expect("pushed above") as usize);
                    self.skip_depth = 1;
                    return Ok(PushAction::SkipSubtree);
                }
            }
            Token::Attribute(nid, vid) => {
                if let Some((_, attrs, _)) = self.pending.as_mut() {
                    attrs.push(Attribute {
                        name: src.name(*nid),
                        value: src.pooled_str(*vid),
                    });
                }
            }
            Token::NamespaceDecl(pid, uid) => {
                if let Some((_, _, decls)) = self.pending.as_mut() {
                    let prefix = src.pooled_str(*pid);
                    decls.push(NamespaceDecl {
                        prefix: if prefix.is_empty() {
                            None
                        } else {
                            Some(prefix)
                        },
                        uri: src.pooled_str(*uid),
                    });
                }
            }
            Token::Text(sid) => {
                if !self.captures.is_empty() {
                    flush_pending(&mut self.pending, &mut self.captures)?;
                    let text = src.pooled_str(*sid);
                    for c in self.captures.iter_mut() {
                        c.writer.write(&XmlEvent::Text(text.clone()))?;
                    }
                }
            }
            Token::Comment(sid) => {
                if !self.captures.is_empty() {
                    flush_pending(&mut self.pending, &mut self.captures)?;
                    let text = src.pooled_str(*sid);
                    for c in self.captures.iter_mut() {
                        c.writer.write(&XmlEvent::Comment(text.clone()))?;
                    }
                }
            }
            Token::ProcessingInstruction(nid, did) => {
                if !self.captures.is_empty() {
                    flush_pending(&mut self.pending, &mut self.captures)?;
                    let target: std::sync::Arc<str> =
                        std::sync::Arc::from(src.name(*nid).local_name());
                    let data = src.pooled_str(*did);
                    for c in self.captures.iter_mut() {
                        c.writer.write(&XmlEvent::ProcessingInstruction {
                            target: target.clone(),
                            data: data.clone(),
                        })?;
                    }
                }
            }
            Token::EndElement => {
                if !self.captures.is_empty() {
                    flush_pending(&mut self.pending, &mut self.captures)?;
                    for c in self.captures.iter_mut() {
                        c.writer.write(&XmlEvent::EndElement {
                            name: QName::local(""),
                        })?;
                    }
                }
                let depth = self.bounds.len();
                if let Some(start) = self.bounds.pop() {
                    self.states.truncate(start as usize);
                }
                if self.captures.last().is_some_and(|c| c.depth == depth) {
                    let cap = self.captures.pop().expect("checked above");
                    let out = cap.writer.into_string();
                    for (pid, slot) in cap.recipients {
                        // A pattern that already failed (budget tripped
                        // on an earlier, possibly nested, match) stays
                        // failed; skip it.
                        if let Ok(slots) = &mut self.per_pattern[pid as usize] {
                            match charge(pid, out.len() as u64) {
                                Ok(()) => {
                                    self.stats.matches += 1;
                                    slots[slot] = out.clone();
                                }
                                Err(e) => self.per_pattern[pid as usize] = Err(e),
                            }
                        }
                    }
                }
            }
        }
        Ok(PushAction::Continue)
    }

    /// A pull driver skipped the dead subtree itself (in response to
    /// [`PushAction::SkipSubtree`]): record the count and resume normal
    /// matching at the next token.
    pub fn note_skipped(&mut self, tokens: usize) {
        self.stats.tokens_skipped += tokens as u64;
        self.skip_depth = 0;
    }

    /// Live instrumentation — readable mid-stream (matches so far,
    /// tokens seen/skipped), before [`CombinedRun::finish`].
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// End of the token stream: yield the per-pattern outcomes.
    pub fn finish(self) -> CombinedOutcome {
        CombinedOutcome {
            per_pattern: self.per_pattern,
            stats: self.stats,
        }
    }
}

/// Run one whole document through the automaton — the pull driver over
/// [`CombinedRun`], honouring skip hints with the iterator's own
/// `skip_subtree` (O(1) on materialized streams). A top-level error
/// means the document itself could not be read (parse error, token
/// budget): no per-pattern results exist in that case.
pub fn run_document<I, F>(
    automaton: &CombinedAutomaton,
    it: &mut I,
    mut charge: F,
) -> Result<CombinedOutcome>
where
    I: TokenIterator,
    F: FnMut(PatternId, u64) -> Result<()>,
{
    let mut run = CombinedRun::new(automaton);
    while let Some(tok) = it.next_token()? {
        match run.push(automaton, &tok, it, &mut charge)? {
            PushAction::Continue => {}
            PushAction::SkipSubtree => {
                let skipped = it.skip_subtree()?;
                run.note_skipped(skipped);
            }
        }
    }
    Ok(run.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_tokenstream::ParserTokenIterator;
    use xqr_xdm::NamePool;

    fn pat(query: &str) -> StreamPattern {
        xqr_core::Engine::new()
            .compile(query)
            .expect("compiles")
            .stream_pattern()
            .expect("streamable")
            .clone()
    }

    fn run_all(patterns: &[&str], xml: &str) -> (Vec<Result<Vec<String>>>, StreamStats) {
        let pats: Vec<StreamPattern> = patterns.iter().map(|q| pat(q)).collect();
        let a = CombinedAutomaton::build(&pats);
        let mut it = ParserTokenIterator::new(xml, Arc::new(NamePool::new()));
        let out = run_document(&a, &mut it, |_, _| Ok(())).expect("document reads");
        (out.per_pattern, out.stats)
    }

    fn oks(r: &[Result<Vec<String>>]) -> Vec<Vec<String>> {
        r.iter().map(|x| x.as_ref().unwrap().clone()).collect()
    }

    #[test]
    fn shared_prefix_patterns_share_trie_nodes() {
        let pats: Vec<StreamPattern> = ["/a/b/c", "/a/b/d", "/a/b/e"]
            .iter()
            .map(|q| pat(q))
            .collect();
        let a = CombinedAutomaton::build(&pats);
        // root + a + b + {c,d,e}: 6 nodes, not 10.
        assert_eq!(a.node_count(), 6);
        assert_eq!(a.pattern_count(), 3);
    }

    #[test]
    fn each_pattern_gets_only_its_matches() {
        let (r, _) = run_all(
            &["/a/b", "/a/c", "//d"],
            "<a><b>1</b><c>2</c><x><d>3</d></x></a>",
        );
        assert_eq!(
            oks(&r),
            vec![
                vec!["<b>1</b>".to_string()],
                vec!["<c>2</c>".to_string()],
                vec!["<d>3</d>".to_string()],
            ]
        );
    }

    #[test]
    fn emits_nested_matches_in_document_order() {
        // Unlike StreamMatcher's outermost semantics: materialized
        // evaluation of //b returns BOTH b elements, outer first.
        let (r, _) = run_all(&["//b"], "<a><b>outer<b>inner</b></b></a>");
        assert_eq!(
            oks(&r),
            vec![vec![
                "<b>outer<b>inner</b></b>".to_string(),
                "<b>inner</b>".to_string(),
            ]]
        );
    }

    #[test]
    fn mixed_child_and_descendant_edges_stay_anchored() {
        // /a/b (child-child) and //c share the automaton. The child
        // edge for b must NOT fire at depths below a's children.
        let (r, _) = run_all(
            &["/a/b", "//c"],
            "<a><x><b>deep</b><c>yes</c></x><b>hit</b></a>",
        );
        assert_eq!(
            oks(&r),
            vec![
                vec!["<b>hit</b>".to_string()],
                vec!["<c>yes</c>".to_string()],
            ]
        );
    }

    #[test]
    fn skip_fires_only_when_no_pattern_is_live() {
        // /a/b alone would skip <z>: but //d keeps every subtree live.
        let (_, stats) = run_all(&["/a/b", "//d"], "<a><z><junk/><junk/></z><b/></a>");
        assert_eq!(stats.tokens_skipped, 0);
        // With only child patterns, the z subtree is pruned once.
        let (r, stats) = run_all(&["/a/b", "/a/c"], "<a><z><junk/><junk/></z><b/></a>");
        assert!(stats.tokens_skipped > 0, "{stats:?}");
        assert_eq!(
            oks(&r),
            vec![vec!["<b/>".to_string()], Vec::<String>::new()]
        );
    }

    #[test]
    fn same_pattern_registered_twice_matches_twice() {
        let (r, _) = run_all(&["/a/b", "/a/b"], "<a><b>x</b></a>");
        assert_eq!(
            oks(&r),
            vec![vec!["<b>x</b>".to_string()], vec!["<b>x</b>".to_string()]]
        );
    }

    #[test]
    fn budget_trip_degrades_one_pattern_only() {
        let pats = vec![pat("/a/b"), pat("/a/b"), pat("/a/c")];
        let a = CombinedAutomaton::build(&pats);
        let mut it =
            ParserTokenIterator::new("<a><b>1</b><b>2</b><c>3</c></a>", Arc::new(NamePool::new()));
        // Pattern 1 trips after its first delivered match.
        let mut p1_bytes = 0u64;
        let out = run_document(&a, &mut it, |pid, bytes| {
            if pid == 1 {
                p1_bytes += bytes;
                if p1_bytes > 8 {
                    return Err(xqr_xdm::Error::new(
                        xqr_xdm::ErrorCode::Limit,
                        "output budget",
                    ));
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(
            out.per_pattern[0].as_ref().unwrap(),
            &vec!["<b>1</b>".to_string(), "<b>2</b>".to_string()]
        );
        assert_eq!(
            out.per_pattern[1].as_ref().unwrap_err().code,
            xqr_xdm::ErrorCode::Limit
        );
        assert_eq!(
            out.per_pattern[2].as_ref().unwrap(),
            &vec!["<c>3</c>".to_string()]
        );
    }

    #[test]
    fn attributes_namespaces_and_text_serialize_through_shared_captures() {
        let (r, _) = run_all(&["//b", "/a/b"], r#"<a><b k="v">t<!--c--></b></a>"#);
        let want = vec![r#"<b k="v">t<!--c--></b>"#.to_string()];
        assert_eq!(oks(&r), vec![want.clone(), want]);
    }

    #[test]
    fn empty_pattern_set_consumes_nothing() {
        let a = CombinedAutomaton::build(&[]);
        let mut it = ParserTokenIterator::new("<a><b/></a>", Arc::new(NamePool::new()));
        let out = run_document(&a, &mut it, |_, _| Ok(())).unwrap();
        assert!(out.per_pattern.is_empty());
        // The document element's subtree is skipped wholesale.
        assert!(out.stats.tokens_skipped > 0);
    }

    /// Drive the run push-style (no skip available, every token pushed,
    /// chunk-agnostic) and compare against the pull driver.
    fn run_pushed(patterns: &[&str], xml: &str) -> (Vec<Result<Vec<String>>>, StreamStats) {
        let pats: Vec<StreamPattern> = patterns.iter().map(|q| pat(q)).collect();
        let a = CombinedAutomaton::build(&pats);
        let mut tok = xqr_tokenstream::PushTokenizer::new(Arc::new(NamePool::new()));
        tok.feed(xml.as_bytes()).unwrap();
        tok.finish().unwrap();
        let mut run = CombinedRun::new(&a);
        let mut charge = |_: PatternId, _: u64| Ok(());
        while let Some(t) = tok.poll_token().unwrap() {
            // Ignore the skip hint: a push driver can't seek.
            run.push(&a, &t, &tok, &mut charge).unwrap();
        }
        let out = run.finish();
        (out.per_pattern, out.stats)
    }

    #[test]
    fn pushed_run_equals_pulled_run_results_and_stats() {
        let patterns = ["/a/b", "/a/c", "//d", "//*"];
        let docs = [
            "<a><b>1</b><c>2</c><x><d>3</d></x></a>",
            "<a><z><junk/><junk deep=\"1\"><q/></junk></z><b/></a>",
            r#"<a><b k="v">t<!--c--></b><?pi data?></a>"#,
            "<root/>",
        ];
        for doc in docs {
            let (pulled, pstats) = run_all(&patterns, doc);
            let (pushed, sstats) = run_pushed(&patterns, doc);
            assert_eq!(oks(&pulled), oks(&pushed), "{doc}");
            assert_eq!(pstats.tokens_seen, sstats.tokens_seen, "{doc}");
            assert_eq!(pstats.tokens_skipped, sstats.tokens_skipped, "{doc}");
            assert_eq!(pstats.matches, sstats.matches, "{doc}");
        }
        // Dead subtrees absorbed internally must also match the pull
        // path's skip accounting when only child patterns are live.
        let (pulled, pstats) = run_all(&["/a/b"], "<a><z><j/><j/></z><b/></a>");
        let (pushed, sstats) = run_pushed(&["/a/b"], "<a><z><j/><j/></z><b/></a>");
        assert_eq!(oks(&pulled), oks(&pushed));
        assert!(sstats.tokens_skipped > 0);
        assert_eq!(pstats.tokens_skipped, sstats.tokens_skipped);
    }

    #[test]
    fn pushed_run_can_pause_at_any_token_boundary() {
        // Feed the document byte-by-byte, pushing tokens as they
        // complete — the run must not care where installments end.
        let doc = "<a><b>outer<b>inner</b></b><c>x</c></a>";
        let (want, _) = run_all(&["//b", "/a/c"], doc);
        let pats = vec![pat("//b"), pat("/a/c")];
        let a = CombinedAutomaton::build(&pats);
        let mut tok = xqr_tokenstream::PushTokenizer::new(Arc::new(NamePool::new()));
        let mut run = CombinedRun::new(&a);
        let mut charge = |_: PatternId, _: u64| Ok(());
        for byte in doc.as_bytes() {
            tok.feed(std::slice::from_ref(byte)).unwrap();
            while let Some(t) = tok.poll_token().unwrap() {
                run.push(&a, &t, &tok, &mut charge).unwrap();
            }
        }
        tok.finish().unwrap();
        while let Some(t) = tok.poll_token().unwrap() {
            run.push(&a, &t, &tok, &mut charge).unwrap();
        }
        let out = run.finish();
        assert_eq!(oks(&want), oks(&out.per_pattern));
    }

    #[test]
    fn wildcard_descendant_pattern_accepts_every_element() {
        let (r, _) = run_all(&["//*"], "<a><b/><c><d/></c></a>");
        assert_eq!(
            oks(&r),
            vec![vec![
                "<a><b/><c><d/></c></a>".to_string(),
                "<b/>".to_string(),
                "<c><d/></c>".to_string(),
                "<d/>".to_string(),
            ]]
        );
    }
}
