//! The combined matcher: every registered streamable pattern compiled
//! into ONE shared-prefix automaton, run once per published document.
//!
//! # Construction
//!
//! The automaton is a trie over `(descendant, QName)` steps: patterns
//! sharing a step prefix share the trie path (YFilter-style), so
//! matching cost scales with the *distinct structure* of the
//! subscription set, not its cardinality — 256 subscriptions over
//! common `//a/b/...` stems cost barely more than one.
//!
//! # Execution
//!
//! An NFA state-set run over the token stream. Each open element carries
//! a set of states; a state is a trie node in one of two modes:
//!
//! - **full** (`node << 1`): the node's path just matched ending at this
//!   element. Child and descendant out-edges both apply below it.
//! - **residual** (`node << 1 | 1`): the node matched at some ancestor
//!   and survives only because it has descendant out-edges; child edges
//!   do NOT apply (they are anchored to the element that completed the
//!   prefix). This distinction is what makes mixed child/descendant
//!   fan-out correct — a plain self-loop over the trie node would let
//!   child edges fire at arbitrary depth.
//!
//! A pattern accepts when its trie leaf is entered in full mode. Unlike
//! the single-query [`StreamMatcher`](xqr_runtime::StreamMatcher)
//! (outermost-match semantics), the combined run emits **every** match,
//! nested ones included, in document order — exactly the node set
//! materialized evaluation returns, so one shared pass substitutes for
//! N independent one-shot queries byte-for-byte.
//!
//! When the state set of an element comes up empty and no capture is in
//! flight, the whole subtree is `skip()`ed — the paper's pruning,
//! shared across every subscription at once.

use xqr_runtime::{StreamPattern, StreamStats};
use xqr_tokenstream::{Token, TokenIterator};
use xqr_xdm::{QName, Result};
use xqr_xmlparse::{Attribute, NamespaceDecl, WriterOptions, XmlEvent, XmlWriter};

/// Index of a pattern in the slice the automaton was built from.
pub type PatternId = u32;

#[derive(Debug, Default)]
struct Node {
    /// Out-edges taken only from an element that completed this node's
    /// path (full mode). `None` = wildcard.
    child_edges: Vec<(Option<QName>, u32)>,
    /// Out-edges applicable at any depth below a completion.
    desc_edges: Vec<(Option<QName>, u32)>,
    /// Patterns whose full path ends here.
    accepts: Vec<PatternId>,
}

/// The shared-prefix trie/NFA over a set of streamable patterns.
#[derive(Debug)]
pub struct CombinedAutomaton {
    nodes: Vec<Node>,
    patterns: usize,
}

impl CombinedAutomaton {
    /// Build the trie; patterns keep their slice index as [`PatternId`].
    pub fn build(patterns: &[StreamPattern]) -> CombinedAutomaton {
        let mut nodes = vec![Node::default()];
        for (pid, pat) in patterns.iter().enumerate() {
            let mut cur = 0usize;
            for step in &pat.steps {
                let found = {
                    let list = if step.descendant {
                        &nodes[cur].desc_edges
                    } else {
                        &nodes[cur].child_edges
                    };
                    list.iter().find(|(n, _)| *n == step.name).map(|&(_, t)| t)
                };
                cur = match found {
                    Some(t) => t as usize,
                    None => {
                        let t = nodes.len();
                        nodes.push(Node::default());
                        let list = if step.descendant {
                            &mut nodes[cur].desc_edges
                        } else {
                            &mut nodes[cur].child_edges
                        };
                        list.push((step.name.clone(), t as u32));
                        t
                    }
                };
            }
            nodes[cur].accepts.push(pid as PatternId);
        }
        CombinedAutomaton {
            nodes,
            patterns: patterns.len(),
        }
    }

    /// Trie size — the quantity matching cost actually scales with.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// One NFA step: from the parent element's state set and a child
    /// element's name, compute the child's state set and the patterns
    /// accepting at it. `out`/`accepted` are scratch, cleared here.
    fn advance(
        &self,
        parent: &[u32],
        name: &QName,
        out: &mut Vec<u32>,
        accepted: &mut Vec<PatternId>,
    ) {
        out.clear();
        accepted.clear();
        for &s in parent {
            let node = &self.nodes[(s >> 1) as usize];
            let residual = s & 1 == 1;
            if !residual {
                for (n, t) in &node.child_edges {
                    if n.as_ref().is_none_or(|q| q == name) {
                        out.push(t << 1);
                    }
                }
            }
            for (n, t) in &node.desc_edges {
                if n.as_ref().is_none_or(|q| q == name) {
                    out.push(t << 1);
                }
            }
            if !node.desc_edges.is_empty() {
                // Survive below in residual mode: descendant edges stay
                // live at any depth, child edges are spent.
                out.push(s | 1);
            }
        }
        out.sort_unstable();
        out.dedup();
        for &s in out.iter() {
            if s & 1 == 0 {
                accepted.extend(self.nodes[(s >> 1) as usize].accepts.iter().copied());
            }
        }
        accepted.sort_unstable();
        accepted.dedup();
    }
}

/// Per-pattern results of one document pass: the serialized matches in
/// document order, or the error (budget trip, typically) that stopped
/// collection for that pattern alone.
#[derive(Debug)]
pub struct CombinedOutcome {
    pub per_pattern: Vec<Result<Vec<String>>>,
    pub stats: StreamStats,
}

/// An in-flight capture: one matched element being serialized for one or
/// more accepting patterns.
struct Capture {
    /// Open-element depth of the captured element (captures form a
    /// stack: strictly increasing depth).
    depth: usize,
    writer: XmlWriter,
    /// `(pattern, reserved match slot)` recipients. The slot was
    /// reserved at capture open, so nested matches land in document
    /// order of their start tags even though inner captures close first.
    recipients: Vec<(PatternId, usize)>,
}

/// Run one document through the automaton. `charge(pattern, bytes)` is
/// invoked once per delivered match for per-subscription output budgets;
/// an error stops collection for that pattern only — the shared pass
/// (and every other pattern) continues. A top-level error means the
/// document itself could not be read (parse error, token budget): no
/// per-pattern results exist in that case.
pub fn run_document<I, F>(
    automaton: &CombinedAutomaton,
    it: &mut I,
    mut charge: F,
) -> Result<CombinedOutcome>
where
    I: TokenIterator,
    F: FnMut(PatternId, u64) -> Result<()>,
{
    let npat = automaton.pattern_count();
    let mut per_pattern: Vec<Result<Vec<String>>> = (0..npat).map(|_| Ok(Vec::new())).collect();
    let mut stats = StreamStats::default();
    // Flat state-set arena: `states[bounds[d]..bounds[d+1]]` is the set
    // for open-element depth d+1; the trailing segment is the top.
    let mut states: Vec<u32> = vec![0]; // trie root, full mode
    let mut bounds: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut accepted: Vec<PatternId> = Vec::new();
    let mut captures: Vec<Capture> = Vec::new();
    // Start-tag buffer: attributes/namespace tokens arrive after
    // StartElement; the tag is written to capture writers on the first
    // non-attribute token.
    let mut pending: Option<(QName, Vec<Attribute>, Vec<NamespaceDecl>)> = None;

    fn flush_pending(
        pending: &mut Option<(QName, Vec<Attribute>, Vec<NamespaceDecl>)>,
        captures: &mut [Capture],
    ) -> Result<()> {
        if let Some((name, attributes, namespaces)) = pending.take() {
            for c in captures.iter_mut() {
                c.writer.write(&XmlEvent::StartElement {
                    name: name.clone(),
                    attributes: attributes.clone(),
                    namespaces: namespaces.clone(),
                    empty: false,
                })?;
            }
        }
        Ok(())
    }

    while let Some(tok) = it.next_token()? {
        stats.tokens_seen += 1;
        match tok {
            Token::StartDocument | Token::EndDocument => {}
            Token::StartElement(nid) => {
                let name = it.name(nid);
                flush_pending(&mut pending, &mut captures)?;
                let start = bounds.last().copied().unwrap_or(0) as usize;
                automaton.advance(&states[start..], &name, &mut scratch, &mut accepted);
                bounds.push(states.len() as u32);
                states.extend_from_slice(&scratch);
                let depth = bounds.len();
                // Open at most one capture per element; all accepting
                // patterns still collecting share its writer.
                let mut recipients: Vec<(PatternId, usize)> = Vec::new();
                for &pid in &accepted {
                    if let Ok(slots) = &mut per_pattern[pid as usize] {
                        slots.push(String::new()); // reserve in doc order
                        recipients.push((pid, slots.len() - 1));
                    }
                }
                if !recipients.is_empty() {
                    captures.push(Capture {
                        depth,
                        writer: XmlWriter::new(WriterOptions::default()),
                        recipients,
                    });
                }
                if !captures.is_empty() {
                    pending = Some((name, Vec::new(), Vec::new()));
                } else if scratch.is_empty() {
                    // No live state and nothing being serialized: no
                    // subscription can match anything below — skip the
                    // whole subtree, once, for all of them.
                    let skipped = it.skip_subtree()?;
                    stats.tokens_skipped += skipped as u64;
                    states.truncate(bounds.pop().expect("pushed above") as usize);
                }
            }
            Token::Attribute(nid, vid) => {
                if let Some((_, attrs, _)) = pending.as_mut() {
                    attrs.push(Attribute {
                        name: it.name(nid),
                        value: it.pooled_str(vid),
                    });
                }
            }
            Token::NamespaceDecl(pid, uid) => {
                if let Some((_, _, decls)) = pending.as_mut() {
                    let prefix = it.pooled_str(pid);
                    decls.push(NamespaceDecl {
                        prefix: if prefix.is_empty() {
                            None
                        } else {
                            Some(prefix)
                        },
                        uri: it.pooled_str(uid),
                    });
                }
            }
            Token::Text(sid) => {
                if !captures.is_empty() {
                    flush_pending(&mut pending, &mut captures)?;
                    let text = it.pooled_str(sid);
                    for c in captures.iter_mut() {
                        c.writer.write(&XmlEvent::Text(text.clone()))?;
                    }
                }
            }
            Token::Comment(sid) => {
                if !captures.is_empty() {
                    flush_pending(&mut pending, &mut captures)?;
                    let text = it.pooled_str(sid);
                    for c in captures.iter_mut() {
                        c.writer.write(&XmlEvent::Comment(text.clone()))?;
                    }
                }
            }
            Token::ProcessingInstruction(nid, did) => {
                if !captures.is_empty() {
                    flush_pending(&mut pending, &mut captures)?;
                    let target: std::sync::Arc<str> =
                        std::sync::Arc::from(it.name(nid).local_name());
                    let data = it.pooled_str(did);
                    for c in captures.iter_mut() {
                        c.writer.write(&XmlEvent::ProcessingInstruction {
                            target: target.clone(),
                            data: data.clone(),
                        })?;
                    }
                }
            }
            Token::EndElement => {
                if !captures.is_empty() {
                    flush_pending(&mut pending, &mut captures)?;
                    for c in captures.iter_mut() {
                        c.writer.write(&XmlEvent::EndElement {
                            name: QName::local(""),
                        })?;
                    }
                }
                let depth = bounds.len();
                if let Some(start) = bounds.pop() {
                    states.truncate(start as usize);
                }
                if captures.last().is_some_and(|c| c.depth == depth) {
                    let cap = captures.pop().expect("checked above");
                    let out = cap.writer.into_string();
                    for (pid, slot) in cap.recipients {
                        // A pattern that already failed (budget tripped
                        // on an earlier, possibly nested, match) stays
                        // failed; skip it.
                        if let Ok(slots) = &mut per_pattern[pid as usize] {
                            match charge(pid, out.len() as u64) {
                                Ok(()) => {
                                    stats.matches += 1;
                                    slots[slot] = out.clone();
                                }
                                Err(e) => per_pattern[pid as usize] = Err(e),
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(CombinedOutcome { per_pattern, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_tokenstream::ParserTokenIterator;
    use xqr_xdm::NamePool;

    fn pat(query: &str) -> StreamPattern {
        xqr_core::Engine::new()
            .compile(query)
            .expect("compiles")
            .stream_pattern()
            .expect("streamable")
            .clone()
    }

    fn run_all(patterns: &[&str], xml: &str) -> (Vec<Result<Vec<String>>>, StreamStats) {
        let pats: Vec<StreamPattern> = patterns.iter().map(|q| pat(q)).collect();
        let a = CombinedAutomaton::build(&pats);
        let mut it = ParserTokenIterator::new(xml, Arc::new(NamePool::new()));
        let out = run_document(&a, &mut it, |_, _| Ok(())).expect("document reads");
        (out.per_pattern, out.stats)
    }

    fn oks(r: &[Result<Vec<String>>]) -> Vec<Vec<String>> {
        r.iter().map(|x| x.as_ref().unwrap().clone()).collect()
    }

    #[test]
    fn shared_prefix_patterns_share_trie_nodes() {
        let pats: Vec<StreamPattern> = ["/a/b/c", "/a/b/d", "/a/b/e"]
            .iter()
            .map(|q| pat(q))
            .collect();
        let a = CombinedAutomaton::build(&pats);
        // root + a + b + {c,d,e}: 6 nodes, not 10.
        assert_eq!(a.node_count(), 6);
        assert_eq!(a.pattern_count(), 3);
    }

    #[test]
    fn each_pattern_gets_only_its_matches() {
        let (r, _) = run_all(
            &["/a/b", "/a/c", "//d"],
            "<a><b>1</b><c>2</c><x><d>3</d></x></a>",
        );
        assert_eq!(
            oks(&r),
            vec![
                vec!["<b>1</b>".to_string()],
                vec!["<c>2</c>".to_string()],
                vec!["<d>3</d>".to_string()],
            ]
        );
    }

    #[test]
    fn emits_nested_matches_in_document_order() {
        // Unlike StreamMatcher's outermost semantics: materialized
        // evaluation of //b returns BOTH b elements, outer first.
        let (r, _) = run_all(&["//b"], "<a><b>outer<b>inner</b></b></a>");
        assert_eq!(
            oks(&r),
            vec![vec![
                "<b>outer<b>inner</b></b>".to_string(),
                "<b>inner</b>".to_string(),
            ]]
        );
    }

    #[test]
    fn mixed_child_and_descendant_edges_stay_anchored() {
        // /a/b (child-child) and //c share the automaton. The child
        // edge for b must NOT fire at depths below a's children.
        let (r, _) = run_all(
            &["/a/b", "//c"],
            "<a><x><b>deep</b><c>yes</c></x><b>hit</b></a>",
        );
        assert_eq!(
            oks(&r),
            vec![
                vec!["<b>hit</b>".to_string()],
                vec!["<c>yes</c>".to_string()],
            ]
        );
    }

    #[test]
    fn skip_fires_only_when_no_pattern_is_live() {
        // /a/b alone would skip <z>: but //d keeps every subtree live.
        let (_, stats) = run_all(&["/a/b", "//d"], "<a><z><junk/><junk/></z><b/></a>");
        assert_eq!(stats.tokens_skipped, 0);
        // With only child patterns, the z subtree is pruned once.
        let (r, stats) = run_all(&["/a/b", "/a/c"], "<a><z><junk/><junk/></z><b/></a>");
        assert!(stats.tokens_skipped > 0, "{stats:?}");
        assert_eq!(
            oks(&r),
            vec![vec!["<b/>".to_string()], Vec::<String>::new()]
        );
    }

    #[test]
    fn same_pattern_registered_twice_matches_twice() {
        let (r, _) = run_all(&["/a/b", "/a/b"], "<a><b>x</b></a>");
        assert_eq!(
            oks(&r),
            vec![vec!["<b>x</b>".to_string()], vec!["<b>x</b>".to_string()]]
        );
    }

    #[test]
    fn budget_trip_degrades_one_pattern_only() {
        let pats = vec![pat("/a/b"), pat("/a/b"), pat("/a/c")];
        let a = CombinedAutomaton::build(&pats);
        let mut it =
            ParserTokenIterator::new("<a><b>1</b><b>2</b><c>3</c></a>", Arc::new(NamePool::new()));
        // Pattern 1 trips after its first delivered match.
        let mut p1_bytes = 0u64;
        let out = run_document(&a, &mut it, |pid, bytes| {
            if pid == 1 {
                p1_bytes += bytes;
                if p1_bytes > 8 {
                    return Err(xqr_xdm::Error::new(
                        xqr_xdm::ErrorCode::Limit,
                        "output budget",
                    ));
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(
            out.per_pattern[0].as_ref().unwrap(),
            &vec!["<b>1</b>".to_string(), "<b>2</b>".to_string()]
        );
        assert_eq!(
            out.per_pattern[1].as_ref().unwrap_err().code,
            xqr_xdm::ErrorCode::Limit
        );
        assert_eq!(
            out.per_pattern[2].as_ref().unwrap(),
            &vec!["<c>3</c>".to_string()]
        );
    }

    #[test]
    fn attributes_namespaces_and_text_serialize_through_shared_captures() {
        let (r, _) = run_all(&["//b", "/a/b"], r#"<a><b k="v">t<!--c--></b></a>"#);
        let want = vec![r#"<b k="v">t<!--c--></b>"#.to_string()];
        assert_eq!(oks(&r), vec![want.clone(), want]);
    }

    #[test]
    fn empty_pattern_set_consumes_nothing() {
        let a = CombinedAutomaton::build(&[]);
        let mut it = ParserTokenIterator::new("<a><b/></a>", Arc::new(NamePool::new()));
        let out = run_document(&a, &mut it, |_, _| Ok(())).unwrap();
        assert!(out.per_pattern.is_empty());
        // The document element's subtree is skipped wholesale.
        assert!(out.stats.tokens_skipped > 0);
    }

    #[test]
    fn wildcard_descendant_pattern_accepts_every_element() {
        let (r, _) = run_all(&["//*"], "<a><b/><c><d/></c></a>");
        assert_eq!(
            oks(&r),
            vec![vec![
                "<a><b/><c><d/></c></a>".to_string(),
                "<b/>".to_string(),
                "<c><d/></c>".to_string(),
                "<d/>".to_string(),
            ]]
        );
    }
}
