//! Subscription lifecycle and the publish path.
//!
//! Clients register compiled queries once; documents then arrive as a
//! stream. Each publish tokenizes the document a single time and drives
//! the [`CombinedAutomaton`](crate::CombinedAutomaton) over that one
//! pass for every *streamable* subscription; subscriptions whose plans
//! are not streamable fall back to one-shot evaluation, all of them
//! sharing one materialized (and, when enabled, indexed) copy of the
//! document.
//!
//! # Isolation
//!
//! Every subscription carries its own [`Limits`]-derived
//! [`QueryGuard`]: a budget trip, evaluation error, panicking sink, or
//! injected delivery fault degrades that subscription alone — it gets a
//! stable `XQRL000x` coded error while the shared pass and every other
//! subscription proceed untouched. Results are never cross-delivered:
//! a subscription only ever sees matches for its own `SubId`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::automaton::{run_document, CombinedAutomaton, CombinedOutcome, CombinedRun};
use xqr_core::{contain_panic, Engine, Item, NodeId, NodeRef, PreparedQuery};
use xqr_runtime::{Counters, DynamicContext, StreamPattern, StreamStats};
use xqr_store::DocId;
use xqr_tokenstream::{ParserTokenIterator, PushTokenizer};
use xqr_xdm::{Error, Limits, QueryGuard, Result};

/// Generation-checked subscription handle: slots are reused, but a
/// stale id (unsubscribed, then the slot re-registered) never aliases
/// the new subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId {
    slot: u32,
    generation: u32,
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}g{}", self.slot, self.generation)
    }
}

/// One delivery to a subscription sink: the per-subscription outcome of
/// one published document.
#[derive(Debug)]
pub struct Delivery<'a> {
    pub sub: SubId,
    /// The name the document was published under.
    pub document: &'a str,
    /// Serialized matches (concatenated, document order) or this
    /// subscription's coded error for this document.
    pub outcome: &'a Result<String>,
}

/// Where a subscription's results go. Implementations must be cheap and
/// non-blocking: delivery runs on the publishing thread. A panic or
/// error here is contained and degrades only this subscription's result
/// for the current document.
pub trait SubscriptionSink: Send + Sync {
    fn deliver(&self, delivery: &Delivery<'_>) -> Result<()>;
}

/// A sink that buffers `(document, outcome)` pairs — tests and the
/// harness read them back with [`CollectingSink::take`].
#[derive(Debug, Default)]
pub struct CollectingSink {
    received: Mutex<Vec<(String, Result<String>)>>,
}

impl CollectingSink {
    pub fn new() -> Arc<CollectingSink> {
        Arc::new(CollectingSink::default())
    }

    pub fn take(&self) -> Vec<(String, Result<String>)> {
        std::mem::take(&mut lock_unpoisoned(&self.received))
    }
}

impl SubscriptionSink for CollectingSink {
    fn deliver(&self, delivery: &Delivery<'_>) -> Result<()> {
        lock_unpoisoned(&self.received)
            .push((delivery.document.to_string(), delivery.outcome.clone()));
        Ok(())
    }
}

/// One registered standing query.
struct Subscription {
    query: String,
    plan: Arc<PreparedQuery>,
    /// Streamable pattern, if the plan has one — decides the shared-pass
    /// vs fallback route at publish-plan build time.
    pattern: Option<StreamPattern>,
    limits: Limits,
    sink: Option<Arc<dyn SubscriptionSink>>,
}

struct SlotEntry {
    generation: u32,
    sub: Option<Arc<Subscription>>,
}

/// The compiled shape of the current subscription set, shared by
/// publishes without holding the registry lock. `PatternId` in the
/// automaton is the index into `streamed`.
struct PublishPlan {
    automaton: CombinedAutomaton,
    streamed: Vec<(SubId, Arc<Subscription>)>,
    fallback: Vec<(SubId, Arc<Subscription>)>,
}

#[derive(Default)]
struct Inner {
    slots: Vec<SlotEntry>,
    free: Vec<u32>,
    /// Rebuilt lazily after any register/unregister.
    plan: Option<Arc<PublishPlan>>,
}

/// Counter snapshot for the service stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscribeStats {
    pub active: u64,
    pub documents_published: u64,
    pub matches_delivered: u64,
    /// Subscriptions served by the combined shared pass, summed over
    /// publishes.
    pub shared_pass_evals: u64,
    /// Subscriptions served by one-shot fallback, summed over publishes.
    pub fallback_evals: u64,
    pub delivery_failures: u64,
    pub stream_tokens_seen: u64,
    pub stream_tokens_skipped: u64,
    pub stream_matches: u64,
}

/// Register/unregister standing queries; publish documents at them.
#[derive(Default)]
pub struct SubscriptionRegistry {
    inner: Mutex<Inner>,
    documents_published: AtomicU64,
    matches_delivered: AtomicU64,
    shared_pass_evals: AtomicU64,
    fallback_evals: AtomicU64,
    delivery_failures: AtomicU64,
    stream_tokens_seen: AtomicU64,
    stream_tokens_skipped: AtomicU64,
    stream_matches: AtomicU64,
}

/// Mutex recovery without the service crate's `lock_recover`: registry
/// state is only mutated under short, panic-free critical sections, so
/// a poisoned lock's data is sound to adopt.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// What one publish did — per-subscription outcomes plus the shared
/// pass's instrumentation.
#[derive(Debug)]
pub struct PublishReport {
    /// The name the document was published under.
    pub document: String,
    /// `(subscription, serialized matches or its coded error)`, one
    /// entry per live subscription, streamed set first.
    pub results: Vec<(SubId, Result<String>)>,
    /// Shared-pass instrumentation (zeroes when no subscription was
    /// streamable).
    pub stats: StreamStats,
    /// Subscriptions served by the combined automaton this publish.
    pub shared_pass: usize,
    /// Subscriptions served by one-shot fallback this publish.
    pub fallback: usize,
    /// Match deliveries that charged a budget successfully.
    pub matches: u64,
    /// Sink deliveries that errored or panicked.
    pub delivery_failures: u64,
    /// The standard execution-counter surface: stream gauges carry the
    /// shared pass's [`StreamStats`].
    pub counters: Counters,
}

impl PublishReport {
    pub fn result_for(&self, id: SubId) -> Option<&Result<String>> {
        self.results
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, r)| r)
    }
}

impl SubscriptionRegistry {
    pub fn new() -> SubscriptionRegistry {
        SubscriptionRegistry::default()
    }

    /// Register a standing query. The plan's streamable pattern (if
    /// any) routes it onto the shared pass; anything else falls back to
    /// per-document one-shot evaluation. `limits` caps each document's
    /// work for this subscription alone.
    pub fn register(
        &self,
        query: &str,
        plan: Arc<PreparedQuery>,
        limits: Limits,
        sink: Option<Arc<dyn SubscriptionSink>>,
    ) -> SubId {
        let pattern = plan.stream_pattern().cloned();
        let sub = Arc::new(Subscription {
            query: query.to_string(),
            plan,
            pattern,
            limits,
            sink,
        });
        let mut inner = lock_unpoisoned(&self.inner);
        inner.plan = None;
        if let Some(slot) = inner.free.pop() {
            let entry = &mut inner.slots[slot as usize];
            entry.generation += 1;
            entry.sub = Some(sub);
            SubId {
                slot,
                generation: entry.generation,
            }
        } else {
            inner.slots.push(SlotEntry {
                generation: 0,
                sub: Some(sub),
            });
            SubId {
                slot: (inner.slots.len() - 1) as u32,
                generation: 0,
            }
        }
    }

    /// Remove a subscription. Returns false for ids that are stale
    /// (already unsubscribed, or their slot was reused) — never touches
    /// the current occupant of a reused slot.
    pub fn unregister(&self, id: SubId) -> bool {
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.slots.get_mut(id.slot as usize) {
            Some(entry) if entry.generation == id.generation && entry.sub.is_some() => {
                entry.sub = None;
                inner.free.push(id.slot);
                inner.plan = None;
                true
            }
            _ => false,
        }
    }

    /// Live subscription count.
    pub fn active(&self) -> usize {
        let inner = lock_unpoisoned(&self.inner);
        inner.slots.iter().filter(|s| s.sub.is_some()).count()
    }

    /// The registered query text, if the id is live (diagnostics).
    pub fn query_of(&self, id: SubId) -> Option<String> {
        let inner = lock_unpoisoned(&self.inner);
        inner
            .slots
            .get(id.slot as usize)
            .filter(|e| e.generation == id.generation)
            .and_then(|e| e.sub.as_ref())
            .map(|s| s.query.clone())
    }

    fn plan(&self) -> Arc<PublishPlan> {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(plan) = &inner.plan {
            return plan.clone();
        }
        let mut streamed = Vec::new();
        let mut fallback = Vec::new();
        for (slot, entry) in inner.slots.iter().enumerate() {
            let Some(sub) = &entry.sub else { continue };
            let id = SubId {
                slot: slot as u32,
                generation: entry.generation,
            };
            if sub.pattern.is_some() {
                streamed.push((id, sub.clone()));
            } else {
                fallback.push((id, sub.clone()));
            }
        }
        let patterns: Vec<StreamPattern> = streamed
            .iter()
            .map(|(_, s)| s.pattern.clone().expect("streamed subs have patterns"))
            .collect();
        let plan = Arc::new(PublishPlan {
            automaton: CombinedAutomaton::build(&patterns),
            streamed,
            fallback,
        });
        inner.plan = Some(plan.clone());
        plan
    }

    /// Publish a document: one tokenization feeds every streamable
    /// subscription through the combined automaton; non-streamable
    /// subscriptions each run one-shot against a single shared
    /// materialized+indexed copy. `publish_limits` bounds the shared
    /// work (tokenization, materialization); each subscription's own
    /// limits bound its output.
    ///
    /// This convenience materializes via the engine store directly; the
    /// service routes through its catalog instead (see
    /// `publish_with_doc`) so budgets and breakers apply.
    pub fn publish(
        &self,
        engine: &Engine,
        name: &str,
        xml: &str,
        publish_limits: Limits,
    ) -> Result<PublishReport> {
        self.publish_with_doc(engine, name, xml, publish_limits, || {
            let id = engine.store().load_xml(xml, None)?;
            if engine.options().index_documents {
                // Best-effort: an index-build failure (budget trip,
                // injected fault) falls back to navigation, exactly like
                // the catalog's degraded mode. Panic-contained so an
                // injected panic mid-build cannot leak the just-loaded
                // document out of this closure's ownership.
                let guard = QueryGuard::new(publish_limits);
                let _ = contain_panic(|| {
                    xqr_index::ensure_indexed(engine.store(), id, &guard).map(|_| ())
                });
            }
            Ok((id, true))
        })
    }

    /// [`SubscriptionRegistry::publish`] with caller-controlled
    /// materialization: `materialize` is invoked only when at least one
    /// non-streamable subscription needs the document, and returns
    /// `(doc, owned)` — `owned` means the publish removes the document
    /// from the store when done.
    pub fn publish_with_doc<F>(
        &self,
        engine: &Engine,
        name: &str,
        xml: &str,
        publish_limits: Limits,
        materialize: F,
    ) -> Result<PublishReport>
    where
        F: FnOnce() -> Result<(DocId, bool)>,
    {
        let plan = self.plan();

        // Shared pass: tokenize once, match every streamable pattern.
        let shared = if plan.streamed.is_empty() {
            None
        } else {
            let guards: Vec<QueryGuard> = plan
                .streamed
                .iter()
                .map(|(_, s)| QueryGuard::new(s.limits))
                .collect();
            let pass_guard = QueryGuard::new(publish_limits);
            Some(contain_panic(|| {
                let mut it = if pass_guard.is_unlimited() {
                    ParserTokenIterator::new(xml, engine.names().clone())
                } else {
                    ParserTokenIterator::with_guard(xml, engine.names().clone(), pass_guard.clone())
                };
                run_document(&plan.automaton, &mut it, |pid, bytes| {
                    guards[pid as usize].note_output_bytes(bytes)
                })
            })?)
        };

        self.complete_publish(engine, name, &plan, shared, materialize)
    }

    /// Everything downstream of the shared pass: fallback evaluation,
    /// delivery, counters, and the report. Shared between the
    /// whole-document path above and [`PublishSession::finish`], so the
    /// chunked path cannot drift from it.
    fn complete_publish<F>(
        &self,
        engine: &Engine,
        name: &str,
        plan: &PublishPlan,
        shared: Option<CombinedOutcome>,
        materialize: F,
    ) -> Result<PublishReport>
    where
        F: FnOnce() -> Result<(DocId, bool)>,
    {
        // Self-healing: reclaim any document left behind by an earlier
        // removal that panicked (a query result's constructed doc, a
        // previous publish's transient).
        engine.store().reap_orphans();
        let counters = Counters::default();
        let mut results: Vec<(SubId, Arc<Subscription>, Result<String>)> = Vec::new();
        let mut stats = StreamStats::default();
        let mut matches = 0u64;

        if let Some(outcome) = shared {
            stats = outcome.stats;
            matches += stats.matches;
            for ((id, sub), matched) in plan.streamed.iter().zip(outcome.per_pattern) {
                results.push((*id, sub.clone(), matched.map(|m| m.concat())));
            }
            self.shared_pass_evals
                .fetch_add(plan.streamed.len() as u64, Ordering::Relaxed);
        }

        // Fallback: one shared materialized document, one guarded
        // one-shot evaluation per non-streamable subscription.
        if !plan.fallback.is_empty() {
            // `contain_panic` so an injected panic in the caller's
            // materialization (e.g. the catalog.load failpoint) degrades
            // the fallback set, not the whole publish.
            match contain_panic(materialize) {
                Ok((doc, owned)) => {
                    let mut ctx = DynamicContext::new();
                    ctx.context_item = Some(Item::Node(NodeRef::new(doc, NodeId(0))));
                    for (id, sub) in &plan.fallback {
                        let r = contain_panic(|| {
                            sub.plan
                                .execute_guarded(engine, &ctx, QueryGuard::new(sub.limits))?
                                .serialize_guarded()
                        });
                        if let Ok(out) = &r {
                            if !out.is_empty() {
                                matches += 1;
                            }
                        }
                        results.push((*id, sub.clone(), r));
                    }
                    if owned {
                        // Contained so an injected panic at the remove
                        // site never unwinds out of publish. A document
                        // whose removal panicked is parked on the orphan
                        // list and reclaimed by a later pass — the fault
                        // degrades to a bounded, recoverable leak, not a
                        // permanent one.
                        let removed = contain_panic(|| {
                            engine.store().remove_document(doc);
                            Ok(())
                        });
                        if removed.is_err() {
                            engine.store().park_orphan(doc);
                        }
                    }
                }
                Err(e) => {
                    // The document could not be materialized: every
                    // fallback subscription gets that coded error; the
                    // shared-pass results above stand.
                    for (id, sub) in &plan.fallback {
                        results.push((*id, sub.clone(), Err(e.clone())));
                    }
                }
            }
            self.fallback_evals
                .fetch_add(plan.fallback.len() as u64, Ordering::Relaxed);
        }

        // Delivery: per-subscription, fault-isolated. A failing sink
        // replaces only its own outcome — never another subscription's,
        // never the pass.
        let mut delivery_failures = 0u64;
        for (id, sub, outcome) in &mut results {
            if let Err(e) = deliver_one(sub, *id, name, outcome) {
                delivery_failures += 1;
                if outcome.is_ok() {
                    *outcome = Err(e);
                }
            }
        }

        counters.record_stream_stats(&stats);
        self.documents_published.fetch_add(1, Ordering::Relaxed);
        self.matches_delivered.fetch_add(matches, Ordering::Relaxed);
        self.delivery_failures
            .fetch_add(delivery_failures, Ordering::Relaxed);
        self.stream_tokens_seen
            .fetch_add(stats.tokens_seen, Ordering::Relaxed);
        self.stream_tokens_skipped
            .fetch_add(stats.tokens_skipped, Ordering::Relaxed);
        self.stream_matches
            .fetch_add(stats.matches, Ordering::Relaxed);

        Ok(PublishReport {
            document: name.to_string(),
            results: results.into_iter().map(|(id, _, r)| (id, r)).collect(),
            stats,
            shared_pass: plan.streamed.len(),
            fallback: plan.fallback.len(),
            matches,
            delivery_failures,
            counters,
        })
    }

    /// Does the current subscription set contain non-streamable
    /// queries? (The service pre-materializes through its catalog only
    /// when true.)
    pub fn needs_fallback_doc(&self) -> bool {
        !self.plan().fallback.is_empty()
    }

    /// Start a *chunked* publish: the returned session accepts the
    /// document as byte chunks split at any boundary and matches
    /// streamable subscriptions incrementally, while bytes are still
    /// arriving. [`PublishSession::finish`] then runs exactly the same
    /// fallback/delivery tail as [`SubscriptionRegistry::publish`] —
    /// the two paths produce identical reports (results, coded errors,
    /// stream stats), which the chunked differential oracle enforces.
    ///
    /// The session pins the publish plan at creation:
    /// register/unregister during a chunked publish affects later
    /// publishes, not this one (same as the whole-document path, which
    /// snapshots the plan on entry).
    pub fn begin_publish(
        &self,
        engine: &Engine,
        name: &str,
        publish_limits: Limits,
    ) -> PublishSession {
        let plan = self.plan();
        // No streamable subscription: nothing to match incrementally.
        // The whole-document path never tokenizes in that case (the
        // fallback materialization does its own parse), so the chunked
        // path must not either — a parse error must surface as the
        // fallback subscriptions' per-subscription error, not a
        // top-level publish failure.
        let streaming = if plan.streamed.is_empty() {
            None
        } else {
            let guards: Vec<QueryGuard> = plan
                .streamed
                .iter()
                .map(|(_, s)| QueryGuard::new(s.limits))
                .collect();
            let pass_guard = QueryGuard::new(publish_limits);
            let tokenizer = if pass_guard.is_unlimited() {
                PushTokenizer::new(engine.names().clone())
            } else {
                PushTokenizer::with_guard(engine.names().clone(), pass_guard)
            };
            Some(StreamingPass {
                tokenizer,
                run: CombinedRun::new(&plan.automaton),
                guards,
            })
        };
        let fallback_buf = if plan.fallback.is_empty() {
            None
        } else {
            Some(Vec::new())
        };
        PublishSession {
            plan,
            document: name.to_string(),
            streaming,
            fallback_buf,
            failed: None,
            bytes_fed: 0,
        }
    }

    /// Convenience chunked publish over an in-memory chunk list — the
    /// differential oracle's entry point. Materializes fallback
    /// documents exactly like [`SubscriptionRegistry::publish`].
    pub fn publish_chunked<'a, C>(
        &self,
        engine: &Engine,
        name: &str,
        chunks: C,
        publish_limits: Limits,
    ) -> Result<PublishReport>
    where
        C: IntoIterator<Item = &'a [u8]>,
    {
        let mut session = self.begin_publish(engine, name, publish_limits);
        for chunk in chunks {
            session.feed(chunk)?;
        }
        session.finish(self, engine, |xml| {
            let id = engine.store().load_xml(xml, None)?;
            if engine.options().index_documents {
                let guard = QueryGuard::new(publish_limits);
                let _ = contain_panic(|| {
                    xqr_index::ensure_indexed(engine.store(), id, &guard).map(|_| ())
                });
            }
            Ok((id, true))
        })
    }

    pub fn stats(&self) -> SubscribeStats {
        SubscribeStats {
            active: self.active() as u64,
            documents_published: self.documents_published.load(Ordering::Relaxed),
            matches_delivered: self.matches_delivered.load(Ordering::Relaxed),
            shared_pass_evals: self.shared_pass_evals.load(Ordering::Relaxed),
            fallback_evals: self.fallback_evals.load(Ordering::Relaxed),
            delivery_failures: self.delivery_failures.load(Ordering::Relaxed),
            stream_tokens_seen: self.stream_tokens_seen.load(Ordering::Relaxed),
            stream_tokens_skipped: self.stream_tokens_skipped.load(Ordering::Relaxed),
            stream_matches: self.stream_matches.load(Ordering::Relaxed),
        }
    }
}

/// The incremental half of a chunked publish: the push tokenizer and
/// the resumable automaton run, present only when at least one
/// streamable subscription exists.
struct StreamingPass {
    tokenizer: PushTokenizer,
    run: CombinedRun,
    guards: Vec<QueryGuard>,
}

/// An in-flight chunked publish (see
/// [`SubscriptionRegistry::begin_publish`]). Feed byte chunks as they
/// arrive; streamable subscriptions are matched incrementally against
/// whatever tokens complete, with memory bounded by the largest single
/// syntactic unit — the document is buffered in full only when a
/// non-streamable subscription will need a materialized copy.
///
/// Errors are sticky: a failed feed poisons the session, and
/// [`PublishSession::finish`] returns the same error the whole-document
/// publish would have (the oracle's contract).
pub struct PublishSession {
    plan: Arc<PublishPlan>,
    document: String,
    streaming: Option<StreamingPass>,
    /// Raw document bytes, accumulated only when `plan.fallback` is
    /// non-empty (a materialized copy will be needed at finish).
    fallback_buf: Option<Vec<u8>>,
    failed: Option<Error>,
    bytes_fed: u64,
}

impl PublishSession {
    fn check_failed(&self) -> Result<()> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn fail<T>(&mut self, e: Error) -> Result<T> {
        self.failed = Some(e.clone());
        Err(e)
    }

    /// The name this document is being published under.
    pub fn document(&self) -> &str {
        &self.document
    }

    /// Total bytes fed so far (for byte budgets and stats).
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// Bytes parked in the lexer awaiting a complete syntactic unit.
    pub fn buffered_bytes(&self) -> usize {
        self.streaming
            .as_ref()
            .map(|s| s.tokenizer.buffered_bytes())
            .unwrap_or(0)
    }

    /// Matches delivered to streamable subscriptions so far — visible
    /// while bytes are still arriving, which is the point.
    pub fn matches_so_far(&self) -> u64 {
        self.streaming
            .as_ref()
            .map(|s| s.run.stats().matches)
            .unwrap_or(0)
    }

    /// Will `finish` need the full document text (non-streamable
    /// subscriptions present)?
    pub fn needs_fallback_doc(&self) -> bool {
        self.fallback_buf.is_some()
    }

    /// Feed one chunk, split at any byte boundary. Streamable
    /// subscriptions advance by however many tokens completed.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<()> {
        self.check_failed()?;
        self.bytes_fed += chunk.len() as u64;
        if let Some(buf) = &mut self.fallback_buf {
            buf.extend_from_slice(chunk);
        }
        let Some(pass) = &mut self.streaming else {
            return Ok(());
        };
        let plan = &self.plan;
        let r = contain_panic(|| {
            pass.tokenizer.feed(chunk)?;
            drain_pass(pass, plan)
        });
        match r {
            Ok(()) => Ok(()),
            Err(e) => self.fail(e),
        }
    }

    /// End of input: resolve constructs waiting on more bytes, run the
    /// fallback evaluations (materializing via `materialize`, which
    /// receives the full document text), deliver every outcome, and
    /// report — identically to the whole-document publish.
    pub fn finish<F>(
        mut self,
        registry: &SubscriptionRegistry,
        engine: &Engine,
        materialize: F,
    ) -> Result<PublishReport>
    where
        F: FnOnce(&str) -> Result<(DocId, bool)>,
    {
        self.check_failed()?;
        let shared = match self.streaming.take() {
            Some(mut pass) => {
                let plan = &self.plan;
                let r = contain_panic(|| {
                    pass.tokenizer.finish()?;
                    drain_pass(&mut pass, plan)
                });
                if let Err(e) = r {
                    return self.fail(e);
                }
                Some(pass.run.finish())
            }
            None => None,
        };
        let doc_text = match self.fallback_buf.take() {
            Some(buf) => match String::from_utf8(buf) {
                Ok(s) => Some(s),
                // A streaming pass would have caught this in feed; with
                // only fallback subscriptions it surfaces here, as the
                // materialization failure those subscriptions report.
                Err(_) => {
                    return registry.complete_publish(
                        engine,
                        &self.document,
                        &self.plan,
                        shared,
                        || Err(Error::syntax("invalid UTF-8 in document")),
                    )
                }
            },
            None => None,
        };
        registry.complete_publish(engine, &self.document, &self.plan, shared, || {
            materialize(doc_text.as_deref().unwrap_or(""))
        })
    }
}

/// Push every completed token through the combined run. Skip hints are
/// ignored — tokens arrive whether we want them or not; the run absorbs
/// dead subtrees internally.
fn drain_pass(pass: &mut StreamingPass, plan: &PublishPlan) -> Result<()> {
    while let Some(tok) = pass.tokenizer.poll_token()? {
        let guards = &pass.guards;
        pass.run
            .push(&plan.automaton, &tok, &pass.tokenizer, &mut |pid, bytes| {
                guards[pid as usize].note_output_bytes(bytes)
            })?;
    }
    Ok(())
}

/// Deliver one outcome through the subscription's sink, behind the
/// `subscribe.deliver` failpoint and the panic boundary.
fn deliver_one(
    sub: &Subscription,
    id: SubId,
    document: &str,
    outcome: &Result<String>,
) -> Result<()> {
    let Some(sink) = &sub.sink else {
        return Ok(());
    };
    contain_panic(|| {
        xqr_faults::faultpoint!("subscribe.deliver");
        sink.deliver(&Delivery {
            sub: id,
            document,
            outcome,
        })
    })
}
