//! End-to-end registry tests: registration lifecycle, shared-pass vs
//! fallback equivalence with one-shot evaluation, and per-subscription
//! fault isolation (budgets, panicking sinks, injected delivery
//! faults).

use std::sync::Arc;
use xqr_core::Engine;
use xqr_subscribe::{CollectingSink, Delivery, SubscriptionRegistry, SubscriptionSink};
use xqr_xdm::{ErrorCode, Limits};

fn register(reg: &SubscriptionRegistry, engine: &Engine, query: &str) -> xqr_subscribe::SubId {
    let plan = engine.compile_shared(query).expect("compiles");
    reg.register(query, plan, Limits::unlimited(), None)
}

#[test]
fn publish_matches_one_shot_evaluation_for_mixed_sets() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let xml = r#"<bib><book year="1994"><title>TCP/IP</title><price>65.95</price></book><book><title>Data on the Web</title></book><note>text</note></bib>"#;
    // Streamable, streamable-with-descendant (nested matters), and two
    // non-streamable queries share one publish.
    let queries = [
        "/bib/book/title",
        "//title",
        "count(//book)",
        "for $b in /bib/book where $b/@year return $b/title",
    ];
    let ids: Vec<_> = queries.iter().map(|q| register(&reg, &engine, q)).collect();
    let report = reg
        .publish(&engine, "bib.xml", xml, Limits::unlimited())
        .expect("publish");
    assert_eq!(report.shared_pass, 2);
    assert_eq!(report.fallback, 2);
    for (id, query) in ids.iter().zip(queries) {
        let want = engine.query_xml(xml, query).expect("one-shot");
        let got = report
            .result_for(*id)
            .expect("result present")
            .as_ref()
            .expect("ok");
        assert_eq!(got, &want, "subscription {query:?} diverged from one-shot");
    }
    // The document must not leak from the fallback materialization.
    assert_eq!(engine.store().doc_count(), 0);
}

#[test]
fn nested_descendant_matches_equal_materialized_results() {
    // The single-query StreamMatcher is outermost-only here; the
    // combined pass must emit ALL matches to equal one-shot results.
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let id = register(&reg, &engine, "//b");
    let xml = "<a><b>outer<b>inner</b></b><b/></a>";
    let report = reg.publish(&engine, "d", xml, Limits::unlimited()).unwrap();
    let want = engine.query_xml(xml, "//b").unwrap();
    assert_eq!(report.result_for(id).unwrap().as_ref().unwrap(), &want);
    assert_eq!(report.shared_pass, 1);
}

#[test]
fn stale_ids_never_touch_reused_slots() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let a = register(&reg, &engine, "/a/b");
    assert!(reg.unregister(a));
    assert!(!reg.unregister(a), "double unsubscribe must be a no-op");
    let b = register(&reg, &engine, "/a/c");
    assert_ne!(a, b, "reused slot must carry a new generation");
    assert!(!reg.unregister(a), "stale id must not evict the new tenant");
    assert_eq!(reg.active(), 1);
    assert_eq!(reg.query_of(b).as_deref(), Some("/a/c"));
    assert_eq!(reg.query_of(a), None);
    assert!(reg.unregister(b));
    assert_eq!(reg.active(), 0);
}

#[test]
fn unsubscribed_queries_stop_receiving() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let keep = register(&reg, &engine, "/a/b");
    let drop_ = register(&reg, &engine, "/a/b");
    reg.unregister(drop_);
    let report = reg
        .publish(&engine, "d", "<a><b>x</b></a>", Limits::unlimited())
        .unwrap();
    assert!(report.result_for(keep).is_some());
    assert!(report.result_for(drop_).is_none());
    assert_eq!(report.results.len(), 1);
}

#[test]
fn per_subscription_budget_trips_do_not_cross_contaminate() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let plan = engine.compile_shared("/a/b").unwrap();
    let tiny = reg.register(
        "/a/b",
        plan.clone(),
        Limits::unlimited().with_max_output_bytes(4),
        None,
    );
    let roomy = reg.register("/a/b", plan, Limits::unlimited(), None);
    let report = reg
        .publish(&engine, "d", "<a><b>12345678</b></a>", Limits::unlimited())
        .unwrap();
    assert_eq!(
        report.result_for(tiny).unwrap().as_ref().unwrap_err().code,
        ErrorCode::Limit
    );
    assert_eq!(
        report.result_for(roomy).unwrap().as_ref().unwrap(),
        "<b>12345678</b>"
    );
}

#[test]
fn fallback_evaluation_errors_are_isolated_too() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    // Non-streamable and guaranteed to fail at runtime: division by zero.
    let failing = register(&reg, &engine, "1 div 0");
    let fine = register(&reg, &engine, "count(//b)");
    let report = reg
        .publish(&engine, "d", "<a><b/><b/></a>", Limits::unlimited())
        .unwrap();
    assert!(report.result_for(failing).unwrap().is_err());
    assert_eq!(report.result_for(fine).unwrap().as_ref().unwrap(), "2");
}

struct PanickingSink;
impl SubscriptionSink for PanickingSink {
    fn deliver(&self, _d: &Delivery<'_>) -> xqr_xdm::Result<()> {
        panic!("subscriber exploded");
    }
}

#[test]
fn panicking_sink_degrades_only_itself() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let plan = engine.compile_shared("/a/b").unwrap();
    let bad = reg.register(
        "/a/b",
        plan.clone(),
        Limits::unlimited(),
        Some(Arc::new(PanickingSink)),
    );
    let good_sink = CollectingSink::new();
    let good = reg.register("/a/b", plan, Limits::unlimited(), Some(good_sink.clone()));
    let report = reg
        .publish(&engine, "d", "<a><b>x</b></a>", Limits::unlimited())
        .unwrap();
    // The panic is contained as this subscription's XQRL0000.
    assert_eq!(
        report.result_for(bad).unwrap().as_ref().unwrap_err().code,
        ErrorCode::Internal
    );
    assert_eq!(
        report.result_for(good).unwrap().as_ref().unwrap(),
        "<b>x</b>"
    );
    let received = good_sink.take();
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].1.as_ref().unwrap(), "<b>x</b>");
    assert_eq!(report.delivery_failures, 1);
}

#[test]
fn sinks_see_error_outcomes_for_their_own_subscription() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let sink = CollectingSink::new();
    let id = reg.register(
        "/a/b",
        engine.compile_shared("/a/b").unwrap(),
        Limits::unlimited().with_max_output_bytes(1),
        Some(sink.clone()),
    );
    let report = reg
        .publish(&engine, "d", "<a><b>wide</b></a>", Limits::unlimited())
        .unwrap();
    assert!(report.result_for(id).unwrap().is_err());
    let received = sink.take();
    assert_eq!(received.len(), 1);
    assert_eq!(received[0].1.as_ref().unwrap_err().code, ErrorCode::Limit);
}

#[test]
fn publish_with_no_subscriptions_is_cheap_and_clean() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let report = reg
        .publish(&engine, "d", "<a><b/></a>", Limits::unlimited())
        .unwrap();
    assert!(report.results.is_empty());
    assert_eq!(report.stats.tokens_seen, 0, "no pass should run");
    assert_eq!(engine.store().doc_count(), 0);
}

#[test]
fn stats_accumulate_across_publishes() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    register(&reg, &engine, "/a/b");
    register(&reg, &engine, "count(//b)");
    for _ in 0..3 {
        reg.publish(&engine, "d", "<a><b>x</b></a>", Limits::unlimited())
            .unwrap();
    }
    let s = reg.stats();
    assert_eq!(s.active, 2);
    assert_eq!(s.documents_published, 3);
    assert_eq!(s.shared_pass_evals, 3);
    assert_eq!(s.fallback_evals, 3);
    assert_eq!(s.matches_delivered, 6); // 3 streamed matches + 3 fallback
    assert!(s.stream_tokens_seen > 0);
}

mod injected_delivery_faults {
    use super::*;
    use xqr_faults::{FaultKind, FaultRule, FaultSchedule};

    #[test]
    fn delivery_fault_degrades_one_subscriber_never_the_pass() {
        assert!(
            xqr_faults::compiled_with_failpoints(),
            "test build must arm failpoints"
        );
        let engine = Engine::new();
        let reg = SubscriptionRegistry::new();
        let plan = engine.compile_shared("/a/b").unwrap();
        let sinks: Vec<Arc<CollectingSink>> = (0..3).map(|_| CollectingSink::new()).collect();
        let ids: Vec<_> = sinks
            .iter()
            .map(|s| reg.register("/a/b", plan.clone(), Limits::unlimited(), Some(s.clone())))
            .collect();
        // Exactly the second delivery of the publish fails.
        let schedule = FaultSchedule::new(7).rule(
            FaultRule::new("subscribe.deliver", FaultKind::ErrorReturn)
                .skip_first(1)
                .max_fires(1),
        );
        let (report, fired) = {
            let _guard = xqr_faults::install(schedule);
            let r = reg
                .publish(&engine, "d", "<a><b>x</b></a>", Limits::unlimited())
                .unwrap();
            (r, xqr_faults::fires())
        };
        assert_eq!(fired, 1, "the delivery fault must actually fire");
        assert_eq!(report.delivery_failures, 1);
        let outcomes: Vec<_> = ids
            .iter()
            .map(|id| report.result_for(*id).unwrap())
            .collect();
        assert!(outcomes[0].is_ok() && outcomes[2].is_ok());
        let failed = outcomes[1].as_ref().unwrap_err();
        assert_ne!(failed.code, ErrorCode::Internal, "coded, not a panic leak");
        // The healthy subscribers actually received their deliveries.
        assert_eq!(sinks[0].take().len(), 1);
        assert_eq!(sinks[1].take().len(), 0, "faulted delivery never arrived");
        assert_eq!(sinks[2].take().len(), 1);
    }

    #[test]
    fn panicked_transient_removal_is_reaped_not_leaked() {
        let engine = Engine::new();
        let reg = SubscriptionRegistry::new();
        // A non-streamable query forces the fallback materialization —
        // an owned transient document the publish removes afterwards.
        register(&reg, &engine, "count(//b)");
        let schedule = FaultSchedule::new(11)
            .rule(FaultRule::new("store.remove", FaultKind::Panic).max_fires(1));
        {
            let _guard = xqr_faults::install(schedule);
            reg.publish(&engine, "d", "<a><b/></a>", Limits::unlimited())
                .unwrap();
        }
        // The contained panic stranded the transient in the store...
        assert_eq!(engine.store().doc_count(), 1, "orphaned by the panic");
        assert_eq!(engine.store().orphan_count(), 1);
        // ...parked on the orphan list; an un-faulted reap reclaims it.
        assert_eq!(engine.store().reap_orphans(), 1);
        assert_eq!(engine.store().doc_count(), 0);
        assert_eq!(engine.store().reap_orphans(), 0, "orphan list drained");
        // A later publish cleans up after itself again.
        reg.publish(&engine, "d", "<a><b/></a>", Limits::unlimited())
            .unwrap();
        assert_eq!(engine.store().doc_count(), 0);
    }

    #[test]
    fn delivery_panic_fault_is_contained_per_subscription() {
        let engine = Engine::new();
        let reg = SubscriptionRegistry::new();
        let sink = CollectingSink::new();
        let plan = engine.compile_shared("/a/b").unwrap();
        let victim = reg.register(
            "/a/b",
            plan.clone(),
            Limits::unlimited(),
            Some(sink.clone()),
        );
        let silent = reg.register("/a/b", plan, Limits::unlimited(), None);
        let schedule = FaultSchedule::new(9)
            .rule(FaultRule::new("subscribe.deliver", FaultKind::Panic).max_fires(1));
        let report = {
            let _guard = xqr_faults::install(schedule);
            reg.publish(&engine, "d", "<a><b>x</b></a>", Limits::unlimited())
                .unwrap()
        };
        assert_eq!(
            report
                .result_for(victim)
                .unwrap()
                .as_ref()
                .unwrap_err()
                .code,
            ErrorCode::Internal,
            "a contained panic is XQRL0000 for the victim"
        );
        assert_eq!(
            report.result_for(silent).unwrap().as_ref().unwrap(),
            "<b>x</b>"
        );
    }
}

// --- chunked publish: byte-for-byte equivalence with the whole path ---

/// Compare two publish reports result-for-result (values and error
/// codes) — the chunked-vs-whole contract.
fn assert_reports_equal(
    whole: &xqr_subscribe::PublishReport,
    chunked: &xqr_subscribe::PublishReport,
) {
    assert_eq!(whole.results.len(), chunked.results.len());
    for ((wid, wr), (cid, cr)) in whole.results.iter().zip(chunked.results.iter()) {
        assert_eq!(wid, cid);
        match (wr, cr) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "sub {wid} diverged"),
            (Err(a), Err(b)) => assert_eq!(a.code, b.code, "sub {wid} error diverged"),
            (a, b) => panic!("sub {wid}: whole={a:?} chunked={b:?}"),
        }
    }
    assert_eq!(whole.stats.tokens_seen, chunked.stats.tokens_seen);
    assert_eq!(whole.stats.tokens_skipped, chunked.stats.tokens_skipped);
    assert_eq!(whole.stats.matches, chunked.stats.matches);
    assert_eq!(whole.matches, chunked.matches);
    assert_eq!(whole.shared_pass, chunked.shared_pass);
    assert_eq!(whole.fallback, chunked.fallback);
}

#[test]
fn publish_chunked_equals_publish_for_mixed_sets_at_any_chunk_size() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let xml = r#"<bib><book year="1994"><title>TCP/IP</title><price>65.95</price></book><book><title>Data on the Web</title></book><note>caf&#233; ☕</note></bib>"#;
    for q in [
        "/bib/book/title",
        "//title",
        "count(//book)",
        "for $b in /bib/book where $b/@year return $b/title",
    ] {
        register(&reg, &engine, q);
    }
    let whole = reg
        .publish(&engine, "bib.xml", xml, Limits::unlimited())
        .unwrap();
    for chunk in [1usize, 3, 7, 64, xml.len()] {
        let chunks: Vec<&[u8]> = xml.as_bytes().chunks(chunk).collect();
        let chunked = reg
            .publish_chunked(&engine, "bib.xml", chunks, Limits::unlimited())
            .unwrap();
        assert_reports_equal(&whole, &chunked);
    }
    // Neither path may leak the fallback materialization.
    assert_eq!(engine.store().doc_count(), 0);
}

#[test]
fn chunked_session_matches_while_bytes_still_arrive() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    register(&reg, &engine, "//item");
    let head = "<list><item>first</item>";
    let tail = "<item>second</item></list>";
    let mut session = reg.begin_publish(&engine, "live", Limits::unlimited());
    session.feed(head.as_bytes()).unwrap();
    // The first match is visible before the document is complete.
    assert_eq!(session.matches_so_far(), 1);
    session.feed(tail.as_bytes()).unwrap();
    let report = session
        .finish(&reg, &engine, |_| unreachable!("no fallback subs"))
        .unwrap();
    assert_eq!(report.matches, 2);
}

#[test]
fn publish_chunked_reports_the_same_error_as_publish() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    register(&reg, &engine, "//a");
    for bad in ["<a><b></a>", "<a>&bogus;</a>", "<a/><b/>", "<unclosed>"] {
        let whole = reg
            .publish(&engine, "bad", bad, Limits::unlimited())
            .unwrap_err();
        for chunk in [1usize, 2, bad.len()] {
            let chunks: Vec<&[u8]> = bad.as_bytes().chunks(chunk).collect();
            let chunked = reg
                .publish_chunked(&engine, "bad", chunks, Limits::unlimited())
                .unwrap_err();
            assert_eq!(whole.code, chunked.code, "{bad:?} chunk {chunk}");
        }
    }
}

#[test]
fn chunked_fallback_only_set_never_tokenizes_incrementally() {
    // With no streamable subscription, a malformed document must become
    // the fallback subscriptions' per-subscription error — not a
    // top-level failure — exactly like the whole-document path.
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let id = register(&reg, &engine, "count(//b)");
    let bad = "<a><b></a>";
    let whole = reg
        .publish(&engine, "bad", bad, Limits::unlimited())
        .unwrap();
    let chunks: Vec<&[u8]> = bad.as_bytes().chunks(3).collect();
    let chunked = reg
        .publish_chunked(&engine, "bad", chunks, Limits::unlimited())
        .unwrap();
    let w = whole.result_for(id).unwrap().as_ref().unwrap_err();
    let c = chunked.result_for(id).unwrap().as_ref().unwrap_err();
    assert_eq!(w.code, c.code);
    assert_eq!(engine.store().doc_count(), 0);
}

#[test]
fn chunked_feed_errors_are_sticky_and_poison_finish() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    register(&reg, &engine, "//a");
    let mut session = reg.begin_publish(&engine, "bad", Limits::unlimited());
    session.feed(b"<a><b>x</b>").unwrap();
    let e1 = session.feed(b"</nope>").unwrap_err();
    assert_eq!(e1.code, ErrorCode::Syntax);
    let e2 = session.feed(b"<ignored/>").unwrap_err();
    assert_eq!(e1.code, e2.code);
    let e3 = session
        .finish(&reg, &engine, |_| unreachable!())
        .unwrap_err();
    assert_eq!(e1.code, e3.code);
    // No sink deliveries happened for the poisoned publish.
    assert_eq!(reg.stats().documents_published, 0);
}

#[test]
fn chunked_publish_respects_per_subscription_budgets() {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let plan = engine.compile_shared("//b").unwrap();
    let tight = reg.register(
        "//b",
        plan.clone(),
        Limits::unlimited().with_max_output_bytes(4),
        None,
    );
    let roomy = reg.register("//b", plan, Limits::unlimited(), None);
    let xml = "<a><b>12345678</b></a>";
    let whole = reg.publish(&engine, "d", xml, Limits::unlimited()).unwrap();
    let chunks: Vec<&[u8]> = xml.as_bytes().chunks(2).collect();
    let chunked = reg
        .publish_chunked(&engine, "d", chunks, Limits::unlimited())
        .unwrap();
    for report in [&whole, &chunked] {
        assert_eq!(
            report.result_for(tight).unwrap().as_ref().unwrap_err().code,
            ErrorCode::Limit
        );
        assert!(report.result_for(roomy).unwrap().is_ok());
    }
}
