//! Poison-recovering locks, shared by the worker pool and every layer
//! above it (the service re-exports these so its own structures count
//! into the same process-wide gauge).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Process-wide count of poisoned-lock recoveries.
static LOCK_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Lock `mutex`, recovering from poisoning instead of propagating the
/// panic to every subsequent caller.
///
/// Poisoning means some holder panicked — with chaos injection, on
/// purpose. Every structure locked through this helper (pool state,
/// morsel error slots, catalog map, plan-cache shards) keeps its
/// invariants at every unlock, so the data under a poisoned lock is
/// still consistent; turning one contained panic into a permanent
/// outage would be the worse failure. Recoveries are counted so
/// operators can see them.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        LOCK_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// Total poisoned-lock recoveries since process start.
pub fn lock_recoveries() -> u64 {
    LOCK_RECOVERIES.load(Ordering::Relaxed)
}
