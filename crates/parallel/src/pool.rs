//! Admission-controlled worker pool: bounded queue, fixed workers.
//!
//! The admission state machine has three regions, decided under one
//! lock so the decision is exact (no lost-wakeup or double-count races):
//!
//! 1. **admit-run** — an idle worker exists (`active < workers`): the
//!    job enqueues and a worker picks it up immediately;
//! 2. **admit-queue** — all workers busy but the queue has room
//!    (`queue.len() < max_queued`): the job waits its turn;
//! 3. **reject** — workers and queue both full: the submission fails
//!    *immediately* with `err:XQRL0004 Overloaded`. Back-pressure is the
//!    caller's problem by design — a loaded service must shed work, not
//!    buffer it without bound.
//!
//! Workers mark themselves active while still holding the queue lock as
//! they dequeue, so `active` can never transiently undercount and let an
//! extra job slip past the bound.
//!
//! Admission is **deadline-aware**: a job may carry the absolute
//! deadline of the query it runs (the same clock its guard polls), and
//! a worker dequeuing a job whose deadline already passed *drops* it —
//! running its `expire` notifier instead of the work — so queue-wait is
//! charged against the deadline and over-budget work never occupies a
//! worker just to fail at `check_startup`. Queue-wait for every dequeued
//! job (run or dropped) is recorded in a [`LatencyHistogram`], and the
//! counters hold `dropped_expired + completed == admitted` once the
//! queue drains (shutdown discards queued jobs outside the invariant).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::sync::lock_recover;
use xqr_pressure::MemoryLedger;
use xqr_xdm::{Error, LatencyHistogram, Result};

/// The work phase of a job. It may return a *publish* closure, which the
/// worker runs only after freeing its slot — see
/// [`WorkerPool::submit_with_publish`].
type Job = Box<dyn FnOnce() -> Publish + Send + 'static>;
type Publish = Option<Box<dyn FnOnce() + Send + 'static>>;

/// Pool gauges and counters, snapshotted via [`WorkerPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs currently executing on a worker.
    pub active: u64,
    /// Jobs admitted but not yet started.
    pub queued: u64,
    /// Jobs rejected with `err:XQRL0004` since the pool started.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs accepted into the queue (run or not).
    pub admitted: u64,
    /// Jobs dropped at dequeue because their deadline had already
    /// passed — queue-wait consumed the whole budget.
    pub dropped_expired: u64,
}

/// One admitted-but-unstarted job.
struct Queued {
    job: Job,
    /// When admission accepted it — start of the queue-wait clock.
    enqueued: Instant,
    /// Absolute deadline of the query this job runs, if any.
    deadline: Option<Instant>,
    /// Runs instead of `job` when the deadline passed in the queue;
    /// delivers the timeout to whoever is waiting on the result.
    expire: Option<Box<dyn FnOnce() + Send + 'static>>,
}

struct PoolState {
    queue: VecDeque<Queued>,
    /// Jobs currently executing. Incremented under the lock at dequeue,
    /// decremented after the job returns.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
    workers: usize,
    max_queued: usize,
    rejected: AtomicU64,
    completed: AtomicU64,
    admitted: AtomicU64,
    dropped_expired: AtomicU64,
    /// Time from admission to dequeue, for every dequeued job.
    queue_wait: LatencyHistogram,
    /// Optional memory-pressure source: lets the shed message say
    /// whether the client hit a full queue under Green or a browning-out
    /// process (set once by the owning service).
    pressure: OnceLock<Arc<MemoryLedger>>,
}

/// A fixed-size worker pool with a bounded run queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1) serving a queue
    /// of at most `max_queued` waiting jobs.
    pub fn new(workers: usize, max_queued: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            workers,
            max_queued,
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            dropped_expired: AtomicU64::new(0),
            queue_wait: LatencyHistogram::new(),
            pressure: OnceLock::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xqr-pool-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Admit `job` or reject it with `err:XQRL0004`. Admission never
    /// blocks the submitter; the job itself runs on a worker thread.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<()> {
        self.submit_with_publish(move || {
            job();
            None
        })
    }

    /// Like [`WorkerPool::submit`], but the job returns an optional
    /// *publish* closure that the worker runs only after decrementing
    /// `active`. Use this when completing the job is observable to other
    /// threads (delivering a result over a channel): by the time an
    /// observer sees the result, the worker slot is already free, so a
    /// caller that serializes "wait for result, then submit" is never
    /// spuriously shed with `XQRL0004` while a worker is logically idle.
    pub fn submit_with_publish(
        &self,
        job: impl FnOnce() -> Publish + Send + 'static,
    ) -> Result<()> {
        self.submit_governed(None, None, job)
    }

    /// Full-control admission: like [`WorkerPool::submit_with_publish`],
    /// but the job may carry the absolute `deadline` of the query it
    /// runs plus an `expire` notifier. If the deadline passes while the
    /// job waits in the queue, a worker *drops* it — runs `expire`
    /// (which should deliver the timeout to the result channel) instead
    /// of the work — so over-budget queries cost the pool nothing but
    /// the dequeue.
    pub fn submit_governed(
        &self,
        deadline: Option<Instant>,
        expire: Option<Box<dyn FnOnce() + Send + 'static>>,
        job: impl FnOnce() -> Publish + Send + 'static,
    ) -> Result<()> {
        xqr_faults::faultpoint!("pool.dispatch");
        let mut state = lock_recover(&self.shared.state);
        if state.shutdown {
            return Err(Error::overloaded("service is shutting down"));
        }
        // Reject only when no worker is idle AND the queue is full.
        if state.active >= self.shared.workers && state.queue.len() >= self.shared.max_queued {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            // Name the pressure state so a client (or operator) can
            // tell "run queue full under Green" from "process is
            // browning out" without correlating logs.
            let pressure = self
                .shared
                .pressure
                .get()
                .map_or("untracked", |l| l.state().as_str());
            return Err(Error::overloaded(format!(
                "all {} workers busy and run queue full ({} waiting; memory pressure: {})",
                self.shared.workers,
                state.queue.len(),
                pressure
            )));
        }
        state.queue.push_back(Queued {
            job: Box::new(job),
            enqueued: Instant::now(),
            deadline,
            expire,
        });
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Install the memory ledger whose pressure state annotates shed
    /// errors. First call wins.
    pub fn set_pressure(&self, ledger: Arc<MemoryLedger>) {
        let _ = self.shared.pressure.set(ledger);
    }

    /// Queue-wait distribution: admission → dequeue, for every dequeued
    /// job (run or expired-and-dropped).
    pub fn queue_wait(&self) -> &LatencyHistogram {
        &self.shared.queue_wait
    }

    pub fn stats(&self) -> PoolStats {
        let state = lock_recover(&self.shared.state);
        PoolStats {
            active: state.active as u64,
            queued: state.queue.len() as u64,
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            dropped_expired: self.shared.dropped_expired.load(Ordering::Relaxed),
        }
    }

    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    pub fn max_queued(&self) -> usize {
        self.shared.max_queued
    }

    /// Begin shutdown: new submissions are rejected with a stable
    /// `err:XQRL0004`, queued-but-unstarted jobs are dropped (their
    /// submitters see the result channel close, not a hang), and
    /// in-flight jobs run to completion. Idempotent; [`Drop`] calls it
    /// before joining the workers.
    pub fn shutdown(&self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            state.queue.clear();
        }
        self.shared.work_ready.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Jobs whose deadline passed while queued: collected under the
        // lock, expired outside it.
        let mut expired: Vec<Queued> = Vec::new();
        let mut quit = false;
        let live = {
            let mut state = lock_recover(&shared.state);
            'admit: loop {
                while let Some(entry) = state.queue.pop_front() {
                    if entry.deadline.is_some_and(|d| Instant::now() >= d) {
                        // Dropped from the queue, not executed: the
                        // guard's clock already ran out waiting.
                        expired.push(entry);
                        continue;
                    }
                    // Become active before releasing the lock: admission
                    // must see either the queue entry or the active
                    // increment, never neither.
                    state.active += 1;
                    break 'admit Some(entry);
                }
                if state.shutdown {
                    quit = true;
                    break 'admit None;
                }
                if !expired.is_empty() {
                    // Deliver the expirations before going back to sleep.
                    break 'admit None;
                }
                // A Condvar wait can also observe poisoning; the pool
                // state's invariants hold at every unlock, so recover.
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        for entry in expired {
            shared.queue_wait.record(entry.enqueued.elapsed());
            shared.dropped_expired.fetch_add(1, Ordering::Relaxed);
            if let Some(expire) = entry.expire {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(expire));
            }
        }
        let Some(entry) = live else {
            if quit {
                return;
            }
            continue;
        };
        shared.queue_wait.record(entry.enqueued.elapsed());
        // Jobs are expected to contain their own panics (the engine's
        // execute path does); a panic here would poison nothing but this
        // worker, and the catch keeps the pool at full strength anyway.
        let publish =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(entry.job)).unwrap_or(None);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock_recover(&shared.state);
            state.active -= 1;
        }
        // Publish only after the slot is free: anyone woken by the result
        // can immediately re-submit without a spurious rejection.
        if let Some(publish) = publish {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(publish));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = WorkerPool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap()).unwrap();
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn saturation_rejects_with_overloaded() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // ...fill the queue...
        let (q_tx, _q_rx) = mpsc::channel::<()>();
        pool.submit(move || drop(q_tx)).unwrap();
        // ...and the next submission is shed, immediately.
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Overloaded);
        assert_eq!(err.code.as_str(), "XQRL0004");
        assert_eq!(pool.stats().rejected, 1);
        // Unblock; the queued job drains and capacity returns.
        block_tx.send(()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().completed < 2 {
            assert!(std::time::Instant::now() < deadline, "pool did not drain");
            std::thread::yield_now();
        }
        pool.submit(|| {}).unwrap();
    }

    #[test]
    fn gauges_track_active_and_queued() {
        let pool = WorkerPool::new(1, 4);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.submit(|| {}).unwrap();
        pool.submit(|| {}).unwrap();
        let s = pool.stats();
        assert_eq!(s.active, 1);
        assert_eq!(s.queued, 2);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 4);
        pool.submit(|| panic!("job bug")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    fn shutdown_rejects_new_work_with_a_stable_code() {
        let pool = WorkerPool::new(1, 4);
        pool.shutdown();
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Overloaded);
        assert_eq!(err.code.as_str(), "XQRL0004");
        assert!(err.to_string().contains("shutting down"), "{err}");
        // Rejections-at-shutdown are not counted as load shedding.
        assert_eq!(pool.stats().rejected, 0);
        // Idempotent: a second shutdown (and the one in Drop) is a no-op.
        pool.shutdown();
    }

    #[test]
    fn drop_completes_in_flight_work_and_drops_queued_jobs() {
        let pool = WorkerPool::new(1, 4);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&'static str>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
            done_tx.send("in-flight ran to completion").unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Queue a job that would send if it ever ran; shutdown must drop
        // it instead, closing the channel without a message.
        let (q_tx, q_rx) = mpsc::channel::<()>();
        pool.submit(move || q_tx.send(()).unwrap()).unwrap();

        pool.shutdown();
        // The queued job is gone the moment shutdown returns: its
        // submitter observes a closed channel, never a hang.
        assert_eq!(q_rx.try_recv(), Err(mpsc::TryRecvError::Disconnected));
        // The in-flight job is still running; unblock it and drop the
        // pool. Drop joins every worker, so a leaked or wedged thread
        // would hang the test here rather than leak silently.
        block_tx.send(()).unwrap();
        drop(pool);
        assert_eq!(
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "in-flight ran to completion"
        );
    }

    #[test]
    fn expired_queued_jobs_are_dropped_not_executed() {
        let pool = WorkerPool::new(1, 4);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Queue a job whose deadline is already in the past: it must be
        // dropped at dequeue, with the expire notifier — not the job —
        // delivering the outcome.
        let (tx, rx) = mpsc::channel::<&'static str>();
        let expire_tx = tx.clone();
        pool.submit_governed(
            Some(std::time::Instant::now() - Duration::from_millis(1)),
            Some(Box::new(move || expire_tx.send("expired").unwrap())),
            move || {
                tx.send("executed").unwrap();
                None
            },
        )
        .unwrap();
        block_tx.send(()).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "expired",
            "over-deadline work must be dropped from the queue"
        );
        // Nothing else arrives: the job body never ran.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(200)),
            Err(mpsc::RecvTimeoutError::Disconnected)
        );
        let s = pool.stats();
        assert_eq!(s.dropped_expired, 1);
        assert_eq!(s.completed, 1, "only the blocker executed");
        assert!(pool.queue_wait().count() >= 2, "both dequeues recorded");
    }

    /// Satellite invariant: once the queue drains (and absent shutdown,
    /// which discards jobs), every admitted job was either executed or
    /// dropped expired — `dropped_expired + completed == admitted`.
    #[test]
    fn admission_accounting_invariant_holds_under_mixed_load() {
        let pool = WorkerPool::new(2, 64);
        let (tx, rx) = mpsc::channel::<()>();
        let mut submitted = 0u64;
        for i in 0..200u64 {
            let tx = tx.clone();
            // A third of the jobs carry an already-expired deadline.
            let deadline =
                (i % 3 == 0).then(|| std::time::Instant::now() - Duration::from_millis(1));
            let expire_tx = tx.clone();
            let admitted = pool.submit_governed(
                deadline,
                Some(Box::new(move || expire_tx.send(()).unwrap())),
                move || {
                    tx.send(()).unwrap();
                    None
                },
            );
            if admitted.is_ok() {
                submitted += 1;
            }
        }
        drop(tx);
        // Every admitted job resolves one way or the other — no hang.
        for _ in 0..submitted {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let s = pool.stats();
            if s.queued == 0 && s.dropped_expired + s.completed == s.admitted {
                assert_eq!(s.admitted, submitted);
                assert!(s.dropped_expired > 0, "some jobs expired: {s:?}");
                assert!(s.completed > 0, "some jobs ran: {s:?}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "invariant never settled: {s:?}"
            );
            std::thread::yield_now();
        }
        assert_eq!(pool.queue_wait().count(), submitted);
    }

    #[test]
    fn shed_error_names_the_pressure_state_and_queue_depth() {
        use xqr_pressure::{Category, MemoryLedger, PressureConfig};
        let pool = WorkerPool::new(1, 1);
        let ledger = Arc::new(MemoryLedger::new(PressureConfig::with_ceiling(1000)));
        ledger.charge(Category::QueryOutput, 950); // drive it Red
        pool.set_pressure(ledger);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.submit(|| {}).unwrap(); // fill the queue
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Overloaded);
        let msg = err.to_string();
        assert!(msg.contains("memory pressure: red"), "{msg}");
        assert!(msg.contains("1 waiting"), "{msg}");
        block_tx.send(()).unwrap();
    }

    #[test]
    fn a_poisoned_admission_lock_does_not_take_down_the_pool() {
        let pool = WorkerPool::new(1, 4);
        let before = crate::sync::lock_recoveries();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.shared.state.lock().unwrap();
            panic!("poison the admission lock");
        }));
        assert!(pool.shared.state.is_poisoned());
        // Admission, the workers and the gauges all recover the lock
        // rather than propagating the panic to every later caller.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().completed < 1 {
            assert!(std::time::Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        assert!(crate::sync::lock_recoveries() > before);
    }
}
