//! Admission-controlled worker pool: bounded queue, fixed workers.
//!
//! The admission state machine has three regions, decided under one
//! lock so the decision is exact (no lost-wakeup or double-count races):
//!
//! 1. **admit-run** — an idle worker exists (`active < workers`): the
//!    job enqueues and a worker picks it up immediately;
//! 2. **admit-queue** — all workers busy but the queue has room
//!    (`queue.len() < max_queued`): the job waits its turn;
//! 3. **reject** — workers and queue both full: the submission fails
//!    *immediately* with `err:XQRL0004 Overloaded`. Back-pressure is the
//!    caller's problem by design — a loaded service must shed work, not
//!    buffer it without bound.
//!
//! Workers mark themselves active while still holding the queue lock as
//! they dequeue, so `active` can never transiently undercount and let an
//! extra job slip past the bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::sync::lock_recover;
use xqr_xdm::{Error, Result};

/// The work phase of a job. It may return a *publish* closure, which the
/// worker runs only after freeing its slot — see
/// [`WorkerPool::submit_with_publish`].
type Job = Box<dyn FnOnce() -> Publish + Send + 'static>;
type Publish = Option<Box<dyn FnOnce() + Send + 'static>>;

/// Pool gauges and counters, snapshotted via [`WorkerPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs currently executing on a worker.
    pub active: u64,
    /// Jobs admitted but not yet started.
    pub queued: u64,
    /// Jobs rejected with `err:XQRL0004` since the pool started.
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing. Incremented under the lock at dequeue,
    /// decremented after the job returns.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
    workers: usize,
    max_queued: usize,
    rejected: AtomicU64,
    completed: AtomicU64,
}

/// A fixed-size worker pool with a bounded run queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1) serving a queue
    /// of at most `max_queued` waiting jobs.
    pub fn new(workers: usize, max_queued: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            workers,
            max_queued,
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xqr-pool-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Admit `job` or reject it with `err:XQRL0004`. Admission never
    /// blocks the submitter; the job itself runs on a worker thread.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<()> {
        self.submit_with_publish(move || {
            job();
            None
        })
    }

    /// Like [`WorkerPool::submit`], but the job returns an optional
    /// *publish* closure that the worker runs only after decrementing
    /// `active`. Use this when completing the job is observable to other
    /// threads (delivering a result over a channel): by the time an
    /// observer sees the result, the worker slot is already free, so a
    /// caller that serializes "wait for result, then submit" is never
    /// spuriously shed with `XQRL0004` while a worker is logically idle.
    pub fn submit_with_publish(
        &self,
        job: impl FnOnce() -> Publish + Send + 'static,
    ) -> Result<()> {
        xqr_faults::faultpoint!("pool.dispatch");
        let mut state = lock_recover(&self.shared.state);
        if state.shutdown {
            return Err(Error::overloaded("service is shutting down"));
        }
        // Reject only when no worker is idle AND the queue is full.
        if state.active >= self.shared.workers && state.queue.len() >= self.shared.max_queued {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Error::overloaded(format!(
                "all {} workers busy and run queue full ({} waiting)",
                self.shared.workers,
                state.queue.len()
            )));
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    pub fn stats(&self) -> PoolStats {
        let state = lock_recover(&self.shared.state);
        PoolStats {
            active: state.active as u64,
            queued: state.queue.len() as u64,
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
        }
    }

    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    pub fn max_queued(&self) -> usize {
        self.shared.max_queued
    }

    /// Begin shutdown: new submissions are rejected with a stable
    /// `err:XQRL0004`, queued-but-unstarted jobs are dropped (their
    /// submitters see the result channel close, not a hang), and
    /// in-flight jobs run to completion. Idempotent; [`Drop`] calls it
    /// before joining the workers.
    pub fn shutdown(&self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            state.queue.clear();
        }
        self.shared.work_ready.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    // Become active before releasing the lock: admission
                    // must see either the queue entry or the active
                    // increment, never neither.
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                // A Condvar wait can also observe poisoning; the pool
                // state's invariants hold at every unlock, so recover.
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        // Jobs are expected to contain their own panics (the engine's
        // execute path does); a panic here would poison nothing but this
        // worker, and the catch keeps the pool at full strength anyway.
        let publish = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).unwrap_or(None);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock_recover(&shared.state);
            state.active -= 1;
        }
        // Publish only after the slot is free: anyone woken by the result
        // can immediately re-submit without a spurious rejection.
        if let Some(publish) = publish {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(publish));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete() {
        let pool = WorkerPool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap()).unwrap();
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn saturation_rejects_with_overloaded() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // ...fill the queue...
        let (q_tx, _q_rx) = mpsc::channel::<()>();
        pool.submit(move || drop(q_tx)).unwrap();
        // ...and the next submission is shed, immediately.
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Overloaded);
        assert_eq!(err.code.as_str(), "XQRL0004");
        assert_eq!(pool.stats().rejected, 1);
        // Unblock; the queued job drains and capacity returns.
        block_tx.send(()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().completed < 2 {
            assert!(std::time::Instant::now() < deadline, "pool did not drain");
            std::thread::yield_now();
        }
        pool.submit(|| {}).unwrap();
    }

    #[test]
    fn gauges_track_active_and_queued() {
        let pool = WorkerPool::new(1, 4);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.submit(|| {}).unwrap();
        pool.submit(|| {}).unwrap();
        let s = pool.stats();
        assert_eq!(s.active, 1);
        assert_eq!(s.queued, 2);
        block_tx.send(()).unwrap();
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 4);
        pool.submit(|| panic!("job bug")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    fn shutdown_rejects_new_work_with_a_stable_code() {
        let pool = WorkerPool::new(1, 4);
        pool.shutdown();
        let err = pool.submit(|| {}).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Overloaded);
        assert_eq!(err.code.as_str(), "XQRL0004");
        assert!(err.to_string().contains("shutting down"), "{err}");
        // Rejections-at-shutdown are not counted as load shedding.
        assert_eq!(pool.stats().rejected, 0);
        // Idempotent: a second shutdown (and the one in Drop) is a no-op.
        pool.shutdown();
    }

    #[test]
    fn drop_completes_in_flight_work_and_drops_queued_jobs() {
        let pool = WorkerPool::new(1, 4);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&'static str>();
        pool.submit(move || {
            started_tx.send(()).unwrap();
            block_rx.recv().unwrap();
            done_tx.send("in-flight ran to completion").unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Queue a job that would send if it ever ran; shutdown must drop
        // it instead, closing the channel without a message.
        let (q_tx, q_rx) = mpsc::channel::<()>();
        pool.submit(move || q_tx.send(()).unwrap()).unwrap();

        pool.shutdown();
        // The queued job is gone the moment shutdown returns: its
        // submitter observes a closed channel, never a hang.
        assert_eq!(q_rx.try_recv(), Err(mpsc::TryRecvError::Disconnected));
        // The in-flight job is still running; unblock it and drop the
        // pool. Drop joins every worker, so a leaked or wedged thread
        // would hang the test here rather than leak silently.
        block_tx.send(()).unwrap();
        drop(pool);
        assert_eq!(
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "in-flight ran to completion"
        );
    }

    #[test]
    fn a_poisoned_admission_lock_does_not_take_down_the_pool() {
        let pool = WorkerPool::new(1, 4);
        let before = crate::sync::lock_recoveries();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.shared.state.lock().unwrap();
            panic!("poison the admission lock");
        }));
        assert!(pool.shared.state.is_poisoned());
        // Admission, the workers and the gauges all recover the lock
        // rather than propagating the panic to every later caller.
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().completed < 1 {
            assert!(std::time::Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        assert!(crate::sync::lock_recoveries() > before);
    }
}
