//! # xqr-parallel — morsel-driven parallel structural joins
//!
//! Intra-query parallelism for the index-fed PathStack/TwigStack
//! access path. The containment-label scheme makes structural joins
//! range-partitionable: every witness of a twig match starts inside its
//! root match's `(start, end]` interval, so splitting the outermost
//! join input into contiguous label ranges yields morsels that can run
//! on independent workers and merge back into exact document order —
//! bit-identical to the serial join. See [`morsel`] for the partition
//! and merge invariants, [`pool`] for the bounded worker set (shared
//! with the query service's admission control), and [`sync`] for the
//! poison-recovering locks underneath both.

pub mod morsel;
pub mod pool;
pub mod sync;

pub use morsel::{
    morsel_pool, parallel_stats, parallel_twig_stack, ParallelConfig, ParallelRun, ParallelStats,
};
pub use pool::{PoolStats, WorkerPool};
pub use sync::{lock_recover, lock_recoveries};
