//! The morsel-driven parallel join executor.
//!
//! Containment labels make label-range partitioning of the structural
//! join inputs sound: every non-root witness of a twig match starts
//! strictly inside its root match's `(start, end]` interval. So the
//! executor splits the **outermost join input** — the root twig node's
//! inverted list — into contiguous chunks, gives each chunk a label
//! window `[chunk[0].start, max(end over chunk)]`, and slices every
//! other input list to that window by binary search
//! ([`xqr_joins::range_by_start`]). Elements straddling a chunk seam
//! (an ancestor whose interval covers roots in two chunks) land in both
//! morsels' windows; tuples themselves are never duplicated because
//! each tuple is attributed to the single morsel that owns its root.
//!
//! Morsels run on the process-wide bounded [`WorkerPool`]
//! (the same machinery the query service uses for admission control),
//! with the caller's thread always taking one morsel itself — a
//! saturated pool degrades to inline execution, never to a deadlock or
//! a spurious `err:XQRL0004`. Each morsel polls the execution's
//! [`QueryGuard`] and a shared abort flag from inside the join loops
//! ([`xqr_joins::twig_stack_on`]'s tick hook), so cancellation,
//! deadlines and a failing sibling stop every worker within a bounded
//! stride. The per-morsel outputs — each sorted and deduplicated, with
//! pairwise-disjoint root sets ordered by label window — are merged
//! back into document order by ordered concatenation with a seam
//! verification pass, so the result is bit-identical to the serial
//! join's `sort + dedup` canonical form.

use crate::pool::WorkerPool;
use crate::sync::lock_recover;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use xqr_joins::{range_by_start, twig_stack_on, Labeled, TwigPattern, TwigStats};
use xqr_store::NodeId;
use xqr_xdm::{Error, QueryGuard, Result};

/// How the parallel executor splits index-fed structural joins.
///
/// Carried inside the runtime options, so it participates in the
/// engine-options fingerprint (plan caches key on it) and `explain`
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Master switch. Off = every join runs serially on the evaluation
    /// thread.
    pub enabled: bool,
    /// Morsel count; `0` = auto (one per available core). Forcing a
    /// count ≥ 2 is the test knob the differential oracle uses to make
    /// tiny fuzz documents split.
    pub morsels: usize,
    /// Root-list length below which splitting is not attempted: on
    /// small inputs the pool handoff and merge cost more than the join
    /// (the honest negative of experiment E18).
    pub min_split: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            enabled: true,
            morsels: 0,
            min_split: 1024,
        }
    }
}

impl ParallelConfig {
    /// Parallelism off: the serial join path, bit-identical output.
    pub fn off() -> Self {
        ParallelConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// The test knob: force exactly `morsels` morsels with no minimum
    /// input size, so even a ten-element fuzz document exercises the
    /// split/merge machinery.
    pub fn forced(morsels: usize) -> Self {
        ParallelConfig {
            enabled: true,
            morsels,
            min_split: 0,
        }
    }

    /// The morsel count this config resolves to on this machine.
    pub fn resolved_morsels(&self) -> usize {
        if self.morsels != 0 {
            self.morsels
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Should a join whose root list has `root_len` entries split?
    pub fn should_split(&self, root_len: usize) -> bool {
        self.enabled && root_len >= self.min_split.max(2) && self.resolved_morsels() > 1
    }
}

impl std::fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.enabled {
            return write!(f, "off");
        }
        if self.morsels == 0 {
            write!(f, "on (morsels: auto, min-split: {})", self.min_split)
        } else {
            write!(
                f,
                "on (morsels: {}, min-split: {})",
                self.morsels, self.min_split
            )
        }
    }
}

/// Join-loop iterations between abort/cancel flag polls inside a
/// morsel. The flags are atomics, but even an uncontended load per
/// kernel advance is measurable on microsecond joins — strided, the
/// tick is a counter increment and a predictable branch almost always.
const CANCEL_TICK_STRIDE: u32 = 16;

/// Join-loop iterations between full guard polls (deadline/budget)
/// inside a morsel. A multiple of [`CANCEL_TICK_STRIDE`] (so the check
/// actually fires) and smaller than [`xqr_xdm::DEADLINE_STRIDE`], so a
/// cancellation is observed by every morsel within the guard's own
/// poll stride.
const MORSEL_TICK_STRIDE: u32 = 64;

/// What one [`parallel_twig_stack`] call did, for counters and explain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelRun {
    /// Morsels executed (1 = the split was refused and the join ran
    /// serially on the calling thread).
    pub morsels: usize,
    /// Morsels that ran on the calling thread because the shared pool
    /// was saturated (plus the caller's own morsel).
    pub inline_morsels: usize,
    /// Aggregated join instrumentation. `pushes`/`path_solutions` are
    /// summed across morsels, so boundary-replicated elements count once
    /// per morsel that touched them; `merged` is the exact final tuple
    /// count.
    pub stats: TwigStats,
}

/// Process-wide gauges for the parallel executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Joins that actually split into ≥ 2 morsels.
    pub parallel_joins: u64,
    /// Morsels executed, across all joins.
    pub morsels_run: u64,
    /// Morsels that ran inline on the calling thread.
    pub morsels_inline: u64,
    /// Joins that would have split but ran serially because the query's
    /// guard carried the memory-pressure shed hint (brownout Yellow+).
    pub joins_shed_pressure: u64,
}

static PARALLEL_JOINS: AtomicU64 = AtomicU64::new(0);
static MORSELS_RUN: AtomicU64 = AtomicU64::new(0);
static MORSELS_INLINE: AtomicU64 = AtomicU64::new(0);
static JOINS_SHED_PRESSURE: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide parallel-join gauges.
pub fn parallel_stats() -> ParallelStats {
    ParallelStats {
        parallel_joins: PARALLEL_JOINS.load(Ordering::Relaxed),
        morsels_run: MORSELS_RUN.load(Ordering::Relaxed),
        morsels_inline: MORSELS_INLINE.load(Ordering::Relaxed),
        joins_shed_pressure: JOINS_SHED_PRESSURE.load(Ordering::Relaxed),
    }
}

static MORSEL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide morsel pool: one worker per available core, shared
/// by every engine in the process. Sized once, never shut down; a
/// saturated pool sheds morsels back to the calling thread (inline
/// execution), so queries never observe `err:XQRL0004` from inside a
/// join.
pub fn morsel_pool() -> &'static WorkerPool {
    MORSEL_POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        WorkerPool::new(workers, workers.max(4) * 4)
    })
}

/// Everything a morsel shares with its siblings.
struct MorselShared {
    twig: TwigPattern,
    lists: Vec<Arc<Vec<Labeled>>>,
    guard: QueryGuard,
    /// Raised by the first failing morsel; siblings observe it at their
    /// next tick and abandon their partial work.
    abort: AtomicBool,
    /// The error that raised `abort` (set-once, *before* the flag, so a
    /// sibling's "aborted" verdict can never overwrite the root cause).
    first_error: Mutex<Option<Error>>,
}

impl MorselShared {
    fn fail(&self, err: Error) {
        {
            let mut slot = lock_recover(&self.first_error);
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.abort.store(true, Ordering::Release);
    }
}

/// One morsel's slice plan: index ranges into the shared lists.
/// `ranges[0]` is the root chunk itself; `ranges[i]` for `i > 0` is the
/// window of list `i` that can contain witnesses for roots in the chunk
/// (boundary-straddlers included, and shared with adjacent morsels).
#[derive(Debug, Clone)]
struct MorselPlan {
    ranges: Vec<(usize, usize)>,
}

/// Partition the root list into `m` contiguous chunks and slice every
/// other list to each chunk's label window.
fn plan_morsels(lists: &[Arc<Vec<Labeled>>], m: usize) -> Vec<MorselPlan> {
    let root = &lists[0];
    let chunk = root.len().div_ceil(m);
    let mut plans = Vec::with_capacity(m);
    for c in 0..m {
        let from = c * chunk;
        let to = ((c + 1) * chunk).min(root.len());
        if from >= to {
            // Fewer root entries than requested morsels: trailing
            // morsels are empty and contribute nothing to the merge.
            plans.push(MorselPlan {
                ranges: std::iter::repeat_n((0, 0), lists.len()).collect(),
            });
            continue;
        }
        let lo = root[from].start;
        let hi = root[from..to].iter().map(|e| e.end).max().unwrap_or(lo);
        let mut ranges = Vec::with_capacity(lists.len());
        ranges.push((from, to));
        for list in &lists[1..] {
            let window = range_by_start(list, lo, hi);
            let off = window.as_ptr() as usize - list.as_ptr() as usize;
            let from = off / std::mem::size_of::<Labeled>();
            ranges.push((from, from + window.len()));
        }
        plans.push(MorselPlan { ranges });
    }
    plans
}

/// Run one morsel: slice the shared lists per the plan and run the
/// holistic join with a guard/abort tick. The `parallel.morsel`
/// failpoint sits at the top so chaos schedules can kill, delay,
/// cancel or budget-trip exactly one morsel of a multi-morsel join.
fn run_morsel(sh: &MorselShared, plan: &MorselPlan) -> Result<(Vec<Vec<NodeId>>, TwigStats)> {
    xqr_faults::faultpoint!("parallel.morsel");
    let slices: Vec<&[Labeled]> = plan
        .ranges
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| &sh.lists[i][from..to])
        .collect();
    let mut n: u32 = 0;
    let mut tick = || -> Result<()> {
        n = n.wrapping_add(1);
        if !n.is_multiple_of(CANCEL_TICK_STRIDE) {
            return Ok(());
        }
        if sh.abort.load(Ordering::Acquire) {
            // The root cause is already in `first_error`; this verdict
            // is discarded by the collector.
            return Err(Error::cancelled("sibling morsel failed; aborting"));
        }
        if sh.guard.is_cancelled() {
            return Err(Error::cancelled("query cancelled by embedder"));
        }
        if n.is_multiple_of(MORSEL_TICK_STRIDE) {
            sh.guard.check_startup()?;
        }
        Ok(())
    };
    twig_stack_on(&sh.twig, &slices, &mut tick)
}

/// Contain a morsel panic as `err:XQRL0000`, exactly like the engine's
/// evaluation boundary: a poisoned morsel fails the query with a stable
/// code, never takes a pool worker or the process down.
fn contained(sh: &MorselShared, plan: &MorselPlan) -> Result<(Vec<Vec<NodeId>>, TwigStats)> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_morsel(sh, plan))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(Error::internal(format!("morsel panicked: {msg}")))
        }
    }
}

/// Run the holistic twig join over `lists` (per-twig-node, sorted by
/// start — exactly [`xqr_joins::twig_stack`]'s input), split into
/// morsels per `config` and executed across the shared worker pool.
///
/// The output is **bit-identical** to `twig_stack(&twig, &lists)`: the
/// same sorted, deduplicated match tuples in document order. Errors
/// (cancellation, deadline, an injected fault or a contained panic in
/// any morsel) fail the whole join with that morsel's stable coded
/// error — and only after every sibling morsel has stopped, so no
/// worker is still touching the inputs when the error surfaces.
pub fn parallel_twig_stack(
    twig: &TwigPattern,
    lists: Vec<Arc<Vec<Labeled>>>,
    config: &ParallelConfig,
    guard: &QueryGuard,
) -> Result<(Vec<Vec<NodeId>>, ParallelRun)> {
    assert_eq!(lists.len(), twig.len());
    let m = config.resolved_morsels().min(lists[0].len()).max(1);
    // Brownout rung: a guard flagged at admission (ledger Yellow+) sheds
    // the fan-out — morsel output buffers are pure memory amplification
    // under pressure — and takes the serial path below. The flag rides
    // the guard, not the (plan-fingerprinted) config, so one query's
    // shed never changes another query's plan identity.
    let shed = guard.parallel_shed();
    if shed && m > 1 && config.should_split(lists[0].len()) {
        JOINS_SHED_PRESSURE.fetch_add(1, Ordering::Relaxed);
    }
    if shed || m <= 1 || !config.should_split(lists[0].len()) {
        // Serial fallback on the calling thread, still guard-polled.
        let slices: Vec<&[Labeled]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut n: u32 = 0;
        let mut tick = || -> Result<()> {
            n = n.wrapping_add(1);
            if !n.is_multiple_of(CANCEL_TICK_STRIDE) {
                return Ok(());
            }
            if guard.is_cancelled() {
                return Err(Error::cancelled("query cancelled by embedder"));
            }
            if n.is_multiple_of(MORSEL_TICK_STRIDE) {
                guard.check_startup()?;
            }
            Ok(())
        };
        let (tuples, stats) = twig_stack_on(twig, &slices, &mut tick)?;
        return Ok((
            tuples,
            ParallelRun {
                morsels: 1,
                inline_morsels: 1,
                stats,
            },
        ));
    }

    let plans = plan_morsels(&lists, m);
    let shared = Arc::new(MorselShared {
        twig: twig.clone(),
        lists,
        guard: guard.clone(),
        abort: AtomicBool::new(false),
        first_error: Mutex::new(None),
    });

    // Dispatch morsels 1..m to the pool; the caller always runs morsel 0
    // itself (and adopts any morsel the saturated pool sheds), so the
    // join makes progress even with zero free workers.
    let (tx, rx) = mpsc::channel::<(usize, Option<(Vec<Vec<NodeId>>, TwigStats)>)>();
    let mut pending = 0usize;
    let mut inline = vec![0usize]; // morsel indices run on this thread
    for (c, plan) in plans.iter().enumerate().skip(1) {
        let sh = shared.clone();
        let plan = plan.clone();
        let tx = tx.clone();
        let submitted = morsel_pool().submit(move || {
            let out = match contained(&sh, &plan) {
                Ok(part) => Some(part),
                Err(e) => {
                    sh.fail(e);
                    None
                }
            };
            // The collector owns the receiver for the whole join, so a
            // send can only fail if the caller panicked mid-collect.
            let _ = tx.send((c, out));
        });
        match submitted {
            Ok(()) => pending += 1,
            // Pool saturated (or shutting down): run this morsel inline.
            Err(_) => inline.push(c),
        }
    }

    let mut parts: Vec<Option<(Vec<Vec<NodeId>>, TwigStats)>> = (0..m).map(|_| None).collect();
    // Morsel outputs held for the merge are charged to the service-wide
    // memory ledger through the guard's sink (estimated: tuple count ×
    // twig width × NodeId size) and released once merged — so a burst of
    // wide parallel joins shows up in the pressure gauges.
    let tuple_bytes = twig.len() * std::mem::size_of::<NodeId>();
    let mut charged: u64 = 0;
    let account = |part: &(Vec<Vec<NodeId>>, TwigStats)| -> u64 {
        let bytes = (part.0.len() * tuple_bytes) as u64;
        guard.charge_memory(bytes);
        bytes
    };
    let inline_count = inline.len();
    for c in inline {
        match contained(&shared, &plans[c]) {
            Ok(part) => {
                charged += account(&part);
                parts[c] = Some(part);
            }
            Err(e) => shared.fail(e),
        }
    }
    // Wait for *every* submitted morsel, success or failure: by the time
    // this loop exits, no pool worker holds a reference to the inputs.
    for _ in 0..pending {
        match rx.recv() {
            Ok((c, part)) => {
                if let Some(part) = &part {
                    charged += account(part);
                }
                parts[c] = part;
            }
            // Disconnected sender: the worker died mid-job. The pool's
            // own catch makes this unreachable; treat it as a failure
            // rather than hang.
            Err(_) => shared.fail(Error::internal("morsel worker vanished")),
        }
    }

    if let Some(err) = lock_recover(&shared.first_error).take() {
        guard.release_memory(charged);
        return Err(err);
    }

    // Merge: per-morsel outputs are sorted and root-disjoint, and the
    // chunks are ordered by label window, so ordered concatenation *is*
    // the k-way merge. Node ids follow document order within a document,
    // so the concatenation is already the serial join's canonical sorted
    // order; the verification pass restores it if that invariant ever
    // breaks, and the seam dedup drops any duplicate a future
    // replication scheme might introduce.
    let mut stats = TwigStats::default();
    let mut merged: Vec<Vec<NodeId>> = Vec::new();
    for part in parts.into_iter().flatten() {
        stats.path_solutions += part.1.path_solutions;
        stats.pushes += part.1.pushes;
        merged.extend(part.0);
    }
    if !merged.windows(2).all(|w| w[0] <= w[1]) {
        merged.sort();
    }
    merged.dedup();
    stats.merged = merged.len();
    // The per-morsel buffers are consumed into `merged`, whose bytes
    // are the query's own output accounting from here on.
    guard.release_memory(charged);

    PARALLEL_JOINS.fetch_add(1, Ordering::Relaxed);
    MORSELS_RUN.fetch_add(m as u64, Ordering::Relaxed);
    MORSELS_INLINE.fetch_add(inline_count as u64, Ordering::Relaxed);
    Ok((
        merged,
        ParallelRun {
            morsels: m,
            inline_morsels: inline_count,
            stats,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_joins::{element_list, twig_stack};
    use xqr_store::Document;
    use xqr_xdm::{ErrorCode, NamePool};

    fn lists_for(doc: &Document, twig: &TwigPattern) -> Vec<Vec<Labeled>> {
        twig.nodes
            .iter()
            .map(|n| element_list(doc, n.name))
            .collect()
    }

    fn check_all_counts(xml: &str, pattern: &str) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(xml, names.clone()).unwrap();
        let twig = TwigPattern::parse(pattern, &names).unwrap();
        let lists = lists_for(&doc, &twig);
        let (want, _) = twig_stack(&twig, &lists);
        let shared: Vec<Arc<Vec<Labeled>>> = lists.into_iter().map(Arc::new).collect();
        for m in [1usize, 2, 3, 5, 8, 64] {
            let cfg = ParallelConfig::forced(m);
            let guard = QueryGuard::unlimited();
            let (got, run) = parallel_twig_stack(&twig, shared.clone(), &cfg, &guard).unwrap();
            assert_eq!(got, want, "{pattern} on {xml} with {m} morsels");
            assert_eq!(run.stats.merged, want.len());
        }
    }

    #[test]
    fn parallel_equals_serial_on_paths_and_twigs() {
        let xml = "<r><a><b/><c/></a><a><b/></a><x><a><b/><c/><c/></a></x><a/></r>";
        for pattern in ["//a", "//a//b", "//a/b", "//a[b]/c", "//r//a[b][c]"] {
            check_all_counts(xml, pattern);
        }
    }

    #[test]
    fn parallel_equals_serial_on_recursive_nesting() {
        // Nested same-name elements: the boundary-straddling case by
        // construction — outer `a`s contain roots in later chunks.
        let mut xml = String::new();
        for i in 0..40 {
            xml.push_str(if i % 3 == 0 { "<a><b/>" } else { "<a>" });
        }
        xml.push_str("<c/>");
        for _ in 0..40 {
            xml.push_str("</a>");
        }
        for pattern in ["//a//a", "//a[b]//c", "//a//c"] {
            check_all_counts(&xml, pattern);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        check_all_counts("<r/>", "//zz");
        check_all_counts("<a/>", "//a");
        check_all_counts("<a><b/></a>", "//a/b");
    }

    #[test]
    fn default_config_refuses_small_inputs() {
        let cfg = ParallelConfig::default();
        assert!(!cfg.should_split(10));
        assert!(cfg.morsels == 0);
        // Forced configs split anything with at least two root entries.
        assert!(ParallelConfig::forced(2).should_split(2));
        assert!(!ParallelConfig::forced(2).should_split(1));
        assert!(!ParallelConfig::off().should_split(1 << 20));
    }

    #[test]
    fn cancellation_stops_a_running_parallel_join() {
        // A pathological self-join: ~1.2M output tuples, plenty of loop
        // iterations for the tick to observe the flag.
        let mut xml = String::new();
        for _ in 0..1500 {
            xml.push_str("<a>");
        }
        for _ in 0..1500 {
            xml.push_str("</a>");
        }
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let twig = TwigPattern::parse("//a//a", &names).unwrap();
        let lists: Vec<Arc<Vec<Labeled>>> =
            lists_for(&doc, &twig).into_iter().map(Arc::new).collect();
        let guard = QueryGuard::unlimited();
        let handle = guard.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            handle.cancel();
        });
        let err =
            parallel_twig_stack(&twig, lists, &ParallelConfig::forced(4), &guard).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.code, ErrorCode::Cancelled);
        // Every morsel has returned by the time the error surfaces; the
        // shared pool must drain back to idle almost immediately.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while morsel_pool().stats().active > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "morsels still running"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn pressure_shed_guard_runs_serially_with_identical_output() {
        let xml = "<r><a><b/><c/></a><a><b/></a><x><a><b/><c/><c/></a></x><a/></r>";
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(xml, names.clone()).unwrap();
        let twig = TwigPattern::parse("//a/b", &names).unwrap();
        let lists = lists_for(&doc, &twig);
        let (want, _) = twig_stack(&twig, &lists);
        let shared: Vec<Arc<Vec<Labeled>>> = lists.into_iter().map(Arc::new).collect();
        let cfg = ParallelConfig::forced(4);
        let guard = QueryGuard::unlimited();
        guard.shed_parallel();
        let before = parallel_stats().joins_shed_pressure;
        let (got, run) = parallel_twig_stack(&twig, shared, &cfg, &guard).unwrap();
        assert_eq!(got, want, "shed path must stay bit-identical");
        assert_eq!(run.morsels, 1, "shed join never fans out");
        assert_eq!(run.inline_morsels, 1);
        assert_eq!(parallel_stats().joins_shed_pressure, before + 1);
    }

    #[test]
    fn morsel_buffers_are_charged_and_released_through_the_guard_sink() {
        use xqr_pressure::{MemoryLedger, MorselSink, PressureConfig};
        let xml = "<r><a><b/><c/></a><a><b/></a><x><a><b/><c/><c/></a></x></r>";
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(xml, names.clone()).unwrap();
        let twig = TwigPattern::parse("//a/b", &names).unwrap();
        let lists: Vec<Arc<Vec<Labeled>>> =
            lists_for(&doc, &twig).into_iter().map(Arc::new).collect();
        let ledger = Arc::new(MemoryLedger::new(PressureConfig::default()));
        let guard = QueryGuard::unlimited();
        guard.set_memory_sink(Arc::new(MorselSink(ledger.clone())));
        let (got, _) =
            parallel_twig_stack(&twig, lists, &ParallelConfig::forced(3), &guard).unwrap();
        assert!(!got.is_empty());
        let snap = ledger.snapshot();
        assert_eq!(snap.total, 0, "buffers released after the merge");
        assert!(
            snap.category(xqr_pressure::Category::MorselBuffers).peak > 0,
            "in-flight buffers were visible to the ledger: {snap:?}"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(ParallelConfig::off().to_string(), "off");
        assert_eq!(
            ParallelConfig::default().to_string(),
            "on (morsels: auto, min-split: 1024)"
        );
        assert_eq!(
            ParallelConfig::forced(3).to_string(),
            "on (morsels: 3, min-split: 0)"
        );
    }
}
