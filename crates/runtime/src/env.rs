//! The dynamic context (the talk's "dynamic context" slide: external
//! variable values, current item/position/size, current date and time,
//! implicit timezone, available documents) and the evaluator's variable
//! frame.

use crate::value::{Item, Sequence};
use std::collections::HashMap;
use std::sync::Arc;
use xqr_compiler::VarId;
use xqr_store::{DocId, NodeRef, Store};
use xqr_xdm::{DateTime, Error, ErrorCode, QName, QueryGuard, Result, TzOffset};

/// Values for the dynamic context, supplied by the application.
///
/// `Clone` so a caller can retry a failed submission with the same
/// bindings: every field is plain data (sequences are `Arc`-backed).
#[derive(Clone)]
pub struct DynamicContext {
    /// External variable bindings by name.
    pub variables: HashMap<QName, Sequence>,
    /// The initial context item (`.` at the top level).
    pub context_item: Option<Item>,
    /// `fn:current-dateTime()` — fixed for the whole execution, per spec.
    pub current_datetime: DateTime,
    /// Implicit timezone in minutes.
    pub implicit_timezone: TzOffset,
    /// XML documents available to `fn:doc`, by URI (parsed on demand and
    /// cached in the store).
    pub documents: HashMap<String, String>,
    /// Default collection (`fn:collection()` with no args).
    pub default_collection: Vec<NodeRef>,
}

impl DynamicContext {
    /// An empty context.
    ///
    /// This sits on the service layer's per-request hot path (one fresh
    /// context per query), so it must stay allocation-free: empty
    /// `HashMap`s and `Vec`s defer their first allocation to the first
    /// insert, and every other field is plain data. Keep it that way —
    /// anything that needs to allocate belongs in a builder method, not
    /// here.
    pub fn new() -> Self {
        DynamicContext {
            variables: HashMap::new(),
            context_item: None,
            current_datetime: DateTime {
                year: 2004,
                month: 9,
                day: 14,
                hour: 0,
                minute: 0,
                second: 0,
                millis: 0,
                tz: Some(0),
            },
            implicit_timezone: 0,
            documents: HashMap::new(),
            default_collection: Vec::new(),
        }
    }

    pub fn bind_variable(&mut self, name: QName, value: Sequence) -> &mut Self {
        self.variables.insert(name, value);
        self
    }

    pub fn with_context_item(mut self, item: Item) -> Self {
        self.context_item = Some(item);
        self
    }

    pub fn add_document(&mut self, uri: impl Into<String>, xml: impl Into<String>) -> &mut Self {
        self.documents.insert(uri.into(), xml.into());
        self
    }
}

impl Default for DynamicContext {
    fn default() -> Self {
        Self::new()
    }
}

/// The variable frame: register file with save/restore semantics so a
/// register can be reused by sibling scopes (function inlining reuses
/// parameter registers).
pub struct Frame {
    slots: Vec<Option<Arc<Sequence>>>,
}

impl Frame {
    pub fn new(size: u32) -> Self {
        Frame {
            slots: vec![None; size as usize],
        }
    }

    pub fn get(&self, var: VarId) -> Result<Arc<Sequence>> {
        self.slots
            .get(var.0 as usize)
            .and_then(|s| s.clone())
            .ok_or_else(|| {
                Error::new(
                    ErrorCode::UndefinedName,
                    format!("unbound register ${}", var.0),
                )
            })
    }

    /// Bind a register, returning the previous value for restoration.
    pub fn bind(&mut self, var: VarId, value: Arc<Sequence>) -> Option<Arc<Sequence>> {
        let slot = &mut self.slots[var.0 as usize];
        slot.replace(value)
    }

    pub fn restore(&mut self, var: VarId, saved: Option<Arc<Sequence>>) {
        self.slots[var.0 as usize] = saved;
    }

    /// Grow to cover registers added by the optimizer.
    pub fn ensure(&mut self, size: u32) {
        if self.slots.len() < size as usize {
            self.slots.resize(size as usize, None);
        }
    }
}

/// The focus: context item, position and size (the talk's "current item,
/// current position and size").
#[derive(Debug, Clone)]
pub struct Focus {
    pub item: Item,
    pub position: i64,
    /// Context size; `None` when unknown (streaming filters compute it
    /// only when `last()` is used).
    pub size: Option<i64>,
}

/// Everything the evaluator threads through: the store, the dynamic
/// context, the focus stack and the per-execution resource guard.
pub struct ExecState {
    pub store: Arc<Store>,
    pub frame: Frame,
    pub focus: Vec<Focus>,
    /// Resource governance for this execution; `QueryGuard::unlimited()`
    /// when the embedder set no limits.
    pub guard: QueryGuard,
    /// Store documents allocated by node constructors during this
    /// execution. Constructed nodes get fresh documents in the *shared*
    /// store, so a long-lived embedder (the query service) would leak
    /// them without this ledger: on success they transfer to the result
    /// (freed when it drops), on error they are freed immediately.
    pub constructed_docs: Vec<DocId>,
    /// Shared inverted-list scan cache for batch execution: when many
    /// queries run over the same document in one batch, the embedder
    /// installs one cache across all of them so path-filtered list
    /// builds for the same (document, name, root chain) happen once.
    /// `None` (the default) for standalone queries — no overhead.
    pub scan_cache: Option<Arc<crate::index_scan::ScanCache>>,
}

impl ExecState {
    pub fn new(store: Arc<Store>, frame_size: u32) -> Self {
        Self::with_guard(store, frame_size, QueryGuard::unlimited())
    }

    pub fn with_guard(store: Arc<Store>, frame_size: u32, guard: QueryGuard) -> Self {
        ExecState {
            store,
            frame: Frame::new(frame_size),
            focus: Vec::new(),
            guard,
            constructed_docs: Vec::new(),
            scan_cache: None,
        }
    }

    /// Install a shared scan cache (batch execution).
    pub fn with_scan_cache(mut self, cache: Arc<crate::index_scan::ScanCache>) -> Self {
        self.scan_cache = Some(cache);
        self
    }

    /// Hand the constructed-document ledger to the caller (normally
    /// into [`crate::Counters::constructed_docs`] on success), leaving
    /// nothing for [`Drop`] to free.
    pub fn take_constructed_docs(&mut self) -> Vec<DocId> {
        std::mem::take(&mut self.constructed_docs)
    }

    pub fn focus(&self) -> Option<&Focus> {
        self.focus.last()
    }

    pub fn context_item(&self) -> Result<&Item> {
        self.focus
            .last()
            .map(|f| &f.item)
            .ok_or_else(|| Error::new(ErrorCode::MissingContext, "no context item"))
    }
}

impl Drop for ExecState {
    fn drop(&mut self) {
        // Anything still in the ledger belongs to an execution that
        // errored or panicked: nothing references those documents, and
        // in a shared store they would leak forever. Removal is
        // panic-contained because this can run mid-unwind, where a
        // second panic would abort the process.
        for id in self.constructed_docs.drain(..) {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.store.remove_document(id)
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bind_and_restore() {
        let mut f = Frame::new(2);
        assert!(f.get(VarId(0)).is_err());
        let saved = f.bind(VarId(0), Arc::new(vec![Item::integer(1)]));
        assert_eq!(f.get(VarId(0)).unwrap()[0], Item::integer(1));
        let saved2 = f.bind(VarId(0), Arc::new(vec![Item::integer(2)]));
        assert_eq!(f.get(VarId(0)).unwrap()[0], Item::integer(2));
        f.restore(VarId(0), saved2);
        assert_eq!(f.get(VarId(0)).unwrap()[0], Item::integer(1));
        f.restore(VarId(0), saved);
        assert!(f.get(VarId(0)).is_err());
    }

    #[test]
    fn context_item_error_when_absent() {
        let state = ExecState::new(Store::new(), 0);
        let e = state.context_item().unwrap_err();
        assert_eq!(e.code, ErrorCode::MissingContext);
    }
}
