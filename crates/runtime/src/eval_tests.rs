//! End-to-end evaluator tests: query text → serialized result.

use crate::env::DynamicContext;
use crate::eval::RuntimeOptions;
use crate::value::{serialize_sequence, Item};
use std::sync::Arc;
use xqr_compiler::{compile, CompileOptions, RewriteConfig};
use xqr_store::{NodeRef, Store};
use xqr_xdm::ErrorCode;

/// Run a query and serialize the result.
fn run(query: &str) -> String {
    run_with(query, |_ctx, _store| {})
}

fn run_with(query: &str, setup: impl FnOnce(&mut DynamicContext, &Arc<Store>)) -> String {
    try_run_with(query, setup).unwrap_or_else(|e| panic!("{query}: {e}"))
}

fn try_run(query: &str) -> xqr_xdm::Result<String> {
    try_run_with(query, |_, _| {})
}

fn try_run_with(
    query: &str,
    setup: impl FnOnce(&mut DynamicContext, &Arc<Store>),
) -> xqr_xdm::Result<String> {
    let compiled = compile(query, &CompileOptions::default())?;
    let store = Store::new();
    let mut ctx = DynamicContext::new();
    setup(&mut ctx, &store);
    let (result, _) = crate::execute(&compiled, &store, &ctx, RuntimeOptions::default())?;
    Ok(serialize_sequence(&result, &store))
}

/// Run both optimized and unoptimized; assert they agree, return result.
fn run_both(query: &str) -> String {
    let optimized = run(query);
    let compiled = compile(
        query,
        &CompileOptions {
            rewrite: RewriteConfig::none(),
            ..Default::default()
        },
    )
    .unwrap();
    let store = Store::new();
    let ctx = DynamicContext::new();
    let (result, _) = crate::execute(&compiled, &store, &ctx, RuntimeOptions::default())
        .unwrap_or_else(|e| panic!("{query} (unoptimized): {e}"));
    let unoptimized = serialize_sequence(&result, &store);
    assert_eq!(
        optimized, unoptimized,
        "optimizer changed semantics of {query}"
    );
    optimized
}

mod basics {
    use super::*;

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(run("1 + 4"), "5");
        assert_eq!(run("7 idiv 2"), "3");
        assert_eq!(run("7 mod 2"), "1");
        assert_eq!(run("1 - 4 * 8.5"), "-33");
        assert_eq!(run("-55.5"), "-55.5");
        assert_eq!(run("2 * 3 + 4"), "10");
        assert_eq!(run("5 div 2"), "2.5");
    }

    #[test]
    fn sequences() {
        assert_eq!(run("(1, 2, 2, 3)"), "1 2 2 3");
        assert_eq!(run("(1, 2, (3, 4))"), "1 2 3 4"); // auto-flattening
        assert_eq!(run("()"), "");
        assert_eq!(run("1 to 5"), "1 2 3 4 5");
        assert_eq!(run("5 to 1"), "");
        assert_eq!(run("(1 to 3, 7)"), "1 2 3 7");
    }

    #[test]
    fn strings() {
        assert_eq!(run(r#""hello""#), "hello");
        assert_eq!(run(r#"concat("a", "b", "c")"#), "abc");
        assert_eq!(run(r#"upper-case("mixed")"#), "MIXED");
        assert_eq!(run(r#"substring("12345", 2, 3)"#), "234");
        assert_eq!(run(r#"string-length("héllo")"#), "5");
        assert_eq!(run(r#"contains("haystack", "stack")"#), "true");
        assert_eq!(run(r#"normalize-space("  a   b ")"#), "a b");
        assert_eq!(run(r#"translate("bar", "abc", "ABC")"#), "BAr");
        assert_eq!(run(r#"string-join(("a", "b"), "-")"#), "a-b");
        assert_eq!(run(r#"substring-before("a=b", "=")"#), "a");
        assert_eq!(run(r#"substring-after("a=b", "=")"#), "b");
    }

    #[test]
    fn regex_functions() {
        assert_eq!(run(r#"tokenize("a b  c", "\s+")"#), "a b c");
        assert_eq!(run(r##"replace("a1b22", "\d+", "#")"##), "a#b#");
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(run("abs(-3)"), "3");
        assert_eq!(run("floor(2.7)"), "2");
        assert_eq!(run("ceiling(2.1)"), "3");
        assert_eq!(run("round(2.5)"), "3");
        assert_eq!(run("round(-2.5)"), "-2");
        assert_eq!(run("round-half-to-even(2.5)"), "2");
        assert_eq!(run("sum((1, 2, 3))"), "6");
        assert_eq!(run("sum(())"), "0");
        assert_eq!(run("avg((1, 2, 3))"), "2");
        assert_eq!(run("min((3, 1, 2))"), "1");
        assert_eq!(run("max((3, 1, 2))"), "3");
        assert_eq!(run("count((1, 2, 3))"), "3");
    }

    #[test]
    fn casts_and_types() {
        assert_eq!(run(r#"xs:integer("42")"#), "42");
        assert_eq!(run(r#""42" cast as xs:integer"#), "42");
        assert_eq!(run("5 instance of xs:integer"), "true");
        assert_eq!(run("5 instance of xs:string"), "false");
        assert_eq!(run(r#""5" castable as xs:integer"#), "true");
        assert_eq!(run(r#""x" castable as xs:integer"#), "false");
        assert_eq!(run(r#"xs:date("2002-05-20")"#), "2002-05-20");
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(
            run(r#"xs:date("2002-05-20") + xs:yearMonthDuration("P1M")"#),
            "2002-06-20"
        );
        assert_eq!(
            run(r#"xs:dateTime("2004-01-02T00:00:00Z") - xs:dateTime("2004-01-01T00:00:00Z")"#),
            "P1D"
        );
        assert_eq!(run(r#"year-from-date(xs:date("1967-05-20"))"#), "1967");
    }

    #[test]
    fn errors_propagate() {
        assert_eq!(
            try_run("1 idiv 0").unwrap_err().code,
            ErrorCode::DivisionByZero
        );
        assert_eq!(try_run(r#""a" + 1"#).unwrap_err().code, ErrorCode::Type);
        assert_eq!(try_run("error()").unwrap_err().code, ErrorCode::UserError);
        assert_eq!(
            try_run("exactly-one(())").unwrap_err().code,
            ErrorCode::Cardinality
        );
    }
}

mod comparisons {
    use super::*;

    #[test]
    fn talk_comparison_table() {
        // From the "value and general comparisons" slide.
        assert_eq!(run("(1, 2) = (2, 3)"), "true");
        assert_eq!(run("() = 42"), "false");
        assert_eq!(run("2 eq 2.0"), "true");
        assert_eq!(run("1 lt 2"), "true");
        // () eq 42 → () which serializes empty
        assert_eq!(run("() eq 42"), "");
    }

    #[test]
    fn two_value_logic() {
        // The talk: "() is converted into false before use".
        assert_eq!(run("() and 1"), "false");
        assert_eq!(run("1 and 1"), "true");
        assert_eq!(run("0 or ()"), "false");
        assert_eq!(run(r#""" or "x""#), "true");
        assert_eq!(run("not(())"), "true");
        // false and error → false (short-circuit allowed)
        assert_eq!(run("1 eq 2 and (1 idiv 0 gt 0)"), "false");
    }

    #[test]
    fn node_identity() {
        // Two constructions are distinct nodes.
        assert_eq!(run("let $x := <a/> return $x is $x"), "true");
        assert_eq!(run("<a/> is <a/>"), "false");
        assert_eq!(
            run("let $x := <a/> return let $y := <b/> return $x << $y"),
            "true"
        );
    }
}

mod flwor {
    use super::*;

    #[test]
    fn basic_iteration() {
        assert_eq!(run_both("for $x in (1, 2, 3) return $x * 2"), "2 4 6");
        assert_eq!(
            run_both("for $x in (1, 2, 3) where $x ge 2 return $x"),
            "2 3"
        );
        assert_eq!(run_both("let $x := (1, 2, 3) return count($x)"), "3");
    }

    #[test]
    fn nested_loops_and_dependencies() {
        assert_eq!(
            run_both("for $x in (1, 2) for $y in (10, 20) return $x + $y"),
            "11 21 12 22"
        );
        assert_eq!(
            run_both("for $x in (1, 2) return for $y in ($x, $x * 10) return $y"),
            "1 10 2 20"
        );
    }

    #[test]
    fn positional_variables() {
        assert_eq!(
            run_both(r#"for $x at $i in ("a", "b", "c") return $i"#),
            "1 2 3"
        );
    }

    #[test]
    fn order_by() {
        assert_eq!(
            run_both("for $x in (3, 1, 2) order by $x return $x"),
            "1 2 3"
        );
        assert_eq!(
            run_both("for $x in (3, 1, 2) order by $x descending return $x"),
            "3 2 1"
        );
        assert_eq!(
            run_both(r#"for $s in ("bb", "a", "ccc") order by string-length($s) return $s"#),
            "a bb ccc"
        );
        // multiple keys
        assert_eq!(
            run_both(
                "for $x in (3, 1) for $y in (2, 1) order by $x, $y descending return ($x * 10 + $y)"
            ),
            "12 11 32 31"
        );
        // empty handling
        assert_eq!(
            run_both(
                "for $x in ((2, 3)[. lt 3], (99)[. lt 3], 1) order by $x empty greatest return $x"
            ),
            "1 2"
        );
    }

    #[test]
    fn quantifiers() {
        assert_eq!(run_both("some $x in (1, 2, 3) satisfies $x eq 2"), "true");
        assert_eq!(run_both("every $x in (1, 2, 3) satisfies $x gt 0"), "true");
        assert_eq!(run_both("every $x in (1, 2, 3) satisfies $x gt 1"), "false");
        assert_eq!(run_both("some $x in () satisfies $x eq 1"), "false");
        assert_eq!(run_both("every $x in () satisfies 1 eq 2"), "true");
        assert_eq!(
            run_both("some $x in (1, 2), $y in (2, 3) satisfies $x eq $y"),
            "true"
        );
    }

    #[test]
    fn lazy_quantifier_stops_at_witness() {
        // A quantifier over an erroring tail must not evaluate it once a
        // witness is found — the talk's lazy-evaluation requirement.
        assert_eq!(run("some $x in (1, 2, 1 idiv 0) satisfies $x eq 1"), "true");
        assert_eq!(run("every $x in (0, 1 idiv 0) satisfies $x eq 1"), "false");
    }

    #[test]
    fn conditionals_and_typeswitch() {
        assert_eq!(run_both("if (1 lt 2) then \"y\" else \"n\""), "y");
        assert_eq!(
            run_both(
                "typeswitch (5) case xs:string return \"s\" case xs:integer return \"i\" default return \"d\""
            ),
            "i"
        );
        assert_eq!(
            run_both("typeswitch (<a/>) case element() return \"e\" default return \"d\""),
            "e"
        );
        assert_eq!(
            run_both(
                "typeswitch ((1,2)) case $v as xs:integer return \"one\" default $v return count($v)"
            ),
            "2"
        );
    }

    #[test]
    fn user_functions() {
        assert_eq!(
            run_both(
                "declare function local:fact($n as xs:integer) as xs:integer {
                   if ($n le 1) then 1 else $n * local:fact($n - 1)
                 };
                 local:fact(5)"
            ),
            "120"
        );
        assert_eq!(
            run_both("declare function local:add($a, $b) { $a + $b }; local:add(40, 2)"),
            "42"
        );
    }

    #[test]
    fn recursion_depth_limited() {
        let e = try_run("declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)")
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::Limit);
    }

    #[test]
    fn globals_and_externals() {
        assert_eq!(run_both("declare variable $x := 40; $x + 2"), "42");
        let out = run_with("declare variable $n external; $n * 2", |ctx, _| {
            ctx.bind_variable(xqr_xdm::QName::local("n"), vec![Item::integer(21)]);
        });
        assert_eq!(out, "42");
        let e = try_run("declare variable $n external; $n").unwrap_err();
        assert_eq!(e.code, ErrorCode::MissingContext);
    }
}

mod paths {
    use super::*;

    const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last></author><publisher>Addison-Wesley</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last></author><author><last>Buneman</last></author><publisher>Morgan Kaufmann</publisher><price>39.95</price></book><book year="1999"><title>Economics of Tech</title><author><last>Shapiro</last></author><publisher>MIT Press</publisher><price>129.95</price></book></bib>"#;

    fn run_bib(query: &str) -> String {
        run_with(
            &format!(r#"declare variable $doc := doc("bib.xml"); {query}"#),
            |ctx, _| {
                ctx.add_document("bib.xml", BIB);
            },
        )
    }

    #[test]
    fn child_steps() {
        assert_eq!(
            run_bib("$doc/bib/book/title/text()"),
            "TCP/IP IllustratedData on the WebEconomics of Tech"
        );
        assert_eq!(run_bib("count($doc/bib/book)"), "3");
    }

    #[test]
    fn descendant_steps() {
        assert_eq!(run_bib("count($doc//book)"), "3");
        assert_eq!(run_bib("count($doc//last)"), "4");
        assert_eq!(run_bib("count($doc//book//last)"), "4");
    }

    #[test]
    fn attributes() {
        assert_eq!(run_bib("string($doc/bib/book[1]/@year)"), "1994");
        assert_eq!(run_bib("count($doc//@year)"), "3");
        assert_eq!(
            run_bib("$doc//book[@year = 2000]/title/text()"),
            "Data on the Web"
        );
    }

    #[test]
    fn predicates() {
        assert_eq!(
            run_bib(r#"$doc//book[price < 50]/title/text()"#),
            "Data on the Web"
        );
        assert_eq!(
            run_bib("$doc//book[count(author) gt 1]/title/text()"),
            "Data on the Web"
        );
        assert_eq!(run_bib("$doc//book[2]/title/text()"), "Data on the Web");
        // The classic mistake slide: //book/author[1] ≠ (//book/author)[1]
        assert_eq!(run_bib("count($doc//book/author[1])"), "3");
        assert_eq!(run_bib("count(($doc//book/author)[1])"), "1");
        assert_eq!(
            run_bib("$doc//book[position() eq 3]/@year/string()"),
            "1999"
        );
        assert_eq!(run_bib("$doc//book[last()]/@year/string()"), "1999");
    }

    #[test]
    fn parent_and_ancestors() {
        assert_eq!(run_bib("count($doc//last/..)"), "4");
        assert_eq!(
            run_bib("$doc//last[. = \"Stevens\"]/ancestor::book/@year/string()"),
            "1994"
        );
        assert_eq!(run_bib("count($doc//price/parent::book)"), "3");
    }

    #[test]
    fn path_results_are_sorted_and_deduped() {
        // parent of multiple authors of the same book must dedup.
        assert_eq!(run_bib("count($doc//author/..)"), "3");
        assert_eq!(run_bib("count(($doc//book[1] , $doc//book[1]))"), "2");
        assert_eq!(run_bib("count($doc//book[1] | $doc//book[1])"), "1");
    }

    #[test]
    fn set_operators() {
        assert_eq!(run_bib("count($doc//book union $doc//book[2])"), "3");
        assert_eq!(run_bib("count($doc//book intersect $doc//book[2])"), "1");
        assert_eq!(run_bib("count($doc//book except $doc//book[2])"), "2");
    }

    #[test]
    fn wildcards_and_kind_tests() {
        assert_eq!(run_bib("count($doc/bib/*)"), "3");
        assert_eq!(run_bib("count($doc//text())"), "13");
        assert_eq!(run_bib("count($doc//book/*:title)"), "3");
    }

    #[test]
    fn joins_in_flwor() {
        let q = r#"
            for $b in $doc//book, $p in $doc//book
            where $b/publisher = $p/publisher and $b/@year = "1994"
            return $p/title/text()
        "#;
        assert_eq!(run_bib(q), "TCP/IP Illustrated");
    }

    #[test]
    fn context_item_paths() {
        let out = run_with("count(.//book)", |ctx, store| {
            let id = store.load_xml(super::paths::BIB, None).unwrap();
            ctx.context_item = Some(Item::Node(NodeRef::new(id, xqr_store::NodeId(0))));
        });
        assert_eq!(out, "3");
    }

    #[test]
    fn atomic_context_for_path_errors() {
        let e = try_run("(1)/a").unwrap_err();
        assert!(
            matches!(e.code, ErrorCode::PathOnAtomic | ErrorCode::AxisOnAtomic),
            "{e}"
        );
    }
}

mod constructors {
    use super::*;

    #[test]
    fn direct_elements() {
        assert_eq!(run("<a/>"), "<a/>");
        assert_eq!(run("<a>text</a>"), "<a>text</a>");
        assert_eq!(run("<a b=\"1\">x</a>"), "<a b=\"1\">x</a>");
        assert_eq!(run("<a>{1 + 1}</a>"), "<a>2</a>");
        assert_eq!(run("<a>{1, 2, 3}</a>"), "<a>1 2 3</a>");
        assert_eq!(run("<a><b/><c/></a>"), "<a><b/><c/></a>");
        assert_eq!(run("<a>x{1}y</a>"), "<a>x1y</a>");
    }

    #[test]
    fn attribute_value_templates() {
        assert_eq!(run(r#"<a b="{1+1}"/>"#), r#"<a b="2"/>"#);
        assert_eq!(run(r#"<a b="x{1}y"/>"#), r#"<a b="x1y"/>"#);
        assert_eq!(
            run(r#"let $v := (1,2) return <a b="{$v}"/>"#),
            r#"<a b="1 2"/>"#
        );
    }

    #[test]
    fn computed_constructors() {
        assert_eq!(run("element foo { 1 + 1 }"), "<foo>2</foo>");
        assert_eq!(run(r#"element { concat("a", "b") } { "x" }"#), "<ab>x</ab>");
        assert_eq!(
            run(r#"<e>{ attribute year { 1967 } }</e>"#),
            r#"<e year="1967"/>"#
        );
        assert_eq!(run(r#"string(text { "hi" })"#), "hi");
        assert_eq!(run("document { <a/> }"), "<a/>");
    }

    #[test]
    fn copied_content() {
        assert_eq!(
            run("let $x := <b>inner</b> return <a>{$x}</a>"),
            "<a><b>inner</b></a>"
        );
        assert_eq!(
            run("let $x := <b/> return <a>{$x, $x}</a>"),
            "<a><b/><b/></a>"
        );
    }

    #[test]
    fn namespaced_constructors() {
        assert_eq!(
            run(r#"<a xmlns:p="urn:p"><p:b/></a>"#),
            r#"<a xmlns:p="urn:p"><p:b/></a>"#
        );
    }

    #[test]
    fn querying_constructed_nodes() {
        assert_eq!(
            run("let $d := <r><x>1</x><x>2</x></r> return count($d/x)"),
            "2"
        );
        assert_eq!(run("<r><x>5</x></r>/x/text()"), "5");
    }
}

mod laziness {
    use super::*;

    #[test]
    fn positional_early_exit() {
        assert_eq!(run("(1 to 1000000000)[3]"), "3");
        assert_eq!(run("(for $x in 1 to 1000000000 return $x * 2)[2]"), "4");
    }

    #[test]
    fn exists_stops_early() {
        assert_eq!(run("exists(1 to 1000000000)"), "true");
        assert_eq!(run("empty(1 to 1000000000)"), "false");
    }

    #[test]
    fn quantifier_over_huge_range() {
        assert_eq!(
            run("some $x in (1 to 1000000000) satisfies $x eq 5"),
            "true"
        );
    }

    #[test]
    fn ebv_of_huge_sequence() {
        assert_eq!(run("if ((1 to 1000000000)[1]) then \"t\" else \"f\""), "t");
    }
}

mod talk_examples {
    use super::*;

    #[test]
    fn flwr_equivalence_slide() {
        let doc = r#"<bib><book><title>Ulysses</title><author>J</author><author>K</author></book><book><title>Other</title><author>X</author></book></bib>"#;
        let sugar = run_with(
            r#"declare variable $d := doc("d.xml");
               for $x in $d/bib/book
               let $y := $x/author
               where $x/title = "Ulysses"
               return count($y)"#,
            |ctx, _| {
                ctx.add_document("d.xml", doc);
            },
        );
        let expanded = run_with(
            r#"declare variable $d := doc("d.xml");
               for $x in $d/bib/book
               return (let $y := $x/author
                       return if ($x/title = "Ulysses") then count($y) else ())"#,
            |ctx, _| {
                ctx.add_document("d.xml", doc);
            },
        );
        assert_eq!(sugar, expanded);
        assert_eq!(sugar, "2");
    }

    #[test]
    fn conditional_constructor_slide() {
        let q = r#"
            declare variable $book := <book year="1967"><title>T</title></book>;
            if ($book/@year < 1980)
            then <old>{$book/title/text()}</old>
            else <new>{$book/title/text()}</new>
        "#;
        assert_eq!(run(q), "<old>T</old>");
    }

    #[test]
    fn selection_and_join_slides() {
        let bib = r#"<world><bib><book><title>B1</title><publisher>Springer Verlag</publisher><year>1998</year></book><book><title>B2</title><publisher>Elsevier</publisher><year>1998</year></book></bib><publishers><publisher><name>Springer Verlag</name><address>Berlin</address></publisher><publisher><name>Elsevier</name><address>Amsterdam</address></publisher></publishers></world>"#;
        let q = r#"
            declare variable $w := doc("w.xml");
            for $b in $w//book, $p in $w//publishers/publisher
            where $b/publisher = $p/name
            return ($b/title/text(), $p/address/text())
        "#;
        let out = run_with(q, |ctx, _| {
            ctx.add_document("w.xml", bib);
        });
        assert_eq!(out, "B1BerlinB2Amsterdam");
    }

    #[test]
    fn module_slide_add_function() {
        assert_eq!(
            run("declare function local:add($x as xs:integer, $y as xs:integer) as xs:integer { $x + $y };
                 declare variable $zero as xs:integer := 0;
                 local:add(2, $zero)"),
            "2"
        );
    }
}

mod memoization {
    use super::*;
    use xqr_compiler::{compile, CompileOptions};

    #[test]
    fn memoized_fibonacci_does_fewer_calls() {
        let q = "declare function local:fib($n as xs:integer) as xs:integer {
                   if ($n lt 2) then $n else local:fib($n - 1) + local:fib($n - 2)
                 };
                 local:fib(18)";
        let compiled = compile(q, &CompileOptions::default()).unwrap();
        let store = Store::new();
        let ctx = DynamicContext::new();
        let (r1, c1) = crate::execute(
            &compiled,
            &store,
            &ctx,
            RuntimeOptions {
                memoize_functions: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (r2, c2) = crate::execute(
            &compiled,
            &store,
            &ctx,
            RuntimeOptions {
                memoize_functions: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(serialize_sequence(&r1, &store), "2584");
        assert!(
            c2.function_calls.get() * 10 < c1.function_calls.get(),
            "memoization should collapse the call tree: {} vs {}",
            c2.function_calls.get(),
            c1.function_calls.get()
        );
        assert!(c2.memo_hits.get() > 0);
    }
}

mod counters {
    use super::*;
    use xqr_compiler::{compile, CompileOptions};

    #[test]
    fn early_exit_counter_ticks() {
        let compiled = compile("(1 to 100000)[2]", &CompileOptions::default()).unwrap();
        let store = Store::new();
        let ctx = DynamicContext::new();
        let (r, c) = crate::execute(&compiled, &store, &ctx, RuntimeOptions::default()).unwrap();
        assert_eq!(serialize_sequence(&r, &store), "2");
        assert!(c.early_exits.get() >= 1);
        assert!(c.items_produced.get() < 1000, "{}", c.items_produced.get());
    }

    #[test]
    fn ddo_elimination_reduces_sorts() {
        let doc = "<a><b><c/><c/></b><b><c/></b></a>";
        let q = r#"declare variable $d := doc("d.xml"); count($d/a/b/c)"#;
        let run_counting = |cfg: RewriteConfig| {
            let compiled = compile(
                q,
                &CompileOptions {
                    rewrite: cfg,
                    ..Default::default()
                },
            )
            .unwrap();
            let store = Store::new();
            let mut ctx = DynamicContext::new();
            ctx.add_document("d.xml", doc);
            let (r, c) =
                crate::execute(&compiled, &store, &ctx, RuntimeOptions::default()).unwrap();
            (serialize_sequence(&r, &store), c.ddo_sorts.get())
        };
        let (r_on, sorts_on) = run_counting(RewriteConfig::all());
        let (r_off, sorts_off) = run_counting(RewriteConfig::none());
        assert_eq!(r_on, r_off);
        assert_eq!(r_on, "3");
        assert!(sorts_on < sorts_off, "ddo-elim: {sorts_on} vs {sorts_off}");
    }
}
