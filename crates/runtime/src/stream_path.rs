//! Token-level streaming evaluation of simple path queries — the
//! XQRL/BEA headline: "start computation BEFORE the entire data input is
//! received; output parts of the result BEFORE the entire input is read;
//! minimize the memory footprint".
//!
//! When the compiled query is a forward path of child/descendant name
//! steps (the message-broker use case: "simple path expressions, single
//! input message"), the engine bypasses the store entirely and runs this
//! matcher over a [`TokenIterator`], emitting matched subtrees as
//! serialized XML the moment their end tag arrives — and `skip()`ping
//! whole subtrees that no pattern state can match.

use xqr_compiler::Core;
use xqr_tokenstream::{Token, TokenIterator};
use xqr_xdm::{Error, QName, QueryGuard, Result};
use xqr_xmlparse::{WriterOptions, XmlWriter};
use xqr_xqparser::ast::{AxisName, NodeTest};

/// One step of a streamable pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStep {
    /// True = descendant axis, false = child.
    pub descendant: bool,
    /// Element name to match (`None` = any element).
    pub name: Option<QName>,
}

/// A streamable pattern: a chain of steps from the document root.
///
/// **Match semantics.** The matcher emits *outermost* matches: when a
/// match contains another match in its subtree, only the outer one is
/// emitted (its serialization includes the inner one). For patterns
/// whose steps are all child edges, matches sit at a fixed depth and
/// can never nest, so streaming results equal materialized evaluation
/// exactly — [`StreamPattern::is_exact`] reports this.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPattern {
    pub steps: Vec<StreamStep>,
}

impl StreamPattern {
    /// Longest recognizable pattern. The matcher keeps per-element state
    /// as a `u32` bitmask of matched prefix lengths (bit `p` = prefix of
    /// length `p`, bit `len` = full match), so a pattern may have at
    /// most 31 steps; longer paths silently stay on the navigational
    /// plan, which answers them correctly without streaming.
    pub const MAX_STEPS: usize = 31;

    /// Try to recognize the compiled core as a streamable path rooted at
    /// the document: nests of `Ddo(PathMap(..))` over `Root` with
    /// child/descendant(-or-self) element name steps and no predicates.
    pub fn extract(core: &Core) -> Option<StreamPattern> {
        let mut steps = Vec::new();
        let mut pending_dos = false;
        if !collect(core, &mut steps, &mut pending_dos) {
            return None;
        }
        // A trailing descendant-or-self::node() pseudo-step never merged
        // into a following named step: the streaming encoding would match
        // descendant *elements* only, while materialized evaluation also
        // returns the context node itself and non-element nodes.
        if pending_dos {
            return None;
        }
        if steps.is_empty() || steps.len() > Self::MAX_STEPS {
            return None;
        }
        Some(StreamPattern { steps })
    }

    /// [`StreamPattern::extract`] for callers that have already decided
    /// the plan is streamable: a non-streamable core is an internal
    /// error (`err:XQRL0000`), never a panic.
    pub fn extract_required(core: &Core) -> Result<StreamPattern> {
        StreamPattern::extract(core)
            .ok_or_else(|| Error::internal(format!("not streamable: {core:?}")))
    }

    /// Child-only patterns match at a fixed depth: matches cannot nest
    /// and streaming equals materialized evaluation exactly. Patterns
    /// with descendant edges use outermost-match semantics.
    pub fn is_exact(&self) -> bool {
        self.steps.iter().all(|s| !s.descendant)
    }
}

fn collect(core: &Core, steps: &mut Vec<StreamStep>, pending_dos: &mut bool) -> bool {
    match core {
        Core::Root => true,
        Core::Ddo(inner) => collect(inner, steps, pending_dos),
        // An index-backed plan streams via its navigational fallback: the
        // streaming path never consults the store (or its indexes) at all.
        Core::IndexScan { fallback, .. } => collect(fallback, steps, pending_dos),
        Core::PathMap { input, step } => {
            if !collect(input, steps, pending_dos) {
                return false;
            }
            match &**step {
                Core::Step { axis, test } => {
                    let descendant = match axis {
                        AxisName::Child => false,
                        AxisName::Descendant => true,
                        AxisName::DescendantOrSelf => {
                            // dos::node() as an intermediate (the `//`
                            // expansion): mark the *next* step descendant.
                            // The flag — not a pushed pseudo-step — so a
                            // genuine `descendant::*` step can never be
                            // mistaken for one and wrongly merged.
                            if *pending_dos {
                                return false;
                            }
                            *pending_dos = true;
                            return matches!(test, NodeTest::AnyKind);
                        }
                        _ => return false,
                    };
                    let name = match test {
                        NodeTest::Name(q) => Some(q.clone()),
                        NodeTest::AnyName => None,
                        _ => return false,
                    };
                    if *pending_dos {
                        *pending_dos = false;
                        if descendant {
                            // dos::node()/descendant::x has no single-step
                            // streaming encoding: the self component of
                            // dos makes x reachable one level shallower
                            // than `descendant, then descendant` allows.
                            return false;
                        }
                        steps.push(StreamStep {
                            descendant: true,
                            name,
                        });
                    } else {
                        steps.push(StreamStep { descendant, name });
                    }
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Instrumentation the streaming experiments read.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamStats {
    pub tokens_seen: u64,
    pub tokens_skipped: u64,
    pub matches: u64,
}

/// The running matcher.
pub struct StreamMatcher<I: TokenIterator> {
    it: I,
    pattern: StreamPattern,
    /// Per-open-element state: bitmask of pattern prefix lengths
    /// currently satisfied (bit p = "steps[..p] matched along this
    /// path"). Bit `len` = full match.
    states: Vec<u32>,
    /// Depth at which a capture started (serializing until it closes).
    capture_depth: Option<usize>,
    writer: Option<XmlWriter>,
    pending: Vec<(
        QName,
        Vec<xqr_xmlparse::Attribute>,
        Vec<xqr_xmlparse::NamespaceDecl>,
    )>,
    /// Optional budget: emitted matches charge the output-byte cap (the
    /// token/depth budgets are charged by a guarded token iterator).
    guard: Option<QueryGuard>,
    pub stats: StreamStats,
}

impl<I: TokenIterator> StreamMatcher<I> {
    pub fn new(it: I, pattern: StreamPattern) -> Self {
        StreamMatcher {
            it,
            pattern,
            states: vec![1], // bit 0: empty prefix matched at the root
            capture_depth: None,
            writer: None,
            pending: Vec::new(),
            guard: None,
            stats: StreamStats::default(),
        }
    }

    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    fn advance_mask(&self, parent_mask: u32, name: &QName) -> u32 {
        let n = self.pattern.steps.len();
        let mut mask = 0u32;
        for p in 0..=n {
            if parent_mask & (1 << p) == 0 {
                continue;
            }
            if p < n {
                let step = &self.pattern.steps[p];
                // Does this element advance prefix p → p+1?
                if step.name.as_ref().is_none_or(|q| q == name) {
                    mask |= 1 << (p + 1);
                }
                // Descendant steps keep the prefix alive below.
                if step.descendant {
                    mask |= 1 << p;
                }
            }
        }
        mask
    }

    /// Pull until the next full match; returns the serialized subtree.
    pub fn next_match(&mut self) -> Result<Option<String>> {
        loop {
            let Some(tok) = self.it.next_token()? else {
                return Ok(None);
            };
            self.stats.tokens_seen += 1;
            match tok {
                Token::StartDocument | Token::EndDocument => {}
                Token::StartElement(nid) => {
                    let name = self.it.name(nid);
                    // Flush any pending start tag into the writer first.
                    self.flush_pending()?;
                    let parent = *self.states.last().expect("root state");
                    let mask = self.advance_mask(parent, &name);
                    self.states.push(mask);
                    let full_bit = 1u32 << self.pattern.steps.len();
                    if self.capture_depth.is_none() && mask & full_bit != 0 {
                        self.capture_depth = Some(self.states.len() - 1);
                        self.writer = Some(XmlWriter::new(WriterOptions::default()));
                    }
                    if self.capture_depth.is_some() {
                        self.pending.push((name, Vec::new(), Vec::new()));
                    } else if mask == 0 {
                        // Nothing below can match: the talk's skip().
                        let skipped = self.it.skip_subtree()?;
                        self.stats.tokens_skipped += skipped as u64;
                        self.states.pop();
                    }
                }
                Token::Attribute(nid, vid) => {
                    if self.capture_depth.is_some() {
                        if let Some((_, attrs, _)) = self.pending.last_mut() {
                            attrs.push(xqr_xmlparse::Attribute {
                                name: self.it.name(nid),
                                value: self.it.pooled_str(vid),
                            });
                        }
                    }
                }
                Token::NamespaceDecl(pid, uid) => {
                    if self.capture_depth.is_some() {
                        if let Some((_, _, decls)) = self.pending.last_mut() {
                            let prefix = self.it.pooled_str(pid);
                            decls.push(xqr_xmlparse::NamespaceDecl {
                                prefix: if prefix.is_empty() {
                                    None
                                } else {
                                    Some(prefix)
                                },
                                uri: self.it.pooled_str(uid),
                            });
                        }
                    }
                }
                Token::Text(sid) => {
                    if self.capture_depth.is_some() {
                        self.flush_pending()?;
                        let w = self.writer.as_mut().expect("writer during capture");
                        w.write(&xqr_xmlparse::XmlEvent::Text(self.it.pooled_str(sid)))?;
                    }
                }
                Token::Comment(sid) => {
                    if self.capture_depth.is_some() {
                        self.flush_pending()?;
                        let w = self.writer.as_mut().expect("writer during capture");
                        w.write(&xqr_xmlparse::XmlEvent::Comment(self.it.pooled_str(sid)))?;
                    }
                }
                Token::ProcessingInstruction(nid, did) => {
                    if self.capture_depth.is_some() {
                        self.flush_pending()?;
                        let w = self.writer.as_mut().expect("writer during capture");
                        w.write(&xqr_xmlparse::XmlEvent::ProcessingInstruction {
                            target: std::sync::Arc::from(self.it.name(nid).local_name()),
                            data: self.it.pooled_str(did),
                        })?;
                    }
                }
                Token::EndElement => {
                    if self.capture_depth.is_some() {
                        self.flush_pending()?;
                        let w = self.writer.as_mut().expect("writer during capture");
                        w.write(&xqr_xmlparse::XmlEvent::EndElement {
                            name: QName::local(""),
                        })?;
                    }
                    let depth = self.states.len() - 1;
                    self.states.pop();
                    if self.capture_depth == Some(depth) {
                        self.capture_depth = None;
                        let out = self.writer.take().expect("writer").into_string();
                        self.stats.matches += 1;
                        if let Some(guard) = &self.guard {
                            guard.note_output_bytes(out.len() as u64)?;
                        }
                        return Ok(Some(out));
                    }
                }
            }
        }
    }

    /// Collect every match (driver for tests/benches).
    pub fn all_matches(&mut self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        while let Some(m) = self.next_match()? {
            out.push(m);
        }
        Ok(out)
    }

    /// Count matches without serializing them — `count(//path)` in pure
    /// streaming mode. Matched subtrees are `skip()`ed over entirely
    /// (outermost-match semantics, like [`Self::next_match`]).
    pub fn count_matches(&mut self) -> Result<u64> {
        let mut count = 0u64;
        loop {
            let Some(tok) = self.it.next_token()? else {
                return Ok(count);
            };
            self.stats.tokens_seen += 1;
            match tok {
                Token::StartElement(nid) => {
                    let name = self.it.name(nid);
                    let parent = *self.states.last().expect("root state");
                    let mask = self.advance_mask(parent, &name);
                    let full_bit = 1u32 << self.pattern.steps.len();
                    if mask & full_bit != 0 {
                        count += 1;
                        self.stats.matches += 1;
                        // The whole match subtree can be skipped.
                        let skipped = self.it.skip_subtree()?;
                        self.stats.tokens_skipped += skipped as u64;
                    } else if mask == 0 {
                        let skipped = self.it.skip_subtree()?;
                        self.stats.tokens_skipped += skipped as u64;
                    } else {
                        self.states.push(mask);
                    }
                }
                Token::EndElement => {
                    self.states.pop();
                }
                _ => {}
            }
        }
    }

    fn flush_pending(&mut self) -> Result<()> {
        if self.capture_depth.is_none() {
            self.pending.clear();
            return Ok(());
        }
        if let Some(w) = self.writer.as_mut() {
            for (name, attributes, namespaces) in self.pending.drain(..) {
                w.write(&xqr_xmlparse::XmlEvent::StartElement {
                    name,
                    attributes,
                    namespaces,
                    empty: false,
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_compiler::{compile, CompileOptions};
    use xqr_tokenstream::ParserTokenIterator;
    use xqr_xdm::NamePool;

    fn pattern(query: &str) -> StreamPattern {
        let q = compile(query, &CompileOptions::default()).unwrap();
        StreamPattern::extract_required(&q.module.body).unwrap()
    }

    fn run(query: &str, xml: &str) -> (Vec<String>, StreamStats) {
        let p = pattern(query);
        let it = ParserTokenIterator::new(xml, Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p);
        let out = m.all_matches().unwrap();
        (out, m.stats)
    }

    #[test]
    fn extract_recognizes_simple_paths() {
        assert_eq!(pattern("/a/b").steps.len(), 2);
        let p = pattern("//item");
        assert_eq!(p.steps.len(), 1);
        assert!(p.steps[0].descendant);
        let p = pattern("/bib//book/title");
        assert_eq!(p.steps.len(), 3);
        assert!(!p.steps[0].descendant);
        assert!(p.steps[1].descendant);
        assert!(!p.steps[2].descendant);
    }

    #[test]
    fn extract_rejects_non_streamable() {
        let q = compile("1 + 1", &CompileOptions::default()).unwrap();
        assert!(StreamPattern::extract(&q.module.body).is_none());
        let q = compile("//book[3]", &CompileOptions::default()).unwrap();
        assert!(StreamPattern::extract(&q.module.body).is_none());
    }

    #[test]
    fn child_path_matches() {
        let (out, _) = run("/a/b", "<a><b>1</b><c><b>no</b></c><b>2</b></a>");
        assert_eq!(out, vec!["<b>1</b>", "<b>2</b>"]);
    }

    #[test]
    fn descendant_path_matches() {
        let (out, _) = run("//b", "<a><b>1</b><c><b x=\"y\">2</b></c></a>");
        assert_eq!(out, vec!["<b>1</b>", "<b x=\"y\">2</b>"]);
    }

    #[test]
    fn mixed_path() {
        let xml = "<bib><group><book><title>T1</title></book></group><book><title>T2</title></book></bib>";
        let (out, _) = run("/bib//book/title", xml);
        assert_eq!(out, vec!["<title>T1</title>", "<title>T2</title>"]);
    }

    #[test]
    fn skip_avoids_unmatchable_subtrees() {
        // Pattern /a/b cannot match inside <z>…</z>: the matcher must
        // skip the whole subtree.
        let mut xml = String::from("<a><z>");
        for i in 0..1000 {
            xml.push_str(&format!("<junk>{i}</junk>"));
        }
        xml.push_str("</z><b>hit</b></a>");
        let (out, stats) = run("/a/b", &xml);
        assert_eq!(out, vec!["<b>hit</b>"]);
        assert!(
            stats.tokens_skipped > 2500,
            "expected bulk skipping, got {stats:?}"
        );
    }

    #[test]
    fn no_skip_under_descendant_steps() {
        let (out, stats) = run("//b", "<a><z><b>deep</b></z></a>");
        assert_eq!(out, vec!["<b>deep</b>"]);
        assert_eq!(stats.tokens_skipped, 0);
    }

    #[test]
    fn count_matches_without_serializing() {
        let p = pattern("/a/b");
        let it = ParserTokenIterator::new(
            "<a><b>1</b><z><b>not-child</b></z><b>2</b></a>",
            Arc::new(NamePool::new()),
        );
        let mut m = StreamMatcher::new(it, p);
        assert_eq!(m.count_matches().unwrap(), 2);
        assert!(m.stats.tokens_skipped > 0);
        // Outermost semantics for nested descendants.
        let p = pattern("//b");
        let it = ParserTokenIterator::new("<a><b><b/></b><b/></a>", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p);
        assert_eq!(m.count_matches().unwrap(), 2);
    }

    #[test]
    fn nested_matches_capture_outermost() {
        let (out, _) = run("//b", "<a><b>outer<b>inner</b></b></a>");
        assert_eq!(out, vec!["<b>outer<b>inner</b></b>"]);
    }

    #[test]
    fn extract_required_reports_internal_error() {
        let q = compile("1 + 1", &CompileOptions::default()).unwrap();
        let e = StreamPattern::extract_required(&q.module.body).unwrap_err();
        assert_eq!(e.code, xqr_xdm::ErrorCode::Internal);
        assert!(e.to_string().contains("not streamable"));
    }

    #[test]
    fn output_cap_stops_streaming_matches() {
        use xqr_xdm::{ErrorCode, Limits, QueryGuard};
        let p = pattern("/a/b");
        let it =
            ParserTokenIterator::new("<a><b>1</b><b>2</b><b>3</b></a>", Arc::new(NamePool::new()));
        let guard = QueryGuard::new(Limits::unlimited().with_max_output_bytes(10));
        let mut m = StreamMatcher::new(it, p).with_guard(guard);
        // "<b>1</b>" is 8 bytes — under the cap.
        assert!(m.next_match().unwrap().is_some());
        // The second match takes the total to 16 bytes.
        let err = m.next_match().unwrap_err();
        assert_eq!(err.code, ErrorCode::Limit);
    }

    #[test]
    fn recursive_descendant_chains() {
        let (out, _) = run("//a//a", "<a><a><a/></a></a>");
        // outer capture at the first nested a
        assert_eq!(out, vec!["<a><a/></a>"]);
    }

    #[test]
    fn step_cap_rejects_long_paths() {
        // The per-element state is a u32 prefix bitmask, so patterns cap
        // at MAX_STEPS; one past it must fall off the streaming plan
        // (the navigational path still answers it — pinned in
        // tests/regressions.rs at the workspace root).
        let at_cap: String = (0..StreamPattern::MAX_STEPS)
            .map(|i| format!("/e{i}"))
            .collect();
        assert_eq!(pattern(&at_cap).steps.len(), StreamPattern::MAX_STEPS);
        let over: String = (0..StreamPattern::MAX_STEPS + 1)
            .map(|i| format!("/e{i}"))
            .collect();
        let q = compile(&over, &CompileOptions::default()).unwrap();
        assert!(
            StreamPattern::extract(&q.module.body).is_none(),
            "a {}-step path must not extract",
            StreamPattern::MAX_STEPS + 1
        );
    }

    #[test]
    fn dos_node_pseudo_step_merges_into_next_child_step() {
        // `/a/descendant-or-self::node()/b` is exactly `a//b`: the
        // pseudo-step must merge into one descendant step, not linger.
        let q = compile(
            "/a/descendant-or-self::node()/b",
            &CompileOptions::default(),
        )
        .unwrap();
        let p = StreamPattern::extract(&q.module.body).expect("streamable");
        assert_eq!(p.steps.len(), 2);
        assert!(!p.steps[0].descendant);
        assert!(p.steps[1].descendant);
        assert_eq!(p.steps[1].name.as_ref().unwrap().local_name(), "b");
    }

    #[test]
    fn trailing_dos_node_is_not_streamable() {
        // With no following step to merge into, dos::node() has no
        // element-step encoding (materialized evaluation returns the
        // context node itself plus text/comment descendants).
        let q = compile("/a/descendant-or-self::node()", &CompileOptions::default()).unwrap();
        assert!(StreamPattern::extract(&q.module.body).is_none());
        // Likewise dos::node() followed by an explicit descendant step:
        // the self component makes the target reachable one level
        // shallower than two chained descendant steps allow.
        let q = compile(
            "/a/descendant-or-self::node()/descendant::b",
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(StreamPattern::extract(&q.module.body).is_none());
    }

    #[test]
    fn explicit_descendant_wildcard_does_not_merge() {
        // `/a/descendant::*/b` requires b at depth >= 3: an element
        // strictly below a, then a b child. The old pseudo-step merge
        // collapsed this to `a//b`, wrongly matching `<a><b/></a>`.
        let q = compile("/a/descendant::*/b", &CompileOptions::default()).unwrap();
        let p = StreamPattern::extract(&q.module.body).expect("streamable");
        assert_eq!(p.steps.len(), 3);
        assert!(p.steps[1].descendant && p.steps[1].name.is_none());
        assert!(!p.steps[2].descendant);
        let it = ParserTokenIterator::new("<a><b>shallow</b></a>", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p.clone());
        assert_eq!(m.all_matches().unwrap(), Vec::<String>::new());
        let it = ParserTokenIterator::new("<a><z><b>deep</b></z></a>", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p);
        assert_eq!(m.all_matches().unwrap(), vec!["<b>deep</b>"]);
    }

    #[test]
    fn wildcard_steps_match_any_element() {
        let (out, _) = run("/a/*", "<a><b>1</b><c>2</c></a>");
        assert_eq!(out, vec!["<b>1</b>", "<c>2</c>"]);
        let p = pattern("//*");
        assert_eq!(p.steps.len(), 1);
        assert!(p.steps[0].descendant && p.steps[0].name.is_none());
        let it = ParserTokenIterator::new("<a><b/></a>", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p);
        // Outermost semantics: the document element swallows everything.
        assert_eq!(m.all_matches().unwrap(), vec!["<a><b/></a>"]);
    }

    #[test]
    fn empty_and_elementless_input_through_next_match() {
        // A document with no elements at all still terminates cleanly.
        let p = pattern("/a/b");
        let it = ParserTokenIterator::new("", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p.clone());
        match m.next_match() {
            Ok(None) => {}
            Ok(Some(m)) => panic!("match from empty input: {m:?}"),
            Err(e) => assert_ne!(
                e.code,
                xqr_xdm::ErrorCode::Internal,
                "empty input must not surface an internal error: {e}"
            ),
        }
        // Whitespace-only input likewise: either a clean end-of-stream
        // or a coded parse error, never a panic or a match.
        let it = ParserTokenIterator::new("   ", Arc::new(NamePool::new()));
        let mut m = StreamMatcher::new(it, p);
        match m.next_match() {
            Ok(None) => {}
            Ok(Some(m)) => panic!("match from whitespace input: {m:?}"),
            Err(e) => assert_ne!(e.code, xqr_xdm::ErrorCode::Internal),
        }
    }
}
