//! The push-based streaming evaluator.
//!
//! The talk's engine pulls tokens through TokenIterators; the Rust
//! equivalent with the same asymptotics is a *push* pipeline with a stop
//! signal: every operator streams items into a [`Sink`] and the sink
//! returns [`Flow::Done`] to cut evaluation short. That single mechanism
//! implements the talk's lazy-evaluation demands — quantifiers stop at
//! the first witness, positional predicates stop at position `k`
//! (experiments E2/E10), `fn:exists`/`fn:empty` stop after one item —
//! while operators that genuinely need materialization (sort, ddo,
//! multiply-used variables) collect into vectors, exactly the talk's
//! "when should we materialize?" list.

use crate::compare::{general_compare, node_compare, value_compare};
use crate::construct;
use crate::env::{DynamicContext, ExecState, Focus};
use crate::functions;
use crate::value::{atomize, atomize_one, effective_boolean_value, Item, Sequence};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use xqr_compiler::{Core, CoreClause, CoreModule, CoreName, FuncId, VarId};
use xqr_store::{walk, Axis, DocId, NodeId, NodeRef};
use xqr_xdm::{
    AtomicType, AtomicValue, Error, ErrorCode, GuardUsage, ItemType, Limits, NameTest, NodeKind,
    QName, Result, SequenceType,
};
use xqr_xqparser::ast::{AxisName, NodeTest};

/// Stop/continue signal returned by sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    More,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetOp {
    Union,
    Intersect,
    Except,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafCtor {
    Text,
    Comment,
}

/// Consumer of a streamed item sequence.
pub trait Sink {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow>;
}

struct VecSink<'a>(&'a mut Sequence);

impl Sink for VecSink<'_> {
    fn accept(&mut self, _ev: &Evaluator<'_>, _st: &mut ExecState, item: Item) -> Result<Flow> {
        self.0.push(item);
        Ok(Flow::More)
    }
}

struct LimitSink<'a> {
    out: &'a mut Sequence,
    limit: usize,
}

impl Sink for LimitSink<'_> {
    fn accept(&mut self, _ev: &Evaluator<'_>, _st: &mut ExecState, item: Item) -> Result<Flow> {
        self.out.push(item);
        Ok(if self.out.len() >= self.limit {
            Flow::Done
        } else {
            Flow::More
        })
    }
}

/// Execution counters (instrumentation for tests and the benches).
#[derive(Debug, Default)]
pub struct Counters {
    pub items_produced: Cell<u64>,
    pub nodes_constructed: Cell<u64>,
    pub ddo_sorts: Cell<u64>,
    pub early_exits: Cell<u64>,
    pub function_calls: Cell<u64>,
    pub memo_hits: Cell<u64>,
    pub join_builds: Cell<u64>,
    /// Index-backed access paths answered from a structural index.
    pub index_hits: Cell<u64>,
    /// Index-backed access paths that fell back to navigation (no index
    /// attached, unknown document, or no context node).
    pub index_misses: Cell<u64>,
    /// Index-fed twig joins that actually split into ≥ 2 morsels.
    pub parallel_joins: Cell<u64>,
    /// Morsels executed across those joins (serial joins count 0).
    pub morsels_run: Cell<u64>,
    /// Inverted-list scans answered from a shared batch scan cache
    /// instead of being rebuilt from the index.
    pub scan_cache_hits: Cell<u64>,
    /// Budget consumption gauges, copied from the [`xqr_xdm::QueryGuard`]
    /// after execution so explain/bench output can report them.
    pub budget_items: Cell<u64>,
    pub budget_tokens: Cell<u64>,
    pub budget_output_bytes: Cell<u64>,
    pub budget_peak_depth: Cell<u64>,
    /// Streaming-pass gauges, recorded via
    /// [`Counters::record_stream_stats`] when an execution (or a pub/sub
    /// shared pass) ran the token-streaming matcher, so `skip()` pruning
    /// shows up on the same surface as materialized counters.
    pub stream_tokens_seen: Cell<u64>,
    pub stream_tokens_skipped: Cell<u64>,
    pub stream_matches: Cell<u64>,
    /// Store documents allocated by constructors, transferred from
    /// [`crate::ExecState::constructed_docs`] after a successful
    /// execution. The result owner frees them when it is done.
    pub constructed_docs: Vec<DocId>,
}

impl Counters {
    /// Snapshot the guard's consumption gauges into the counters.
    pub fn record_guard_usage(&self, usage: &GuardUsage) {
        self.budget_items.set(usage.items);
        self.budget_tokens.set(usage.tokens);
        self.budget_output_bytes.set(usage.output_bytes);
        self.budget_peak_depth.set(usage.peak_depth);
    }

    /// Accumulate one streaming pass's [`crate::StreamStats`] into the
    /// stream gauges (accumulating, not overwriting: a publish may run a
    /// shared pass and later record fallback passes too).
    pub fn record_stream_stats(&self, stats: &crate::StreamStats) {
        self.stream_tokens_seen
            .set(self.stream_tokens_seen.get() + stats.tokens_seen);
        self.stream_tokens_skipped
            .set(self.stream_tokens_skipped.get() + stats.tokens_skipped);
        self.stream_matches
            .set(self.stream_matches.get() + stats.matches);
    }
}

/// Runtime options.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Memoize pure user-function calls (the talk's memoization slide).
    pub memoize_functions: bool,
    /// Recursion depth limit for user functions. The default is sized
    /// for ordinary (2 MiB) stacks; the engine facade raises it because
    /// it evaluates on a dedicated large-stack thread.
    pub max_call_depth: usize,
    /// Resource budgets for the execution (deadline, cancellation,
    /// materialization/token/output/depth caps). Unlimited by default.
    pub limits: Limits,
    /// Morsel-parallel execution of index-fed structural joins. On by
    /// default; joins below the config's split threshold (and every
    /// unindexed document) still run serially, so small queries pay
    /// nothing. Participates in `Debug` (and therefore in the engine's
    /// options fingerprint — plan caches key on it).
    pub parallel: xqr_parallel::ParallelConfig,
    /// Test-only fault injection: panic at `eval_module` entry so the
    /// engine's panic-containment boundary can be exercised. Never set
    /// outside tests.
    pub debug_inject_panic: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            memoize_functions: false,
            max_call_depth: 64,
            limits: Limits::unlimited(),
            parallel: xqr_parallel::ParallelConfig::default(),
            debug_inject_panic: false,
        }
    }
}

/// Hash-join key: general-`=` equality classes (the talk warns that
/// general comparisons are not transitive — untyped values therefore
/// enter the table under every class they can match).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Num(u64),
    Str(String),
    Bool(bool),
}

fn join_keys(v: &AtomicValue) -> Vec<JoinKey> {
    use AtomicValue as V;
    match v {
        V::UntypedAtomic(s) => {
            let mut keys = vec![JoinKey::Str(s.to_string())];
            if let Ok(d) = xqr_xdm::parse_double(s.trim()) {
                keys.push(JoinKey::Num(d.to_bits()));
            }
            keys
        }
        V::String(s) | V::AnyUri(s) => vec![JoinKey::Str(s.to_string())],
        V::Boolean(b) => vec![JoinKey::Bool(*b)],
        V::Integer(i) => vec![JoinKey::Num((*i as f64).to_bits())],
        V::Decimal(d) => vec![JoinKey::Num(d.to_f64().to_bits())],
        V::Double(d) => vec![JoinKey::Num(d.to_bits())],
        V::Float(f) => vec![JoinKey::Num((*f as f64).to_bits())],
        V::Date(d) => vec![JoinKey::Num(
            (d.to_datetime().timeline_millis(0) as f64).to_bits(),
        )],
        V::DateTime(d) => vec![JoinKey::Num((d.timeline_millis(0) as f64).to_bits())],
        other => vec![JoinKey::Str(other.string_value())],
    }
}

/// The evaluator: immutable query + context, mutable [`ExecState`]
/// threaded through calls.
pub struct Evaluator<'m> {
    pub module: &'m CoreModule,
    pub dyn_ctx: &'m DynamicContext,
    pub options: RuntimeOptions,
    pub counters: Counters,
    depth: Cell<usize>,
    doc_cache: RefCell<HashMap<String, NodeRef>>,
    memo: RefCell<HashMap<(u32, String), Arc<Sequence>>>,
}

impl<'m> Evaluator<'m> {
    pub fn new(module: &'m CoreModule, dyn_ctx: &'m DynamicContext) -> Self {
        Evaluator {
            module,
            dyn_ctx,
            options: RuntimeOptions::default(),
            counters: Counters::default(),
            depth: Cell::new(0),
            doc_cache: RefCell::new(HashMap::new()),
            memo: RefCell::new(HashMap::new()),
        }
    }

    pub fn with_options(mut self, options: RuntimeOptions) -> Self {
        self.options = options;
        self
    }

    /// Evaluate the module body (globals first).
    pub fn eval_module(&self, st: &mut ExecState) -> Result<Sequence> {
        if self.options.debug_inject_panic {
            panic!("debug_inject_panic: deliberate internal fault");
        }
        st.frame.ensure(self.module.var_count);
        for (name, var, value) in &self.module.globals {
            let seq = match value {
                Some(e) => self.eval(e, st)?,
                None => self.dyn_ctx.variables.get(name).cloned().ok_or_else(|| {
                    Error::new(
                        ErrorCode::MissingContext,
                        format!("external variable ${name} not bound"),
                    )
                })?,
            };
            st.frame.bind(*var, Arc::new(seq));
        }
        if let Some(item) = &self.dyn_ctx.context_item {
            st.focus.push(Focus {
                item: item.clone(),
                position: 1,
                size: Some(1),
            });
        }
        self.eval(&self.module.body, st)
    }

    /// Materialize the full result of `e`.
    pub fn eval(&self, e: &Core, st: &mut ExecState) -> Result<Sequence> {
        let mut out = Sequence::new();
        self.push(e, st, &mut VecSink(&mut out))?;
        Ok(out)
    }

    /// Materialize at most `limit` items (lazy pulls for exists/ebv).
    pub fn eval_limited(&self, e: &Core, st: &mut ExecState, limit: usize) -> Result<Sequence> {
        if limit == 0 {
            return Ok(Sequence::new());
        }
        let mut out = Sequence::new();
        let flow = self.push(
            e,
            st,
            &mut LimitSink {
                out: &mut out,
                limit,
            },
        )?;
        if flow == Flow::Done {
            self.counters
                .early_exits
                .set(self.counters.early_exits.get() + 1);
        }
        Ok(out)
    }

    /// Effective boolean value with early exit: at most two items pulled.
    pub fn eval_ebv(&self, e: &Core, st: &mut ExecState) -> Result<bool> {
        let items = self.eval_limited(e, st, 2)?;
        effective_boolean_value(&items)
    }

    /// Stream `e` into `sink`.
    pub fn push(&self, e: &Core, st: &mut ExecState, sink: &mut dyn Sink) -> Result<Flow> {
        xqr_faults::faultpoint!("eval.next");
        self.counters
            .items_produced
            .set(self.counters.items_produced.get() + 1);
        st.guard.note_items(1)?;
        match e {
            Core::Const(v) => sink.accept(self, st, Item::Atomic(v.clone())),
            Core::Empty => Ok(Flow::More),
            Core::Seq(items) => {
                for i in items {
                    if self.push(i, st, sink)? == Flow::Done {
                        return Ok(Flow::Done);
                    }
                }
                Ok(Flow::More)
            }
            Core::Range(a, b) => {
                let lo = self.eval_integer_opt(a, st)?;
                let hi = self.eval_integer_opt(b, st)?;
                let (Some(lo), Some(hi)) = (lo, hi) else {
                    return Ok(Flow::More);
                };
                let mut i = lo;
                while i <= hi {
                    // Ranges produce items without recursing through
                    // `push`, so they charge the guard directly — this is
                    // what bounds `for $x in 1 to 100000000`.
                    st.guard.note_items(1)?;
                    if sink.accept(self, st, Item::integer(i))? == Flow::Done {
                        return Ok(Flow::Done);
                    }
                    i += 1;
                }
                Ok(Flow::More)
            }
            Core::Var(v) => {
                let seq = st.frame.get(*v)?;
                for item in seq.iter() {
                    if sink.accept(self, st, item.clone())? == Flow::Done {
                        return Ok(Flow::Done);
                    }
                }
                Ok(Flow::More)
            }
            Core::ContextItem => {
                let item = st.context_item()?.clone();
                sink.accept(self, st, item)
            }
            Core::Root => {
                let item = st.context_item()?.clone();
                match item {
                    Item::Node(n) => {
                        sink.accept(self, st, Item::Node(NodeRef::new(n.doc, NodeId(0))))
                    }
                    Item::Atomic(_) => Err(Error::new(
                        ErrorCode::PathOnAtomic,
                        "leading / requires a node context item",
                    )),
                }
            }
            Core::For {
                var,
                position,
                source,
                body,
            } => {
                let mut fs = ForSink {
                    var: *var,
                    position: *position,
                    body,
                    downstream: sink,
                    index: 0,
                };
                self.push(source, st, &mut fs)
            }
            Core::Let { var, value, body } => {
                let v = self.eval(value, st)?;
                let saved = st.frame.bind(*var, Arc::new(v));
                let r = self.push(body, st, sink);
                st.frame.restore(*var, saved);
                r
            }
            Core::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_ebv(cond, st)? {
                    self.push(then_branch, st, sink)
                } else {
                    self.push(else_branch, st, sink)
                }
            }
            Core::And(a, b) => {
                let v = self.eval_ebv(a, st)? && self.eval_ebv(b, st)?;
                sink.accept(self, st, Item::boolean(v))
            }
            Core::Or(a, b) => {
                let v = self.eval_ebv(a, st)? || self.eval_ebv(b, st)?;
                sink.accept(self, st, Item::boolean(v))
            }
            Core::Ebv(inner) => {
                let v = self.eval_ebv(inner, st)?;
                sink.accept(self, st, Item::boolean(v))
            }
            Core::Arith(op, a, b) => self.eval_arith(*op, a, b, st, sink),
            Core::Neg(a) => self.eval_neg(a, st, sink),
            Core::Compare(op, a, b) => self.eval_compare(*op, a, b, st, sink),
            Core::Quantified {
                every,
                var,
                source,
                satisfies,
            } => {
                let mut qs = QuantSink {
                    var: *var,
                    every: *every,
                    satisfies,
                    verdict: *every, // every: true until counterexample; some: false until witness
                };
                self.push(source, st, &mut qs)?;
                sink.accept(self, st, Item::boolean(qs.verdict))
            }
            Core::Union(a, b) => self.eval_set_op(a, b, SetOp::Union, st, sink),
            Core::Intersect(a, b) => self.eval_set_op(a, b, SetOp::Intersect, st, sink),
            Core::Except(a, b) => self.eval_set_op(a, b, SetOp::Except, st, sink),
            Core::Step { axis, test } => self.eval_step(*axis, test, st, sink),
            Core::PathMap { input, step } => {
                let mut ps = PathSink {
                    step,
                    downstream: sink,
                    saw_node: false,
                    saw_atomic: false,
                };
                self.push(input, st, &mut ps)
            }
            Core::Ddo(inner) => {
                let items = self.eval(inner, st)?;
                let out = self.ddo(items)?;
                for item in out {
                    if sink.accept(self, st, item)? == Flow::Done {
                        return Ok(Flow::Done);
                    }
                }
                Ok(Flow::More)
            }
            Core::Filter { input, predicate } => {
                if uses_last(predicate) {
                    // last() requires the context size: materialize.
                    let items = self.eval(input, st)?;
                    let size = items.len() as i64;
                    for (i, item) in items.into_iter().enumerate() {
                        st.focus.push(Focus {
                            item: item.clone(),
                            position: i as i64 + 1,
                            size: Some(size),
                        });
                        let keep = self.predicate_holds(predicate, st, i as i64 + 1)?;
                        st.focus.pop();
                        if keep && sink.accept(self, st, item)? == Flow::Done {
                            return Ok(Flow::Done);
                        }
                    }
                    Ok(Flow::More)
                } else {
                    let mut fs = FilterSink {
                        predicate,
                        downstream: sink,
                        position: 0,
                    };
                    self.push(input, st, &mut fs)
                }
            }
            Core::PositionConst { input, position } => {
                if *position < 1 {
                    return Ok(Flow::More);
                }
                let mut ps = NthSink {
                    wanted: *position,
                    seen: 0,
                    downstream: sink,
                };
                let flow = self.push(input, st, &mut ps)?;
                if flow == Flow::Done {
                    // We stopped the upstream early — the talk's skip().
                    self.counters
                        .early_exits
                        .set(self.counters.early_exits.get() + 1);
                }
                Ok(Flow::More)
            }
            Core::Builtin(name, args) => functions::call(self, name, args, st, sink),
            Core::UserCall(fid, args) => self.call_user(*fid, args, st, sink),
            Core::InstanceOf(inner, ty) => {
                let items = self.eval(inner, st)?;
                let store = st.store.clone();
                let r = sequence_matches(&items, ty, &store);
                sink.accept(self, st, Item::boolean(r))
            }
            Core::CastAs(inner, ty, optional) => self.eval_cast(inner, *ty, *optional, st, sink),
            Core::CastableAs(inner, ty, optional) => {
                self.eval_castable(inner, *ty, *optional, st, sink)
            }
            Core::TreatAs(inner, ty) => self.eval_treat(inner, ty, st, sink),
            Core::Typeswitch {
                operand,
                cases,
                default_var,
                default_body,
            } => self.eval_typeswitch(operand, cases, *default_var, default_body, st, sink),
            Core::ElemCtor {
                name,
                namespaces,
                content,
            } => self.eval_elem_ctor(name, namespaces, content, st, sink),
            Core::AttrCtor { name, value } => self.eval_attr_ctor(name, value, st, sink),
            Core::TextCtor(inner) => self.eval_leaf_ctor(LeafCtor::Text, inner, st, sink),
            Core::CommentCtor(inner) => self.eval_leaf_ctor(LeafCtor::Comment, inner, st, sink),
            Core::PiCtor { target, value } => {
                let tname = self.resolve_ctor_name(target, st, false)?;
                self.eval_pi_ctor(tname, value, st, sink)
            }
            Core::DocCtor(inner) => {
                let items = self.eval(inner, st)?;
                let node = construct::build_document(&st.store, &items)?;
                st.constructed_docs.push(node.doc);
                self.counters
                    .nodes_constructed
                    .set(self.counters.nodes_constructed.get() + 1);
                sink.accept(self, st, Item::Node(node))
            }
            Core::OrderedFlwor {
                clauses,
                where_clause,
                order,
                stable,
                body,
            } => self.eval_ordered_flwor(
                clauses,
                where_clause.as_deref(),
                order,
                *stable,
                body,
                st,
                sink,
            ),
            Core::HashJoin {
                outer_var,
                outer,
                inner_var,
                inner,
                outer_key,
                inner_key,
                group,
                body,
            } => self.eval_hash_join(
                *outer_var,
                outer,
                *inner_var,
                inner,
                outer_key,
                inner_key,
                group.as_ref(),
                body,
                st,
                sink,
            ),
            Core::IndexScan { pattern, fallback } => {
                // `?` on the scan: cancellation/deadline/fault errors
                // from a parallel join abort the query; only "cannot
                // answer here" (`Ok(None)`) falls back to navigation.
                match crate::index_scan::try_index_scan(
                    pattern,
                    st,
                    &self.options.parallel,
                    &self.counters,
                )? {
                    Some(nodes) => {
                        self.counters
                            .index_hits
                            .set(self.counters.index_hits.get() + 1);
                        // Index answers bypass per-step pushes, so charge
                        // the guard per emitted node (like `Range`).
                        for n in nodes {
                            st.guard.note_items(1)?;
                            if sink.accept(self, st, Item::Node(n))? == Flow::Done {
                                return Ok(Flow::Done);
                            }
                        }
                        Ok(Flow::More)
                    }
                    None => {
                        self.counters
                            .index_misses
                            .set(self.counters.index_misses.get() + 1);
                        self.push(fallback, st, sink)
                    }
                }
            }
        }
    }

    #[inline(never)]
    fn eval_arith(
        &self,
        op: xqr_xqparser::ast::ArithOp,
        a: &Core,
        b: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let store = st.store.clone();
        let va = self.eval(a, st)?;
        let Some(x) = atomize_one(&va, &store, op.symbol())? else {
            return Ok(Flow::More);
        };
        let vb = self.eval(b, st)?;
        let Some(y) = atomize_one(&vb, &store, op.symbol())? else {
            return Ok(Flow::More);
        };
        let r = xqr_compiler::ops::arith(op, &x, &y)?;
        sink.accept(self, st, Item::Atomic(r))
    }

    #[inline(never)]
    fn eval_neg(&self, a: &Core, st: &mut ExecState, sink: &mut dyn Sink) -> Result<Flow> {
        let store = st.store.clone();
        let va = self.eval(a, st)?;
        let Some(x) = atomize_one(&va, &store, "unary -")? else {
            return Ok(Flow::More);
        };
        sink.accept(self, st, Item::Atomic(xqr_compiler::ops::negate(&x)?))
    }

    #[inline(never)]
    fn eval_compare(
        &self,
        op: xqr_xqparser::ast::CompOp,
        a: &Core,
        b: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let va = self.eval(a, st)?;
        let vb = self.eval(b, st)?;
        let store = st.store.clone();
        let tz = self.dyn_ctx.implicit_timezone;
        if op.is_general() {
            let r = general_compare(op, &va, &vb, &store, tz)?;
            sink.accept(self, st, Item::boolean(r))
        } else if op.is_value() {
            match value_compare(op, &va, &vb, &store, tz)? {
                Some(r) => sink.accept(self, st, Item::boolean(r)),
                None => Ok(Flow::More),
            }
        } else {
            match node_compare(op, &va, &vb)? {
                Some(r) => sink.accept(self, st, Item::boolean(r)),
                None => Ok(Flow::More),
            }
        }
    }

    #[inline(never)]
    fn eval_set_op(
        &self,
        a: &Core,
        b: &Core,
        op: SetOp,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let name = match op {
            SetOp::Union => "union",
            SetOp::Intersect => "intersect",
            SetOp::Except => "except",
        };
        let left = self.eval_nodes(a, st, name)?;
        let mut right = self.eval_nodes(b, st, name)?;
        let mut out: Vec<NodeRef> = match op {
            SetOp::Union => {
                let mut all = left;
                all.extend(right);
                all
            }
            SetOp::Intersect => {
                right.sort();
                left.into_iter()
                    .filter(|n| right.binary_search(n).is_ok())
                    .collect()
            }
            SetOp::Except => {
                right.sort();
                left.into_iter()
                    .filter(|n| right.binary_search(n).is_err())
                    .collect()
            }
        };
        out.sort();
        out.dedup();
        self.push_nodes(out, st, sink)
    }

    #[inline(never)]
    fn eval_cast(
        &self,
        inner: &Core,
        ty: AtomicType,
        optional: bool,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let store = st.store.clone();
        let items = self.eval(inner, st)?;
        let Some(v) = atomize_one(&items, &store, "cast")? else {
            if optional {
                return Ok(Flow::More);
            }
            return Err(Error::type_error(
                "cast of empty sequence to non-optional type",
            ));
        };
        sink.accept(self, st, Item::Atomic(v.cast_to(ty)?))
    }

    #[inline(never)]
    fn eval_castable(
        &self,
        inner: &Core,
        ty: AtomicType,
        optional: bool,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let store = st.store.clone();
        let items = self.eval(inner, st)?;
        let r = match atomize_one(&items, &store, "castable") {
            Ok(Some(v)) => v.castable_to(ty),
            Ok(None) => optional,
            Err(_) => false,
        };
        sink.accept(self, st, Item::boolean(r))
    }

    #[inline(never)]
    fn eval_treat(
        &self,
        inner: &Core,
        ty: &SequenceType,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let items = self.eval(inner, st)?;
        let store = st.store.clone();
        if !sequence_matches(&items, ty, &store) {
            return Err(Error::type_error(format!(
                "treat as {ty} failed at runtime"
            )));
        }
        for item in items {
            if sink.accept(self, st, item)? == Flow::Done {
                return Ok(Flow::Done);
            }
        }
        Ok(Flow::More)
    }

    #[inline(never)]
    fn eval_typeswitch(
        &self,
        operand: &Core,
        cases: &[xqr_compiler::CoreCase],
        default_var: Option<VarId>,
        default_body: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let items = self.eval(operand, st)?;
        let store = st.store.clone();
        let value = Arc::new(items);
        for case in cases {
            if sequence_matches(&value, &case.ty, &store) {
                let saved = case.var.map(|v| (v, st.frame.bind(v, value.clone())));
                let r = self.push(&case.body, st, sink);
                if let Some((v, s)) = saved {
                    st.frame.restore(v, s);
                }
                return r;
            }
        }
        let saved = default_var.map(|v| (v, st.frame.bind(v, value.clone())));
        let r = self.push(default_body, st, sink);
        if let Some((v, s)) = saved {
            st.frame.restore(v, s);
        }
        r
    }

    #[inline(never)]
    fn eval_elem_ctor(
        &self,
        name: &CoreName,
        namespaces: &[(Option<String>, String)],
        content: &[Core],
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let qname = self.resolve_ctor_name(name, st, true)?;
        let mut items = Sequence::new();
        for c in content {
            items.extend(self.eval(c, st)?);
        }
        let node = construct::build_element(&st.store, &qname, namespaces, &items)?;
        st.constructed_docs.push(node.doc);
        self.counters
            .nodes_constructed
            .set(self.counters.nodes_constructed.get() + 1);
        sink.accept(self, st, Item::Node(node))
    }

    #[inline(never)]
    fn eval_attr_ctor(
        &self,
        name: &CoreName,
        value: &[Core],
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let qname = self.resolve_ctor_name(name, st, false)?;
        let mut s = String::new();
        let store = st.store.clone();
        for part in value {
            match part {
                // Literal template pieces concatenate directly…
                Core::Const(v) => s.push_str(&v.string_value()),
                // …enclosed pieces atomize and join with spaces.
                other => {
                    let items = self.eval(other, st)?;
                    let vals = atomize(&items, &store)?;
                    for (j, v) in vals.iter().enumerate() {
                        if j > 0 {
                            s.push(' ');
                        }
                        s.push_str(&v.string_value());
                    }
                }
            }
        }
        let node = construct::build_attribute(&st.store, &qname, &s)?;
        st.constructed_docs.push(node.doc);
        self.counters
            .nodes_constructed
            .set(self.counters.nodes_constructed.get() + 1);
        sink.accept(self, st, Item::Node(node))
    }

    #[inline(never)]
    fn eval_leaf_ctor(
        &self,
        kind: LeafCtor,
        inner: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let items = self.eval(inner, st)?;
        if items.is_empty() && kind == LeafCtor::Text {
            return Ok(Flow::More);
        }
        let store = st.store.clone();
        let vals = atomize(&items, &store)?;
        let s = vals
            .iter()
            .map(|v| v.string_value())
            .collect::<Vec<_>>()
            .join(" ");
        let node = match kind {
            LeafCtor::Text => construct::build_text(&st.store, &s)?,
            LeafCtor::Comment => construct::build_comment(&st.store, &s)?,
        };
        st.constructed_docs.push(node.doc);
        self.counters
            .nodes_constructed
            .set(self.counters.nodes_constructed.get() + 1);
        sink.accept(self, st, Item::Node(node))
    }

    #[inline(never)]
    fn eval_pi_ctor(
        &self,
        target: QName,
        value: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let items = self.eval(value, st)?;
        let store = st.store.clone();
        let vals = atomize(&items, &store)?;
        let s = vals
            .iter()
            .map(|v| v.string_value())
            .collect::<Vec<_>>()
            .join(" ");
        let node = construct::build_pi(&st.store, target.local_name(), &s)?;
        st.constructed_docs.push(node.doc);
        sink.accept(self, st, Item::Node(node))
    }

    fn eval_integer_opt(&self, e: &Core, st: &mut ExecState) -> Result<Option<i64>> {
        let store = st.store.clone();
        let items = self.eval(e, st)?;
        let Some(v) = atomize_one(&items, &store, "range")? else {
            return Ok(None);
        };
        match v.cast_to(AtomicType::Integer) {
            Ok(AtomicValue::Integer(i)) => Ok(Some(i)),
            _ => Err(Error::type_error("range bounds must be integers")),
        }
    }

    fn eval_nodes(&self, e: &Core, st: &mut ExecState, op: &str) -> Result<Vec<NodeRef>> {
        let items = self.eval(e, st)?;
        items
            .into_iter()
            .map(|i| {
                i.as_node().ok_or_else(|| {
                    Error::type_error(format!("{op} requires nodes, found an atomic value"))
                })
            })
            .collect()
    }

    fn push_nodes(
        &self,
        nodes: Vec<NodeRef>,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        for n in nodes {
            if sink.accept(self, st, Item::Node(n))? == Flow::Done {
                return Ok(Flow::Done);
            }
        }
        Ok(Flow::More)
    }

    /// Distinct-document-order. All-atomic sequences pass through (final
    /// path steps may produce atomics); mixed sequences are an error.
    pub fn ddo(&self, items: Sequence) -> Result<Sequence> {
        let any_node = items.iter().any(Item::is_node);
        let any_atomic = items.iter().any(|i| !i.is_node());
        if any_node && any_atomic {
            return Err(Error::new(
                ErrorCode::MixedPathResult,
                "path result mixes nodes and atomic values",
            ));
        }
        if !any_node {
            return Ok(items);
        }
        self.counters
            .ddo_sorts
            .set(self.counters.ddo_sorts.get() + 1);
        let mut nodes: Vec<NodeRef> = items
            .into_iter()
            .map(|i| i.as_node().expect("all nodes"))
            .collect();
        nodes.sort();
        nodes.dedup();
        Ok(nodes.into_iter().map(Item::Node).collect())
    }

    fn eval_step(
        &self,
        axis: AxisName,
        test: &NodeTest,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let ctx = st.context_item()?.clone();
        let Some(node) = ctx.as_node() else {
            return Err(Error::new(
                ErrorCode::AxisOnAtomic,
                "axis step on an atomic value".to_string(),
            ));
        };
        let store_axis = convert_axis(axis);
        let doc = st.store.doc_of(node);
        let candidates = walk(&doc, node.node, store_axis);
        for n in candidates {
            if node_test_matches(&doc, n, axis, test) {
                let item = Item::Node(NodeRef::new(node.doc, n));
                if sink.accept(self, st, item)? == Flow::Done {
                    return Ok(Flow::Done);
                }
            }
        }
        Ok(Flow::More)
    }

    fn predicate_holds(&self, predicate: &Core, st: &mut ExecState, position: i64) -> Result<bool> {
        let items = self.eval(predicate, st)?;
        // Numeric singleton predicate → positional test.
        if let [Item::Atomic(v)] = items.as_slice() {
            if v.is_numeric() {
                let store = st.store.clone();
                let _ = store;
                return Ok(match v {
                    AtomicValue::Integer(k) => *k == position,
                    other => other
                        .to_double()
                        .map(|d| d == position as f64)
                        .unwrap_or(false),
                });
            }
        }
        effective_boolean_value(&items)
    }

    fn resolve_ctor_name(
        &self,
        name: &CoreName,
        st: &mut ExecState,
        _element: bool,
    ) -> Result<QName> {
        match name {
            CoreName::Const(q) => Ok(q.clone()),
            CoreName::Computed(e) => {
                let store = st.store.clone();
                let items = self.eval(e, st)?;
                let Some(v) = atomize_one(&items, &store, "constructor name")? else {
                    return Err(Error::type_error("constructor name is the empty sequence"));
                };
                match v {
                    AtomicValue::QName(q) => Ok(q),
                    AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => {
                        let s = s.trim();
                        if s.is_empty() || s.contains(':') {
                            // Prefixed computed names would need in-scope
                            // namespace resolution; reject cleanly.
                            return Err(Error::new(
                                ErrorCode::InvalidQName,
                                format!("invalid computed constructor name {s:?}"),
                            ));
                        }
                        Ok(QName::local(s))
                    }
                    other => Err(Error::type_error(format!(
                        "constructor name must be a QName or string, got {}",
                        other.type_of().name()
                    ))),
                }
            }
        }
    }

    fn call_user(
        &self,
        fid: FuncId,
        args: &[Core],
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        let f = self
            .module
            .functions
            .get(fid.0 as usize)
            .ok_or_else(|| Error::internal("dangling function id"))?;
        self.counters
            .function_calls
            .set(self.counters.function_calls.get() + 1);
        // Evaluate arguments, checking declared types.
        let store = st.store.clone();
        let mut values = Vec::with_capacity(args.len());
        for (a, (_, pty)) in args.iter().zip(&f.params) {
            let v = self.eval(a, st)?;
            if let Some(ty) = pty {
                if !sequence_matches(&v, ty, &store) {
                    return Err(Error::type_error(format!(
                        "argument to {} does not match declared type {ty}",
                        f.name
                    )));
                }
            }
            values.push(Arc::new(v));
        }
        // Memoization: atomic-only argument lists keyed by string form.
        let memo_key = if self.options.memoize_functions {
            let all_atomic = values.iter().all(|v| v.iter().all(|i| !i.is_node()));
            if all_atomic {
                let key = values
                    .iter()
                    .map(|v| {
                        v.iter()
                            .map(|i| match i {
                                Item::Atomic(a) => format!("{}:{}", a.type_of().name(), a),
                                Item::Node(_) => unreachable!("checked atomic"),
                            })
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect::<Vec<_>>()
                    .join(";");
                Some((fid.0, key))
            } else {
                None
            }
        } else {
            None
        };
        if let Some(k) = &memo_key {
            if let Some(cached) = self.memo.borrow().get(k) {
                self.counters
                    .memo_hits
                    .set(self.counters.memo_hits.get() + 1);
                for item in cached.iter() {
                    if sink.accept(self, st, item.clone())? == Flow::Done {
                        return Ok(Flow::Done);
                    }
                }
                return Ok(Flow::More);
            }
        }
        let depth = self.depth.get();
        if depth >= self.options.max_call_depth {
            return Err(Error::new(
                ErrorCode::Limit,
                format!(
                    "function call depth exceeds {}",
                    self.options.max_call_depth
                ),
            ));
        }
        self.depth.set(depth + 1);
        let mut saved = Vec::with_capacity(values.len());
        for ((pvar, _), v) in f.params.iter().zip(values) {
            saved.push((*pvar, st.frame.bind(*pvar, v)));
        }
        // Function bodies see no caller focus: `.`/position()/last()
        // inside a function body are errors, per the spec (and this
        // keeps the filter's uses-last analysis sound across calls).
        let saved_focus = std::mem::take(&mut st.focus);
        let result = self.eval(&f.body, st);
        st.focus = saved_focus;
        for (pvar, s) in saved.into_iter().rev() {
            st.frame.restore(pvar, s);
        }
        self.depth.set(depth);
        let result = result?;
        if let Some(ty) = &f.return_type {
            if !sequence_matches(&result, ty, &store) {
                return Err(Error::type_error(format!(
                    "result of {} does not match declared type {ty}",
                    f.name
                )));
            }
        }
        if let Some(k) = memo_key {
            self.memo.borrow_mut().insert(k, Arc::new(result.clone()));
        }
        for item in result {
            if sink.accept(self, st, item)? == Flow::Done {
                return Ok(Flow::Done);
            }
        }
        Ok(Flow::More)
    }

    /// `fn:doc`: parse-and-cache through the store.
    pub fn resolve_doc(&self, uri: &str, st: &mut ExecState) -> Result<NodeRef> {
        if let Some(n) = self.doc_cache.borrow().get(uri) {
            return Ok(*n);
        }
        // Already loaded in the store (or reloadable via its resolver)?
        // A plain miss falls through to the context documents, but a
        // failed reload — a quarantined segment (`XQRL0006`), an I/O
        // fault — is a real answer and must surface, not degrade into
        // "document not found".
        match st.store.document_by_uri(uri) {
            Ok((id, _)) => {
                let n = NodeRef::new(id, NodeId(0));
                self.doc_cache.borrow_mut().insert(uri.to_string(), n);
                return Ok(n);
            }
            Err(e) if e.code != ErrorCode::DocumentNotFound => return Err(e),
            Err(_) => {}
        }
        let xml = self.dyn_ctx.documents.get(uri).ok_or_else(|| {
            Error::new(
                ErrorCode::DocumentNotFound,
                format!("no document at {uri:?}"),
            )
        })?;
        let id = st.store.load_xml_guarded(xml, Some(uri), &st.guard)?;
        // Context documents are per-execution inputs: ledger them like
        // constructed docs so they don't outlive the result in a
        // long-lived shared store.
        st.constructed_docs.push(id);
        let n = NodeRef::new(id, NodeId(0));
        self.doc_cache.borrow_mut().insert(uri.to_string(), n);
        Ok(n)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_ordered_flwor(
        &self,
        clauses: &[CoreClause],
        where_clause: Option<&Core>,
        order: &[xqr_compiler::CoreOrderSpec],
        _stable: bool,
        body: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        // Generate the binding tuples. Decorrelated GroupLet clauses
        // build their hash tables once, cached here per clause index.
        type Tuple = Vec<(VarId, Arc<Sequence>)>;
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut group_cache: HashMap<usize, (Sequence, HashMap<JoinKey, Vec<usize>>)> =
            HashMap::new();
        self.gen_tuples(
            clauses,
            0,
            where_clause,
            st,
            &mut Vec::new(),
            &mut tuples,
            &mut group_cache,
        )?;

        // Evaluate sort keys per tuple.
        let store = st.store.clone();
        let tz = self.dyn_ctx.implicit_timezone;
        let mut keyed: Vec<(Vec<Option<AtomicValue>>, Tuple)> = Vec::with_capacity(tuples.len());
        for tuple in tuples {
            let saved: Vec<_> = tuple
                .iter()
                .map(|(v, seq)| (*v, st.frame.bind(*v, seq.clone())))
                .collect();
            let mut keys = Vec::with_capacity(order.len());
            for spec in order {
                let items = self.eval(&spec.key, st)?;
                let k = atomize_one(&items, &store, "order by key")?;
                // Untyped keys order as strings.
                let k = match k {
                    Some(AtomicValue::UntypedAtomic(s)) => Some(AtomicValue::String(s)),
                    other => other,
                };
                keys.push(k);
            }
            for (v, s) in saved.into_iter().rev() {
                st.frame.restore(v, s);
            }
            keyed.push((keys, tuple));
        }
        // Stable sort with the spec's empty handling; incomparable keys
        // raise a type error (pre-checked pairwise during compare).
        let mut sort_error: Option<Error> = None;
        keyed.sort_by(|(ka, _), (kb, _)| {
            use std::cmp::Ordering;
            for (spec, (a, b)) in order.iter().zip(ka.iter().zip(kb.iter())) {
                let ord = match (a, b) {
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => {
                        if spec.empty_least {
                            Ordering::Less
                        } else {
                            Ordering::Greater
                        }
                    }
                    (Some(_), None) => {
                        if spec.empty_least {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        }
                    }
                    (Some(x), Some(y)) => match x.value_compare(y, tz) {
                        Ok(Some(o)) => o,
                        Ok(None) => Ordering::Equal, // NaN keys: stable
                        Err(e) => {
                            if sort_error.is_none() {
                                sort_error = Some(e);
                            }
                            Ordering::Equal
                        }
                    },
                };
                let ord = if spec.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        if let Some(e) = sort_error {
            return Err(e);
        }
        // Emit bodies in sorted tuple order.
        for (_, tuple) in keyed {
            let saved: Vec<_> = tuple
                .iter()
                .map(|(v, seq)| (*v, st.frame.bind(*v, seq.clone())))
                .collect();
            let r = self.push(body, st, sink);
            for (v, s) in saved.into_iter().rev() {
                st.frame.restore(v, s);
            }
            if r? == Flow::Done {
                return Ok(Flow::Done);
            }
        }
        Ok(Flow::More)
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_tuples(
        &self,
        clauses: &[CoreClause],
        idx: usize,
        where_clause: Option<&Core>,
        st: &mut ExecState,
        current: &mut Vec<(VarId, Arc<Sequence>)>,
        out: &mut Vec<Vec<(VarId, Arc<Sequence>)>>,
        group_cache: &mut HashMap<usize, (Sequence, HashMap<JoinKey, Vec<usize>>)>,
    ) -> Result<()> {
        if idx == clauses.len() {
            let keep = match where_clause {
                Some(w) => self.eval_ebv(w, st)?,
                None => true,
            };
            if keep {
                out.push(current.clone());
            }
            return Ok(());
        }
        match &clauses[idx] {
            CoreClause::For {
                var,
                position,
                source,
            } => {
                let items = self.eval(source, st)?;
                for (i, item) in items.into_iter().enumerate() {
                    let one = Arc::new(vec![item]);
                    let saved = st.frame.bind(*var, one.clone());
                    current.push((*var, one));
                    let mut pos_saved = None;
                    if let Some(p) = position {
                        let pv = Arc::new(vec![Item::integer(i as i64 + 1)]);
                        pos_saved = Some((*p, st.frame.bind(*p, pv.clone())));
                        current.push((*p, pv));
                    }
                    let r = self.gen_tuples(
                        clauses,
                        idx + 1,
                        where_clause,
                        st,
                        current,
                        out,
                        group_cache,
                    );
                    if let Some((p, s)) = pos_saved {
                        st.frame.restore(p, s);
                        current.pop();
                    }
                    st.frame.restore(*var, saved);
                    current.pop();
                    r?;
                }
                Ok(())
            }
            CoreClause::Let { var, value } => {
                let v = Arc::new(self.eval(value, st)?);
                let saved = st.frame.bind(*var, v.clone());
                current.push((*var, v));
                let r = self.gen_tuples(
                    clauses,
                    idx + 1,
                    where_clause,
                    st,
                    current,
                    out,
                    group_cache,
                );
                st.frame.restore(*var, saved);
                current.pop();
                r
            }
            CoreClause::GroupLet {
                var,
                inner_var,
                inner,
                inner_key,
                outer_key,
                match_body,
            } => {
                // Build (once) the inner items + hash table.
                if let std::collections::hash_map::Entry::Vacant(e) = group_cache.entry(idx) {
                    let store = st.store.clone();
                    let inner_items = self.eval(inner, st)?;
                    let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
                    for (i, item) in inner_items.iter().enumerate() {
                        let one = Arc::new(vec![item.clone()]);
                        let saved = st.frame.bind(*inner_var, one);
                        let keys = self.eval(inner_key, st);
                        st.frame.restore(*inner_var, saved);
                        for v in atomize(&keys?, &store)? {
                            for k in join_keys(&v) {
                                table.entry(k).or_default().push(i);
                            }
                        }
                    }
                    self.counters
                        .join_builds
                        .set(self.counters.join_builds.get() + 1);
                    e.insert((inner_items, table));
                }
                // Probe with the current tuple's outer key.
                let store = st.store.clone();
                let okeys = self.eval(outer_key, st)?;
                let mut matched: Vec<usize> = Vec::new();
                {
                    let (_, table) = group_cache.get(&idx).expect("just built");
                    for v in atomize(&okeys, &store)? {
                        for k in join_keys(&v) {
                            if let Some(ids) = table.get(&k) {
                                matched.extend(ids.iter().copied());
                            }
                        }
                    }
                }
                matched.sort_unstable();
                matched.dedup();
                let mut grouped = Sequence::new();
                for i in matched {
                    let item = group_cache.get(&idx).expect("built").0[i].clone();
                    let one = Arc::new(vec![item]);
                    let saved = st.frame.bind(*inner_var, one);
                    let r = self.eval(match_body, st);
                    st.frame.restore(*inner_var, saved);
                    grouped.extend(r?);
                }
                let v = Arc::new(grouped);
                let saved = st.frame.bind(*var, v.clone());
                current.push((*var, v));
                let r = self.gen_tuples(
                    clauses,
                    idx + 1,
                    where_clause,
                    st,
                    current,
                    out,
                    group_cache,
                );
                st.frame.restore(*var, saved);
                current.pop();
                r
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_hash_join(
        &self,
        outer_var: VarId,
        outer: &Core,
        inner_var: VarId,
        inner: &Core,
        outer_key: &Core,
        inner_key: &Core,
        group: Option<&xqr_compiler::GroupSpec>,
        body: &Core,
        st: &mut ExecState,
        sink: &mut dyn Sink,
    ) -> Result<Flow> {
        self.counters
            .join_builds
            .set(self.counters.join_builds.get() + 1);
        let store = st.store.clone();
        // Build phase over the inner (independent) side.
        let inner_items = self.eval(inner, st)?;
        let mut table: HashMap<JoinKey, Vec<usize>> = HashMap::new();
        for (i, item) in inner_items.iter().enumerate() {
            let one = Arc::new(vec![item.clone()]);
            let saved = st.frame.bind(inner_var, one);
            let keys = self.eval(inner_key, st);
            st.frame.restore(inner_var, saved);
            for v in atomize(&keys?, &store)? {
                for k in join_keys(&v) {
                    table.entry(k).or_default().push(i);
                }
            }
        }
        // Probe phase.
        let outer_items = self.eval(outer, st)?;
        for oitem in outer_items {
            let one = Arc::new(vec![oitem.clone()]);
            let saved = st.frame.bind(outer_var, one);
            let keys = self.eval(outer_key, st);
            let keys = match keys {
                Ok(k) => k,
                Err(e) => {
                    st.frame.restore(outer_var, saved);
                    return Err(e);
                }
            };
            let mut matched: Vec<usize> = Vec::new();
            match atomize(&keys, &store) {
                Ok(vals) => {
                    for v in vals {
                        for k in join_keys(&v) {
                            if let Some(ids) = table.get(&k) {
                                matched.extend(ids.iter().copied());
                            }
                        }
                    }
                }
                Err(e) => {
                    st.frame.restore(outer_var, saved);
                    return Err(e);
                }
            }
            matched.sort_unstable();
            matched.dedup();
            let mut flow = Flow::More;
            match group {
                None => {
                    for i in matched {
                        let ival = Arc::new(vec![inner_items[i].clone()]);
                        let isaved = st.frame.bind(inner_var, ival);
                        let r = self.push(body, st, sink);
                        st.frame.restore(inner_var, isaved);
                        match r {
                            Ok(f) => {
                                if f == Flow::Done {
                                    flow = Flow::Done;
                                    break;
                                }
                            }
                            Err(e) => {
                                st.frame.restore(outer_var, saved);
                                return Err(e);
                            }
                        }
                    }
                }
                Some(g) => {
                    // Group mode: map matches through the match body,
                    // bind the concatenation, evaluate the let body once.
                    let mut grouped = Sequence::new();
                    for i in matched {
                        let ival = Arc::new(vec![inner_items[i].clone()]);
                        let isaved = st.frame.bind(inner_var, ival);
                        let r = self.eval(&g.match_body, st);
                        st.frame.restore(inner_var, isaved);
                        match r {
                            Ok(items) => grouped.extend(items),
                            Err(e) => {
                                st.frame.restore(outer_var, saved);
                                return Err(e);
                            }
                        }
                    }
                    let gsaved = st.frame.bind(g.let_var, Arc::new(grouped));
                    let r = self.push(body, st, sink);
                    st.frame.restore(g.let_var, gsaved);
                    match r {
                        Ok(f) => {
                            if f == Flow::Done {
                                flow = Flow::Done;
                            }
                        }
                        Err(e) => {
                            st.frame.restore(outer_var, saved);
                            return Err(e);
                        }
                    }
                }
            }
            st.frame.restore(outer_var, saved);
            if flow == Flow::Done {
                return Ok(Flow::Done);
            }
        }
        Ok(Flow::More)
    }
}

// ---- operator sinks -------------------------------------------------------

struct ForSink<'a> {
    var: VarId,
    position: Option<VarId>,
    body: &'a Core,
    downstream: &'a mut dyn Sink,
    index: i64,
}

impl Sink for ForSink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        self.index += 1;
        let saved = st.frame.bind(self.var, Arc::new(vec![item]));
        let mut pos_saved = None;
        if let Some(p) = self.position {
            pos_saved = Some(st.frame.bind(p, Arc::new(vec![Item::integer(self.index)])));
        }
        let r = ev.push(self.body, st, self.downstream);
        if let Some(p) = self.position {
            st.frame.restore(p, pos_saved.expect("saved with position"));
        }
        st.frame.restore(self.var, saved);
        r
    }
}

struct QuantSink<'a> {
    var: VarId,
    every: bool,
    satisfies: &'a Core,
    verdict: bool,
}

impl Sink for QuantSink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        let saved = st.frame.bind(self.var, Arc::new(vec![item]));
        let holds = ev.eval_ebv(self.satisfies, st);
        st.frame.restore(self.var, saved);
        let holds = holds?;
        if self.every {
            if !holds {
                self.verdict = false;
                return Ok(Flow::Done); // counterexample: stop
            }
        } else if holds {
            self.verdict = true;
            return Ok(Flow::Done); // witness: stop (lazy, per the talk)
        }
        Ok(Flow::More)
    }
}

struct PathSink<'a> {
    step: &'a Core,
    downstream: &'a mut dyn Sink,
    saw_node: bool,
    saw_atomic: bool,
}

impl Sink for PathSink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        if item.as_node().is_none() {
            return Err(Error::new(
                ErrorCode::PathOnAtomic,
                "path step applied to an atomic value",
            ));
        }
        st.focus.push(Focus {
            item,
            position: 0,
            size: None,
        });
        // Verify result homogeneity through a checking shim.
        let mut shim = HomogeneitySink {
            downstream: self.downstream,
            saw_node: &mut self.saw_node,
            saw_atomic: &mut self.saw_atomic,
        };
        let r = ev.push(self.step, st, &mut shim);
        st.focus.pop();
        r
    }
}

struct HomogeneitySink<'a> {
    downstream: &'a mut dyn Sink,
    saw_node: &'a mut bool,
    saw_atomic: &'a mut bool,
}

impl Sink for HomogeneitySink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        if item.is_node() {
            *self.saw_node = true;
        } else {
            *self.saw_atomic = true;
        }
        if *self.saw_node && *self.saw_atomic {
            return Err(Error::new(
                ErrorCode::MixedPathResult,
                "path result mixes nodes and atomic values",
            ));
        }
        self.downstream.accept(ev, st, item)
    }
}

struct FilterSink<'a> {
    predicate: &'a Core,
    downstream: &'a mut dyn Sink,
    position: i64,
}

impl Sink for FilterSink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        self.position += 1;
        st.focus.push(Focus {
            item: item.clone(),
            position: self.position,
            size: None,
        });
        let keep = ev.predicate_holds(self.predicate, st, self.position);
        st.focus.pop();
        if keep? {
            self.downstream.accept(ev, st, item)
        } else {
            Ok(Flow::More)
        }
    }
}

struct NthSink<'a> {
    wanted: i64,
    seen: i64,
    downstream: &'a mut dyn Sink,
}

impl Sink for NthSink<'_> {
    fn accept(&mut self, ev: &Evaluator<'_>, st: &mut ExecState, item: Item) -> Result<Flow> {
        self.seen += 1;
        if self.seen == self.wanted {
            // Deliver and stop the upstream regardless of downstream.
            self.downstream.accept(ev, st, item)?;
            return Ok(Flow::Done);
        }
        Ok(Flow::More)
    }
}

// ---- node tests & sequence types ----------------------------------------------

fn convert_axis(a: AxisName) -> Axis {
    match a {
        AxisName::Child => Axis::Child,
        AxisName::Descendant => Axis::Descendant,
        AxisName::DescendantOrSelf => Axis::DescendantOrSelf,
        AxisName::Attribute => Axis::Attribute,
        AxisName::SelfAxis => Axis::SelfAxis,
        AxisName::Parent => Axis::Parent,
        AxisName::Ancestor => Axis::Ancestor,
        AxisName::AncestorOrSelf => Axis::AncestorOrSelf,
        AxisName::FollowingSibling => Axis::FollowingSibling,
        AxisName::PrecedingSibling => Axis::PrecedingSibling,
        AxisName::Following => Axis::Following,
        AxisName::Preceding => Axis::Preceding,
        AxisName::Namespace => Axis::Namespace,
    }
}

/// Apply a node test, honouring the axis's principal node kind for name
/// tests.
pub fn node_test_matches(
    doc: &xqr_store::Document,
    n: NodeId,
    axis: AxisName,
    test: &NodeTest,
) -> bool {
    let kind = doc.kind(n);
    let principal = match axis {
        AxisName::Attribute => NodeKind::Attribute,
        AxisName::Namespace => NodeKind::Namespace,
        _ => NodeKind::Element,
    };
    match test {
        NodeTest::AnyKind => true,
        NodeTest::Text => kind == NodeKind::Text,
        NodeTest::Comment => kind == NodeKind::Comment,
        NodeTest::Document => kind == NodeKind::Document,
        NodeTest::Pi(target) => {
            kind == NodeKind::ProcessingInstruction
                && target
                    .as_ref()
                    .is_none_or(|t| doc.name(n).map(|q| q.local_name() == t).unwrap_or(false))
        }
        NodeTest::AnyName => kind == principal,
        NodeTest::Name(q) => kind == principal && doc.name(n).as_ref() == Some(q),
        NodeTest::NamespaceWildcard(ns) => {
            kind == principal
                && doc
                    .name(n)
                    .map(|q| q.namespace() == Some(ns.as_str()))
                    .unwrap_or(false)
        }
        NodeTest::LocalWildcard(local) => {
            kind == principal
                && doc
                    .name(n)
                    .map(|q| q.local_name() == local)
                    .unwrap_or(false)
        }
        NodeTest::Element(name) => {
            kind == NodeKind::Element
                && name
                    .as_ref()
                    .is_none_or(|q| doc.name(n).as_ref() == Some(q))
        }
        NodeTest::Attribute(name) => {
            kind == NodeKind::Attribute
                && name
                    .as_ref()
                    .is_none_or(|q| doc.name(n).as_ref() == Some(q))
        }
    }
}

/// Does one item match an item type?
pub fn item_matches(item: &Item, ty: &ItemType, store: &xqr_store::Store) -> bool {
    match ty {
        ItemType::AnyItem => true,
        ItemType::AnyNode => item.is_node(),
        ItemType::Atomic(at) => match item {
            Item::Atomic(v) => v.type_of().is_subtype_of(*at),
            Item::Node(_) => false,
        },
        ItemType::Kind(kind, name_test) => match item {
            Item::Node(n) => {
                let doc = store.doc_of(*n);
                doc.kind(n.node) == *kind
                    && match name_test {
                        NameTest::Any => true,
                        NameTest::Name(q) => doc.name(n.node).as_ref() == Some(q),
                    }
            }
            Item::Atomic(_) => false,
        },
    }
}

/// Does a whole sequence match a sequence type?
pub fn sequence_matches(items: &[Item], ty: &SequenceType, store: &xqr_store::Store) -> bool {
    match ty {
        SequenceType::Empty => items.is_empty(),
        SequenceType::Of(item_ty, occ) => {
            let count_ok = match occ {
                xqr_xdm::Occurrence::One => items.len() == 1,
                xqr_xdm::Occurrence::Optional => items.len() <= 1,
                xqr_xdm::Occurrence::ZeroOrMore => true,
                xqr_xdm::Occurrence::OneOrMore => !items.is_empty(),
            };
            count_ok && items.iter().all(|i| item_matches(i, item_ty, store))
        }
    }
}

fn uses_last(e: &Core) -> bool {
    match e {
        Core::Builtin("last", _) => true,
        // Nested filters rebind the focus; their last() is theirs.
        Core::Filter { input, .. } => uses_last(input),
        _ => {
            let mut any = false;
            e.for_each_child(&mut |c| any |= uses_last(c));
            any
        }
    }
}
