//! A small backtracking regex engine for `fn:tokenize`, `fn:replace` and
//! `fn:matches`-style needs.
//!
//! Supported syntax (the subset DESIGN.md documents): literals, `.`,
//! escapes (`\s \S \d \D \w \W \\ \.` …), character classes `[a-z0-9_]`
//! / `[^…]` with ranges, greedy quantifiers `* + ?` and `{n,m}`,
//! alternation `|`, and groups `(...)`. No capture references in
//! replacements. Enough for the workloads the talk's use cases exercise;
//! a full XML Schema regex is out of scope.

use xqr_xdm::{Error, ErrorCode, Result};

#[derive(Debug, Clone)]
enum Node {
    /// A sequence of alternatives (at least one).
    Alt(Vec<Vec<Node>>),
    Literal(char),
    AnyChar,
    Class {
        negated: bool,
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
        perl: Vec<char>,
    },
    PerlClass(char),
    /// Quantified sub-node: (min, max).
    Repeat(Box<Node>, usize, Option<usize>),
    Group(Box<Node>),
}

#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(
            ErrorCode::InvalidPattern,
            format!("{msg} in pattern {:?}", self.src),
        )
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Node> {
        let mut alts = vec![Vec::new()];
        loop {
            match self.peek() {
                None | Some(')') => break,
                Some('|') => {
                    self.pos += 1;
                    alts.push(Vec::new());
                }
                _ => {
                    let atom = self.parse_atom()?;
                    let atom = self.parse_quantifier(atom)?;
                    alts.last_mut().expect("non-empty alts").push(atom);
                }
            }
        }
        Ok(Node::Alt(alts))
    }

    fn parse_atom(&mut self) -> Result<Node> {
        match self.bump().ok_or_else(|| self.err("unexpected end"))? {
            '.' => Ok(Node::AnyChar),
            '(' => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unterminated group"));
                }
                Ok(Node::Group(Box::new(inner)))
            }
            '[' => self.parse_class(),
            '\\' => {
                let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
                match c {
                    's' | 'S' | 'd' | 'D' | 'w' | 'W' => Ok(Node::PerlClass(c)),
                    'n' => Ok(Node::Literal('\n')),
                    't' => Ok(Node::Literal('\t')),
                    'r' => Ok(Node::Literal('\r')),
                    _ => Ok(Node::Literal(c)),
                }
            }
            c @ ('*' | '+' | '?') => Err(self.err(&format!("dangling quantifier {c}"))),
            c => Ok(Node::Literal(c)),
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node> {
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 0, None))
            }
            Some('+') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 1, None))
            }
            Some('?') => {
                self.pos += 1;
                Ok(Node::Repeat(Box::new(atom), 0, Some(1)))
            }
            Some('{') => {
                self.pos += 1;
                let mut min = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    min.push(self.bump().expect("digit"));
                }
                let min: usize = min.parse().map_err(|_| self.err("bad repetition count"))?;
                let max = match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                        if self.peek() == Some('}') {
                            None
                        } else {
                            let mut m = String::new();
                            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                                m.push(self.bump().expect("digit"));
                            }
                            Some(m.parse().map_err(|_| self.err("bad repetition count"))?)
                        }
                    }
                    _ => Some(min),
                };
                if self.bump() != Some('}') {
                    return Err(self.err("unterminated repetition"));
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_class(&mut self) -> Result<Node> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut singles = Vec::new();
        let mut ranges = Vec::new();
        let mut perl = Vec::new();
        loop {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unterminated character class"))?;
            match c {
                ']' => break,
                '\\' => {
                    let e = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
                    match e {
                        's' | 'S' | 'd' | 'D' | 'w' | 'W' => perl.push(e),
                        'n' => singles.push('\n'),
                        't' => singles.push('\t'),
                        other => singles.push(other),
                    }
                }
                c => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.pos += 1; // '-'
                        let hi = self.bump().ok_or_else(|| self.err("bad range"))?;
                        if hi < c {
                            return Err(self.err("inverted character range"));
                        }
                        ranges.push((c, hi));
                    } else {
                        singles.push(c);
                    }
                }
            }
        }
        Ok(Node::Class {
            negated,
            singles,
            ranges,
            perl,
        })
    }
}

fn perl_matches(class: char, c: char) -> bool {
    match class {
        's' => c.is_whitespace(),
        'S' => !c.is_whitespace(),
        'd' => c.is_ascii_digit(),
        'D' => !c.is_ascii_digit(),
        'w' => c.is_alphanumeric() || c == '_',
        'W' => !(c.is_alphanumeric() || c == '_'),
        _ => false,
    }
}

impl Regex {
    pub fn new(pattern: &str) -> Result<Regex> {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            src: pattern,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(p.err("unexpected ')'"));
        }
        Ok(Regex { root })
    }

    /// Match at a position; returns all possible end positions via the
    /// continuation (backtracking). We only need the leftmost-longest-ish
    /// first match, so `cont` returns true to accept.
    fn match_node(
        node: &Node,
        text: &[char],
        at: usize,
        cont: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match node {
            Node::Alt(alts) => {
                for alt in alts {
                    if Self::match_seq(alt, 0, text, at, cont) {
                        return true;
                    }
                }
                false
            }
            Node::Group(inner) => Self::match_node(inner, text, at, cont),
            Node::Literal(c) => {
                if text.get(at) == Some(c) {
                    cont(at + 1)
                } else {
                    false
                }
            }
            Node::AnyChar => {
                if at < text.len() {
                    cont(at + 1)
                } else {
                    false
                }
            }
            Node::PerlClass(p) => {
                if at < text.len() && perl_matches(*p, text[at]) {
                    cont(at + 1)
                } else {
                    false
                }
            }
            Node::Class {
                negated,
                singles,
                ranges,
                perl,
            } => {
                if at >= text.len() {
                    return false;
                }
                let c = text[at];
                let inside = singles.contains(&c)
                    || ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi)
                    || perl.iter().any(|&p| perl_matches(p, c));
                if inside != *negated {
                    cont(at + 1)
                } else {
                    false
                }
            }
            Node::Repeat(inner, min, max) => {
                Self::match_repeat(inner, *min, *max, text, at, 0, cont)
            }
        }
    }

    fn match_repeat(
        inner: &Node,
        min: usize,
        max: Option<usize>,
        text: &[char],
        at: usize,
        count: usize,
        cont: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        // Greedy: try one more repetition first.
        if max.is_none_or(|m| count < m) {
            let matched = Self::match_node(inner, text, at, &mut |next| {
                if next == at {
                    // zero-width repetition guard
                    return false;
                }
                Self::match_repeat(inner, min, max, text, next, count + 1, cont)
            });
            if matched {
                return true;
            }
        }
        if count >= min {
            return cont(at);
        }
        false
    }

    fn match_seq(
        seq: &[Node],
        idx: usize,
        text: &[char],
        at: usize,
        cont: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match seq.get(idx) {
            None => cont(at),
            Some(node) => Self::match_node(node, text, at, &mut |next| {
                Self::match_seq(seq, idx + 1, text, next, cont)
            }),
        }
    }

    /// Find the first match starting at or after `from`; returns
    /// (start, end) char offsets. Greedy-longest at the first matching
    /// start position.
    pub fn find(&self, text: &[char], from: usize) -> Option<(usize, usize)> {
        for start in from..=text.len() {
            let mut best: Option<usize> = None;
            Self::match_node(&self.root, text, start, &mut |end| {
                match best {
                    Some(b) if b >= end => {}
                    _ => best = Some(end),
                }
                false // keep exploring for a longer match
            });
            if let Some(end) = best {
                return Some((start, end));
            }
        }
        None
    }

    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        self.find(&chars, 0).is_some()
    }

    /// `fn:tokenize` semantics: split around non-overlapping matches;
    /// zero-length matches are an error per spec, we skip-step instead.
    pub fn split(&self, text: &str) -> Vec<String> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        let mut last = 0usize;
        let mut from = 0usize;
        while let Some((s, e)) = self.find(&chars, from) {
            if e == s {
                from = s + 1;
                continue;
            }
            out.push(chars[last..s].iter().collect());
            last = e;
            from = e;
        }
        out.push(chars[last..].iter().collect());
        out
    }

    /// `fn:replace` with a literal replacement string.
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::new();
        let mut last = 0usize;
        let mut from = 0usize;
        while let Some((s, e)) = self.find(&chars, from) {
            if e == s {
                from = s + 1;
                continue;
            }
            out.extend(chars[last..s].iter());
            out.push_str(replacement);
            last = e;
            from = e;
        }
        out.extend(chars[last..].iter());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matching() {
        let r = Regex::new("abc").unwrap();
        assert!(r.is_match("xxabcxx"));
        assert!(!r.is_match("ab"));
    }

    #[test]
    fn classes_and_escapes() {
        let r = Regex::new(r"\d+").unwrap();
        assert!(r.is_match("a42b"));
        assert!(!r.is_match("abc"));
        let r = Regex::new(r"[a-c]+[0-9]").unwrap();
        assert!(r.is_match("xxcab7"));
        assert!(!r.is_match("d7"));
        let r = Regex::new(r"[^0-9]").unwrap();
        assert!(r.is_match("a"));
        assert!(!r.is_match("7"));
    }

    #[test]
    fn quantifiers() {
        let r = Regex::new("ab*c").unwrap();
        assert!(r.is_match("ac"));
        assert!(r.is_match("abbbc"));
        let r = Regex::new("ab+c").unwrap();
        assert!(!r.is_match("ac"));
        assert!(r.is_match("abc"));
        let r = Regex::new("ab?c").unwrap();
        assert!(r.is_match("ac"));
        assert!(r.is_match("abc"));
        assert!(!r.is_match("abbc"));
        let r = Regex::new("a{2,3}").unwrap();
        assert!(!r.is_match("a"));
        assert!(r.is_match("aa"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = Regex::new("cat|dog").unwrap();
        assert!(r.is_match("hotdog"));
        assert!(r.is_match("catalog"));
        assert!(!r.is_match("bird"));
        let r = Regex::new("a(bc)+d").unwrap();
        assert!(r.is_match("abcbcd"));
        assert!(!r.is_match("ad"));
    }

    #[test]
    fn tokenize_like_split() {
        let r = Regex::new(r"\s+").unwrap();
        assert_eq!(r.split("The cat  sat"), vec!["The", "cat", "sat"]);
        let r = Regex::new(",").unwrap();
        assert_eq!(r.split("a,b,,c"), vec!["a", "b", "", "c"]);
        assert_eq!(r.split(""), vec![""]);
    }

    #[test]
    fn replace_all() {
        let r = Regex::new("o").unwrap();
        assert_eq!(r.replace_all("foo bor", "0"), "f00 b0r");
        let r = Regex::new(r"\d+").unwrap();
        assert_eq!(r.replace_all("a1b22c333", "#"), "a#b#c#");
    }

    #[test]
    fn greedy_matching() {
        let r = Regex::new("a.*b").unwrap();
        let chars: Vec<char> = "aXbYb".chars().collect();
        assert_eq!(r.find(&chars, 0), Some((0, 5)));
    }

    #[test]
    fn invalid_patterns() {
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn unicode_text() {
        let r = Regex::new("é+").unwrap();
        assert!(r.is_match("caféé"));
        let r = Regex::new(r"\w+").unwrap();
        assert_eq!(r.split("日本 語"), vec!["", " ", ""]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn literal_patterns_behave_like_str_contains(
            hay in "[abc]{0,12}",
            needle in "[abc]{1,4}",
        ) {
            let re = Regex::new(&needle).unwrap();
            prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
        }

        #[test]
        fn literal_split_matches_std(
            hay in "[abc,]{0,16}",
        ) {
            let re = Regex::new(",").unwrap();
            let got = re.split(&hay);
            let want: Vec<String> = hay.split(',').map(str::to_string).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn replace_then_match_is_gone(hay in "[abx]{0,16}") {
            let re = Regex::new("x+").unwrap();
            let replaced = re.replace_all(&hay, "y");
            prop_assert!(!replaced.contains('x'));
            // and length change is bounded
            prop_assert!(replaced.len() <= hay.len() + 1);
        }

        #[test]
        fn alternation_is_union(hay in "[abcd]{0,10}") {
            let ab = Regex::new("ab|cd").unwrap();
            prop_assert_eq!(
                ab.is_match(&hay),
                hay.contains("ab") || hay.contains("cd")
            );
        }

        #[test]
        fn char_class_matches_any_member(hay in "[a-f]{1,10}") {
            let re = Regex::new("[ace]").unwrap();
            prop_assert_eq!(
                re.is_match(&hay),
                hay.chars().any(|c| matches!(c, 'a' | 'c' | 'e'))
            );
        }
    }
}
