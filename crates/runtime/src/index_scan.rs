//! Answering [`Core::IndexScan`] patterns from a document's structural
//! index.
//!
//! The compiler's access-path selection guarantees the pattern is a pure
//! existence path/twig over named element/attribute steps, so the answer
//! is computable exactly from the index's tag/path inverted lists:
//!
//! * **linear** patterns are pure path-dictionary lookups — the matching
//!   path-id set selects a document-ordered sublist, no join at all;
//! * **branching** patterns run the holistic twig join from `xqr-joins`
//!   over per-node lists that are first path-filtered by each node's
//!   root chain (which also enforces the root edge `/a` vs `//a` that
//!   the join itself does not check).
//!
//! `None` means "cannot answer here" — no context node, unknown
//! document, or no index attached — and the caller falls back to the
//! navigational plan.

use crate::env::ExecState;
use xqr_compiler::access::{AccessAnchor, AccessEdge, AccessPattern};
use xqr_index::{index_of, IndexedAccess, PathStep};
use xqr_joins::{twig_stack, EdgeKind, Labeled, TwigPattern};
use xqr_store::NodeRef;
use xqr_xdm::NameId;

fn map_edge(e: AccessEdge) -> EdgeKind {
    match e {
        AccessEdge::Child => EdgeKind::Child,
        AccessEdge::Descendant => EdgeKind::Descendant,
    }
}

/// Try to answer `pattern` from an attached index. `Ok(None)` = fall
/// back to navigation.
pub fn try_index_scan(pattern: &AccessPattern, st: &ExecState) -> Option<Vec<NodeRef>> {
    // Resolve the anchored document.
    let doc_id = match &pattern.anchor {
        AccessAnchor::ContextRoot => st.context_item().ok()?.as_node()?.doc,
        AccessAnchor::Doc(uri) => st.store.document_by_uri(uri).ok()?.0,
    };
    let index = index_of(&st.store, doc_id)?;

    // Resolve pattern names against the shared pool. A name that was
    // never interned occurs in no document, so the answer is exactly
    // empty — still an index hit.
    let names: Option<Vec<NameId>> = pattern
        .nodes
        .iter()
        .map(|n| st.store.names().get(&n.name))
        .collect();
    let Some(names) = names else {
        return Some(Vec::new());
    };

    let nodes = if pattern.is_linear() {
        answer_linear(pattern, &names, &*index)
    } else {
        answer_twig(pattern, &names, &*index)
    };
    Some(nodes.into_iter().map(|n| NodeRef::new(doc_id, n)).collect())
}

/// Root-to-`i` chain of `(edge, name)` steps.
fn chain_to(pattern: &AccessPattern, names: &[NameId], i: usize) -> Vec<PathStep> {
    let mut steps = Vec::new();
    let mut cur = Some(i);
    while let Some(c) = cur {
        steps.push((map_edge(pattern.nodes[c].edge), names[c]));
        cur = pattern.nodes[c].parent;
    }
    steps.reverse();
    steps
}

fn answer_linear(
    pattern: &AccessPattern,
    names: &[NameId],
    index: &dyn IndexedAccess,
) -> Vec<xqr_store::NodeId> {
    let out = &pattern.nodes[pattern.output];
    let labels = if out.attribute {
        let owner_steps = chain_to(pattern, names, pattern.output);
        let (attr_step, owner_steps) = owner_steps.split_last().expect("output step exists");
        index.linear_attributes(owner_steps, attr_step.0, attr_step.1)
    } else {
        index.linear_elements(&chain_to(pattern, names, pattern.output))
    };
    labels.into_iter().map(|l| l.node).collect()
}

fn answer_twig(
    pattern: &AccessPattern,
    names: &[NameId],
    index: &dyn IndexedAccess,
) -> Vec<xqr_store::NodeId> {
    // Mirror the pattern as a TwigPattern (selection guarantees parents
    // precede children, and node 0 is the trunk root).
    let mut twig = TwigPattern::path(
        map_edge(pattern.nodes[0].edge),
        &[(map_edge(pattern.nodes[0].edge), names[0])],
    );
    for (i, n) in pattern.nodes.iter().enumerate().skip(1) {
        let parent = n.parent.expect("non-root pattern nodes have parents");
        let idx = twig.add_child(parent, map_edge(n.edge), names[i]);
        debug_assert_eq!(idx, i);
    }

    // Per-node input lists, path-filtered by each node's root chain.
    // The filter is a necessary condition (any witness's root path must
    // match), shrinks the join input, and enforces the root edge.
    let dict = index.path_dict();
    let lists: Vec<Vec<Labeled>> = pattern
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if n.attribute {
                let owner_steps = chain_to(pattern, names, i);
                let (attr_step, owner_steps) = owner_steps.split_last().expect("node i");
                let keep = match attr_step.0 {
                    EdgeKind::Child => dict.matching(owner_steps),
                    EdgeKind::Descendant => dict.matching_prefix(owner_steps),
                };
                index.attributes_on_paths(names[i], &keep)
            } else {
                let keep = dict.matching(&chain_to(pattern, names, i));
                index.elements_on_paths(names[i], &keep)
            }
        })
        .collect();

    let (tuples, _stats) = twig_stack(&twig, &lists);
    let mut out: Vec<xqr_store::NodeId> =
        tuples.iter().map(|tuple| tuple[pattern.output]).collect();
    out.sort();
    out.dedup();
    out
}
