//! Answering [`Core::IndexScan`] patterns from a document's structural
//! index.
//!
//! The compiler's access-path selection guarantees the pattern is a pure
//! existence path/twig over named element/attribute steps, so the answer
//! is computable exactly from the index's tag/path inverted lists:
//!
//! * **linear** patterns are pure path-dictionary lookups — the matching
//!   path-id set selects a document-ordered sublist, no join at all;
//! * **branching** patterns run the holistic twig join from `xqr-joins`
//!   over per-node lists that are first path-filtered by each node's
//!   root chain (which also enforces the root edge `/a` vs `//a` that
//!   the join itself does not check). Large joins are handed to the
//!   morsel-parallel executor in `xqr-parallel`, whose output is
//!   bit-identical to the serial join.
//!
//! `Ok(None)` means "cannot answer here" — no context node, unknown
//! document, or no index attached — and the caller falls back to the
//! navigational plan. `Err` is a real execution error (cancellation,
//! deadline, an injected fault inside a morsel) and aborts the query;
//! falling back on those would mask the embedder's budget.
//!
//! Batch execution threads a [`ScanCache`] through [`ExecState`]: the
//! path-filtered list for a given (document, name, root chain) is built
//! once and shared by every query in the batch that touches it.

use crate::env::ExecState;
use crate::eval::Counters;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use xqr_compiler::access::{AccessAnchor, AccessEdge, AccessPattern};
use xqr_index::{index_of, IndexedAccess, PathStep};
use xqr_joins::{EdgeKind, Labeled, TwigPattern};
use xqr_parallel::{lock_recover, parallel_twig_stack, ParallelConfig};
use xqr_store::{DocId, NodeRef};
use xqr_xdm::{NameId, Result};

fn map_edge(e: AccessEdge) -> EdgeKind {
    match e {
        AccessEdge::Child => EdgeKind::Child,
        AccessEdge::Descendant => EdgeKind::Descendant,
    }
}

/// One inverted-list scan, as cached across a batch: the document, the
/// step name, whether the step is an attribute, and the full root chain
/// that path-filters the list. Two queries producing the same key get
/// byte-identical lists, so sharing is sound.
type ScanKey = (DocId, NameId, bool, Vec<PathStep>);

/// Shared inverted-list scans for batch execution. One instance lives
/// for the duration of one [`query_batch`](xqr_core) call; queries in
/// the batch probe it before rebuilding a path-filtered list from the
/// index. Thread-safe so batch legs running on the service pool can
/// share one cache.
#[derive(Default)]
pub struct ScanCache {
    map: Mutex<HashMap<ScanKey, Arc<Vec<Labeled>>>>,
}

impl ScanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached scans currently held.
    pub fn len(&self) -> usize {
        lock_recover(&self.map).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a scan, building and inserting it on miss (the builder
    /// receives the key's root chain). Counts a hit into `counters` only
    /// when the list was already present.
    fn get_or_build_keyed(
        &self,
        key: ScanKey,
        counters: &Counters,
        build: impl FnOnce(&[PathStep]) -> Vec<Labeled>,
    ) -> Arc<Vec<Labeled>> {
        if let Some(hit) = lock_recover(&self.map).get(&key).cloned() {
            counters
                .scan_cache_hits
                .set(counters.scan_cache_hits.get() + 1);
            return hit;
        }
        // Build outside the lock: list construction can be expensive and
        // concurrent batch legs must not serialize on it. Two racing
        // builders produce identical lists, so last-insert-wins is fine.
        let built = Arc::new(build(&key.3));
        lock_recover(&self.map).insert(key, built.clone());
        built
    }
}

/// Build (or fetch from the batch cache) the path-filtered inverted
/// list for pattern node `i`.
fn node_list(
    pattern: &AccessPattern,
    names: &[NameId],
    i: usize,
    doc_id: DocId,
    index: &dyn IndexedAccess,
    st: &ExecState,
    counters: &Counters,
) -> Arc<Vec<Labeled>> {
    let n = &pattern.nodes[i];
    let chain = chain_to(pattern, names, i);
    let build = |chain: &[PathStep]| {
        let dict = index.path_dict();
        if n.attribute {
            let (attr_step, owner_steps) = chain.split_last().expect("node i");
            let keep = match attr_step.0 {
                EdgeKind::Child => dict.matching(owner_steps),
                EdgeKind::Descendant => dict.matching_prefix(owner_steps),
            };
            index.attributes_on_paths(names[i], &keep)
        } else {
            index.elements_on_paths(names[i], &dict.matching(chain))
        }
    };
    match &st.scan_cache {
        Some(cache) => {
            let key = (doc_id, names[i], n.attribute, chain);
            cache.get_or_build_keyed(key, counters, build)
        }
        None => Arc::new(build(&chain)),
    }
}

/// Try to answer `pattern` from an attached index. `Ok(None)` = fall
/// back to navigation; `Err` = real execution error, abort the query.
pub fn try_index_scan(
    pattern: &AccessPattern,
    st: &ExecState,
    parallel: &ParallelConfig,
    counters: &Counters,
) -> Result<Option<Vec<NodeRef>>> {
    // Resolve the anchored document.
    let doc_id = match &pattern.anchor {
        AccessAnchor::ContextRoot => match st.context_item().ok().and_then(|i| i.as_node()) {
            Some(node) => node.doc,
            None => return Ok(None),
        },
        AccessAnchor::Doc(uri) => match st.store.document_by_uri(uri) {
            Ok((id, _)) => id,
            Err(_) => return Ok(None),
        },
    };
    let Some(index) = index_of(&st.store, doc_id) else {
        return Ok(None);
    };

    // Resolve pattern names against the shared pool. A name that was
    // never interned occurs in no document, so the answer is exactly
    // empty — still an index hit.
    let names: Option<Vec<NameId>> = pattern
        .nodes
        .iter()
        .map(|n| st.store.names().get(&n.name))
        .collect();
    let Some(names) = names else {
        return Ok(Some(Vec::new()));
    };

    let nodes = if pattern.is_linear() {
        answer_linear(pattern, &names, doc_id, &*index, st, counters)
    } else {
        answer_twig(pattern, &names, doc_id, &*index, st, parallel, counters)?
    };
    Ok(Some(
        nodes.into_iter().map(|n| NodeRef::new(doc_id, n)).collect(),
    ))
}

/// Root-to-`i` chain of `(edge, name)` steps.
fn chain_to(pattern: &AccessPattern, names: &[NameId], i: usize) -> Vec<PathStep> {
    let mut steps = Vec::new();
    let mut cur = Some(i);
    while let Some(c) = cur {
        steps.push((map_edge(pattern.nodes[c].edge), names[c]));
        cur = pattern.nodes[c].parent;
    }
    steps.reverse();
    steps
}

fn answer_linear(
    pattern: &AccessPattern,
    names: &[NameId],
    doc_id: DocId,
    index: &dyn IndexedAccess,
    st: &ExecState,
    counters: &Counters,
) -> Vec<xqr_store::NodeId> {
    let labels = node_list(pattern, names, pattern.output, doc_id, index, st, counters);
    labels.iter().map(|l| l.node).collect()
}

fn answer_twig(
    pattern: &AccessPattern,
    names: &[NameId],
    doc_id: DocId,
    index: &dyn IndexedAccess,
    st: &ExecState,
    parallel: &ParallelConfig,
    counters: &Counters,
) -> Result<Vec<xqr_store::NodeId>> {
    // Mirror the pattern as a TwigPattern (selection guarantees parents
    // precede children, and node 0 is the trunk root).
    let mut twig = TwigPattern::path(
        map_edge(pattern.nodes[0].edge),
        &[(map_edge(pattern.nodes[0].edge), names[0])],
    );
    for (i, n) in pattern.nodes.iter().enumerate().skip(1) {
        let parent = n.parent.expect("non-root pattern nodes have parents");
        let idx = twig.add_child(parent, map_edge(n.edge), names[i]);
        debug_assert_eq!(idx, i);
    }

    // Per-node input lists, path-filtered by each node's root chain.
    // The filter is a necessary condition (any witness's root path must
    // match), shrinks the join input, and enforces the root edge.
    let lists: Vec<Arc<Vec<Labeled>>> = (0..pattern.nodes.len())
        .map(|i| node_list(pattern, names, i, doc_id, index, st, counters))
        .collect();

    // The morsel executor owns the split decision: below the config's
    // threshold (or with parallelism off) it runs the same join serially
    // on this thread, so the output is bit-identical either way.
    let (tuples, run) = parallel_twig_stack(&twig, lists, parallel, &st.guard)?;
    if run.morsels > 1 {
        counters
            .parallel_joins
            .set(counters.parallel_joins.get() + 1);
        counters
            .morsels_run
            .set(counters.morsels_run.get() + run.morsels as u64);
    }
    let mut out: Vec<xqr_store::NodeId> =
        tuples.iter().map(|tuple| tuple[pattern.output]).collect();
    out.sort();
    out.dedup();
    Ok(out)
}
