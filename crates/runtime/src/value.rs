//! Runtime items and sequences.
//!
//! An [`Item`] is a node reference or an atomic value — the data model's
//! "sequence composed of zero or more items; items are nodes or atomic
//! values". Sequences are flat `Vec<Item>` when materialized; the
//! evaluator streams items through sinks and only materializes at the
//! operators that need it (sort, ddo, multiple consumers).

use std::sync::Arc;
use xqr_store::{NodeRef, Store};
use xqr_xdm::{AtomicValue, Error, ErrorCode, NodeKind, QName, Result};

/// One item of the data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Atomic(AtomicValue),
    Node(NodeRef),
}

impl Item {
    pub fn integer(i: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(i))
    }

    pub fn string(s: &str) -> Item {
        Item::Atomic(AtomicValue::string(s))
    }

    pub fn boolean(b: bool) -> Item {
        Item::Atomic(AtomicValue::Boolean(b))
    }

    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    pub fn as_node(&self) -> Option<NodeRef> {
        match self {
            Item::Node(n) => Some(*n),
            Item::Atomic(_) => None,
        }
    }

    /// `fn:string` of one item.
    pub fn string_value(&self, store: &Store) -> String {
        match self {
            Item::Atomic(v) => v.string_value(),
            Item::Node(n) => store.doc_of(*n).string_value(n.node),
        }
    }

    /// The typed value (untyped data model: nodes yield untypedAtomic).
    pub fn typed_value(&self, store: &Store) -> Result<AtomicValue> {
        match self {
            Item::Atomic(v) => Ok(v.clone()),
            Item::Node(n) => {
                let doc = store.doc_of(*n);
                match doc.kind(n.node) {
                    NodeKind::Comment | NodeKind::ProcessingInstruction => {
                        Ok(AtomicValue::string(doc.string_value(n.node).as_str()))
                    }
                    _ => Ok(AtomicValue::untyped(doc.string_value(n.node).as_str())),
                }
            }
        }
    }

    pub fn node_kind(&self, store: &Store) -> Option<NodeKind> {
        self.as_node().map(|n| store.doc_of(n).kind(n.node))
    }

    pub fn node_name(&self, store: &Store) -> Option<QName> {
        self.as_node().and_then(|n| store.doc_of(n).name(n.node))
    }
}

/// A materialized sequence.
pub type Sequence = Vec<Item>;

/// Atomize a sequence (`fn:data`).
pub fn atomize(items: &[Item], store: &Store) -> Result<Vec<AtomicValue>> {
    items.iter().map(|i| i.typed_value(store)).collect()
}

/// Atomize a sequence expected to hold at most one value.
pub fn atomize_one(items: &[Item], store: &Store, what: &str) -> Result<Option<AtomicValue>> {
    match items.len() {
        0 => Ok(None),
        1 => Ok(Some(items[0].typed_value(store)?)),
        n => Err(Error::type_error(format!(
            "{what} requires a singleton, got {n} items"
        ))),
    }
}

/// The effective boolean value of a sequence: empty → false; first item
/// a node → true; singleton atomic → its EBV; otherwise an error.
pub fn effective_boolean_value(items: &[Item]) -> Result<bool> {
    match items {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(v)] => v.effective_boolean_value(),
        _ => Err(Error::new(
            ErrorCode::InvalidArgument,
            "effective boolean value of a multi-item atomic sequence",
        )),
    }
}

/// Serialize a sequence per the XQuery serialization rules used in test
/// oracles: nodes serialize as XML, atomics as their string values,
/// adjacent atomics separated by a space.
pub fn serialize_sequence(items: &[Item], store: &Store) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in items {
        match item {
            Item::Atomic(v) => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&v.string_value());
                prev_atomic = true;
            }
            Item::Node(n) => {
                let doc = store.doc_of(*n);
                out.push_str(&doc.serialize_node(n.node));
                prev_atomic = false;
            }
        }
    }
    out
}

/// Deep equality of two items (fn:deep-equal on singletons).
pub fn deep_equal_item(a: &Item, b: &Item, store: &Store) -> bool {
    match (a, b) {
        (Item::Atomic(x), Item::Atomic(y)) => match x.value_compare(y, 0) {
            Ok(Some(o)) => o.is_eq(),
            _ => false,
        },
        (Item::Node(x), Item::Node(y)) => {
            let dx = store.doc_of(*x);
            let dy = store.doc_of(*y);
            // Structural equality via canonical serialization — adequate
            // for the subset and obviously symmetric/transitive.
            dx.serialize_node(x.node) == dy.serialize_node(y.node)
        }
        _ => false,
    }
}

pub fn arc_store(store: &Arc<Store>) -> Arc<Store> {
    store.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Store>, NodeRef) {
        let store = Store::new();
        let id = store
            .load_xml("<book year=\"1967\"><title>T</title></book>", None)
            .unwrap();
        let doc = store.document(id);
        let book = doc.first_child(doc.root()).unwrap();
        (store, NodeRef::new(id, book))
    }

    #[test]
    fn string_and_typed_values() {
        let (store, book) = setup();
        let item = Item::Node(book);
        assert_eq!(item.string_value(&store), "T");
        let tv = item.typed_value(&store).unwrap();
        assert_eq!(tv, AtomicValue::untyped("T"));
    }

    #[test]
    fn ebv_rules() {
        let (_, book) = setup();
        assert!(!effective_boolean_value(&[]).unwrap());
        assert!(effective_boolean_value(&[Item::Node(book)]).unwrap());
        assert!(effective_boolean_value(&[Item::integer(1)]).unwrap());
        assert!(!effective_boolean_value(&[Item::string("")]).unwrap());
        assert!(effective_boolean_value(&[Item::integer(1), Item::integer(2)]).is_err());
        // multiple items with first node → true
        assert!(effective_boolean_value(&[Item::Node(book), Item::integer(2)]).unwrap());
    }

    #[test]
    fn serialization_spaces_atomics() {
        let (store, book) = setup();
        let s = serialize_sequence(
            &[
                Item::integer(1),
                Item::integer(2),
                Item::Node(book),
                Item::integer(3),
            ],
            &store,
        );
        assert_eq!(s, "1 2<book year=\"1967\"><title>T</title></book>3");
    }

    #[test]
    fn atomize_one_enforces_cardinality() {
        let (store, _) = setup();
        assert_eq!(atomize_one(&[], &store, "op").unwrap(), None);
        assert!(atomize_one(&[Item::integer(1), Item::integer(2)], &store, "op").is_err());
    }
}
