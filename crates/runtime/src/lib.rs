//! # xqr-runtime — the streaming evaluator
//!
//! Push-based, lazily short-circuiting interpreter over the compiled
//! core tree, plus the token-level streaming path matcher, the built-in
//! function library, node construction, the three comparison families,
//! and a small regex engine for the string functions.

pub mod compare;
pub mod construct;
pub mod env;
pub mod eval;
pub mod functions;
pub mod index_scan;
pub mod regex;
pub mod stream_path;
pub mod value;

pub use env::{DynamicContext, ExecState, Focus, Frame};
pub use eval::{Counters, Evaluator, Flow, RuntimeOptions, Sink};
pub use index_scan::ScanCache;
pub use stream_path::{StreamMatcher, StreamPattern, StreamStats, StreamStep};
pub use value::{effective_boolean_value, serialize_sequence, Item, Sequence};
pub use xqr_parallel::{ParallelConfig, ParallelRun};

use std::sync::Arc;
use xqr_compiler::CompiledQuery;
use xqr_store::Store;
use xqr_xdm::{QueryGuard, Result};

/// One-shot execution of a compiled query (tests and simple embeddings;
/// the engine facade in `xqr-core` adds streaming serialization and
/// explain output on top). The guard is built from `options.limits`, so
/// budgets and deadlines apply here too.
pub fn execute(
    query: &CompiledQuery,
    store: &Arc<Store>,
    dyn_ctx: &DynamicContext,
    options: RuntimeOptions,
) -> Result<(Sequence, Counters)> {
    let guard = QueryGuard::new(options.limits);
    execute_guarded(query, store, dyn_ctx, options, guard)
}

/// [`execute`] with a caller-supplied guard — how the engine facade
/// shares one guard (and its [`xqr_xdm::CancelHandle`]) across parsing,
/// evaluation and serialization.
pub fn execute_guarded(
    query: &CompiledQuery,
    store: &Arc<Store>,
    dyn_ctx: &DynamicContext,
    options: RuntimeOptions,
    guard: QueryGuard,
) -> Result<(Sequence, Counters)> {
    let ev = Evaluator::new(&query.module, dyn_ctx).with_options(options);
    let mut st = ExecState::with_guard(store.clone(), query.module.var_count, guard);
    let result = ev.eval_module(&mut st);
    ev.counters.record_guard_usage(&st.guard.usage());
    // On success the constructed-document ledger transfers to the
    // caller (the result references those documents); on error — or a
    // panic unwinding past us — `ExecState::drop` frees the leftovers.
    let items = result?;
    let mut counters = ev.counters;
    counters.constructed_docs = st.take_constructed_docs();
    Ok((items, counters))
}

#[cfg(test)]
mod eval_tests;
