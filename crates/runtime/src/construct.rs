//! Node construction — the side-effecting operation of XQuery.
//!
//! Every constructor evaluation creates a fresh document in the store,
//! giving constructed nodes new identities; enclosed node items are
//! deep-copied ("XML does not allow cut and paste", as the talk's LET-
//! folding slide puts it). Content assembly follows the spec: attribute
//! items must precede everything else, adjacent atomic values join with
//! a single space into one text node.

use crate::value::Item;
use std::sync::Arc;
use xqr_store::{Document, DocumentBuilder, NodeId, NodeRef, Store};
use xqr_xdm::{Error, ErrorCode, NodeKind, QName, Result};

/// Build a new element; returns the element node.
pub fn build_element(
    store: &Arc<Store>,
    name: &QName,
    namespaces: &[(Option<String>, String)],
    content: &[Item],
) -> Result<NodeRef> {
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    write_element(&mut b, store, name, namespaces, content)?;
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(1)))
}

/// Build a standalone attribute node.
pub fn build_attribute(store: &Arc<Store>, name: &QName, value: &str) -> Result<NodeRef> {
    if name.local_name() == "xmlns" {
        return Err(Error::new(
            ErrorCode::InvalidConstructor,
            "cannot construct an attribute named xmlns",
        ));
    }
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    b.attribute(name, value);
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(1)))
}

/// Build a text node. Empty content yields `None` (the constructor's
/// result is the empty sequence).
pub fn build_text(store: &Arc<Store>, content: &str) -> Result<NodeRef> {
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    b.text(content);
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(1)))
}

pub fn build_comment(store: &Arc<Store>, content: &str) -> Result<NodeRef> {
    if content.contains("--") || content.ends_with('-') {
        return Err(Error::new(
            ErrorCode::InvalidConstructor,
            "comment content must not contain '--' or end with '-'",
        ));
    }
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    b.comment(content);
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(1)))
}

pub fn build_pi(store: &Arc<Store>, target: &str, content: &str) -> Result<NodeRef> {
    if target.eq_ignore_ascii_case("xml") {
        return Err(Error::new(
            ErrorCode::InvalidConstructor,
            "PI target 'xml' is reserved",
        ));
    }
    if content.contains("?>") {
        return Err(Error::new(
            ErrorCode::InvalidConstructor,
            "PI content must not contain '?>'",
        ));
    }
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    b.pi(target, content);
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(1)))
}

/// Build a document node from content items.
pub fn build_document(store: &Arc<Store>, content: &[Item]) -> Result<NodeRef> {
    let mut b = DocumentBuilder::new(store.names().clone());
    b.start_document();
    write_content(&mut b, store, content, /*allow_attributes=*/ false)?;
    b.end();
    let doc = b.finish()?;
    let id = store.add_document(doc);
    Ok(NodeRef::new(id, NodeId(0)))
}

fn write_element(
    b: &mut DocumentBuilder,
    store: &Arc<Store>,
    name: &QName,
    namespaces: &[(Option<String>, String)],
    content: &[Item],
) -> Result<()> {
    b.start_element(name);
    for (prefix, uri) in namespaces {
        b.namespace(prefix.as_deref().unwrap_or(""), uri);
    }
    // Attribute phase.
    let mut idx = 0;
    let mut seen: Vec<QName> = Vec::new();
    while idx < content.len() {
        match &content[idx] {
            Item::Node(n) if node_kind(store, *n) == NodeKind::Attribute => {
                let doc = store.doc_of(*n);
                let aname = doc.name(n.node).expect("attributes are named");
                if seen.contains(&aname) {
                    return Err(Error::new(
                        ErrorCode::DuplicateAttribute,
                        format!("duplicate attribute {aname}"),
                    ));
                }
                b.attribute(&aname, doc.value(n.node).unwrap_or(""));
                seen.push(aname);
                idx += 1;
            }
            _ => break,
        }
    }
    // Child phase: no attributes allowed from here on.
    write_content_from(b, store, &content[idx..], false)?;
    b.end();
    Ok(())
}

fn write_content(
    b: &mut DocumentBuilder,
    store: &Arc<Store>,
    content: &[Item],
    allow_attributes: bool,
) -> Result<()> {
    write_content_from(b, store, content, allow_attributes)
}

fn write_content_from(
    b: &mut DocumentBuilder,
    store: &Arc<Store>,
    content: &[Item],
    allow_attributes: bool,
) -> Result<()> {
    let mut atom_run: Option<String> = None;
    for item in content {
        match item {
            Item::Atomic(v) => {
                let s = v.string_value();
                match atom_run.as_mut() {
                    Some(run) => {
                        run.push(' ');
                        run.push_str(&s);
                    }
                    None => atom_run = Some(s),
                }
            }
            Item::Node(n) => {
                if let Some(run) = atom_run.take() {
                    if !run.is_empty() {
                        b.text(&run);
                    }
                }
                if !allow_attributes && node_kind(store, *n) == NodeKind::Attribute {
                    return Err(Error::new(
                        ErrorCode::InvalidConstructor,
                        "attribute node follows non-attribute content",
                    ));
                }
                copy_node(b, store, *n)?;
            }
        }
    }
    if let Some(run) = atom_run {
        if !run.is_empty() {
            b.text(&run);
        }
    }
    Ok(())
}

/// Deep-copy a node (and its subtree) into the builder.
pub fn copy_node(b: &mut DocumentBuilder, store: &Arc<Store>, n: NodeRef) -> Result<()> {
    let doc = store.doc_of(n);
    copy_from_doc(b, &doc, n.node)
}

fn copy_from_doc(b: &mut DocumentBuilder, doc: &Document, n: NodeId) -> Result<()> {
    match doc.kind(n) {
        NodeKind::Document => {
            let mut c = doc.first_child(n);
            while let Some(ch) = c {
                copy_from_doc(b, doc, ch)?;
                c = doc.next_sibling(ch);
            }
        }
        NodeKind::Element => {
            let name = doc.name(n).expect("elements are named");
            b.start_element(&name);
            for ns in doc.namespaces(n) {
                let prefix = doc
                    .name(ns)
                    .map(|q| q.local_name().to_string())
                    .unwrap_or_default();
                b.namespace(&prefix, doc.value(ns).unwrap_or(""));
            }
            for a in doc.attributes(n) {
                b.attribute(
                    &doc.name(a).expect("attrs named"),
                    doc.value(a).unwrap_or(""),
                );
            }
            let mut c = doc.first_child(n);
            while let Some(ch) = c {
                copy_from_doc(b, doc, ch)?;
                c = doc.next_sibling(ch);
            }
            b.end();
        }
        NodeKind::Text => b.text(doc.value(n).unwrap_or("")),
        NodeKind::Comment => b.comment(doc.value(n).unwrap_or("")),
        NodeKind::ProcessingInstruction => {
            let target = doc
                .name(n)
                .map(|q| q.local_name().to_string())
                .unwrap_or_default();
            b.pi(&target, doc.value(n).unwrap_or(""));
        }
        NodeKind::Attribute => {
            b.attribute(
                &doc.name(n).expect("attrs named"),
                doc.value(n).unwrap_or(""),
            );
        }
        NodeKind::Namespace => {
            let prefix = doc
                .name(n)
                .map(|q| q.local_name().to_string())
                .unwrap_or_default();
            b.namespace(&prefix, doc.value(n).unwrap_or(""));
        }
    }
    Ok(())
}

fn node_kind(store: &Arc<Store>, n: NodeRef) -> NodeKind {
    store.doc_of(n).kind(n.node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serialize(store: &Arc<Store>, n: NodeRef) -> String {
        store.doc_of(n).serialize_node(n.node)
    }

    #[test]
    fn element_with_text_content() {
        let store = Store::new();
        let el = build_element(
            &store,
            &QName::local("a"),
            &[],
            &[Item::integer(1), Item::integer(2)],
        )
        .unwrap();
        assert_eq!(serialize(&store, el), "<a>1 2</a>");
    }

    #[test]
    fn attributes_then_children() {
        let store = Store::new();
        let attr = build_attribute(&store, &QName::local("x"), "1").unwrap();
        let child = build_element(&store, &QName::local("b"), &[], &[]).unwrap();
        let el = build_element(
            &store,
            &QName::local("a"),
            &[],
            &[Item::Node(attr), Item::Node(child)],
        )
        .unwrap();
        assert_eq!(serialize(&store, el), r#"<a x="1"><b/></a>"#);
    }

    #[test]
    fn attribute_after_content_is_an_error() {
        let store = Store::new();
        let attr = build_attribute(&store, &QName::local("x"), "1").unwrap();
        let e = build_element(
            &store,
            &QName::local("a"),
            &[],
            &[Item::string("text"), Item::Node(attr)],
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidConstructor);
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let store = Store::new();
        let a1 = build_attribute(&store, &QName::local("x"), "1").unwrap();
        let a2 = build_attribute(&store, &QName::local("x"), "2").unwrap();
        let e = build_element(
            &store,
            &QName::local("a"),
            &[],
            &[Item::Node(a1), Item::Node(a2)],
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::DuplicateAttribute);
    }

    #[test]
    fn copied_nodes_get_new_identity() {
        let store = Store::new();
        let d = store.load_xml("<src><b>x</b></src>", None).unwrap();
        let doc = store.document(d);
        let src = doc.first_child(doc.root()).unwrap();
        let b_node = doc.first_child(src).unwrap();
        let copied = build_element(
            &store,
            &QName::local("out"),
            &[],
            &[Item::Node(NodeRef::new(d, b_node))],
        )
        .unwrap();
        assert_eq!(serialize(&store, copied), "<out><b>x</b></out>");
        // New document id → new identity.
        assert_ne!(copied.doc, d);
    }

    #[test]
    fn document_copy_expands_children() {
        let store = Store::new();
        let d = store.load_xml("<r><a/></r>", None).unwrap();
        let el = build_element(
            &store,
            &QName::local("wrap"),
            &[],
            &[Item::Node(NodeRef::new(d, NodeId(0)))],
        )
        .unwrap();
        assert_eq!(serialize(&store, el), "<wrap><r><a/></r></wrap>");
    }

    #[test]
    fn comment_and_pi_validation() {
        let store = Store::new();
        assert!(build_comment(&store, "ok comment").is_ok());
        assert!(build_comment(&store, "bad -- comment").is_err());
        assert!(build_comment(&store, "ends with -").is_err());
        assert!(build_pi(&store, "xml", "x").is_err());
        assert!(build_pi(&store, "t", "has ?> inside").is_err());
        assert!(build_pi(&store, "t", "fine").is_ok());
    }

    #[test]
    fn namespaces_on_constructed_element() {
        let store = Store::new();
        let el = build_element(
            &store,
            &QName::prefixed("urn:p", "p", "a"),
            &[(Some("p".to_string()), "urn:p".to_string())],
            &[],
        )
        .unwrap();
        assert_eq!(serialize(&store, el), r#"<p:a xmlns:p="urn:p"/>"#);
    }

    #[test]
    fn standalone_text_node() {
        let store = Store::new();
        let t = build_text(&store, "hello").unwrap();
        let doc = store.doc_of(t);
        assert_eq!(doc.kind(t.node), NodeKind::Text);
        assert_eq!(doc.string_value(t.node), "hello");
    }
}
