//! The three comparison families from the talk's comparison table:
//! value comparisons (`eq`…), general comparisons (`=`… with
//! "existential quantification + automatic type coercion"), and node
//! comparisons (`is`, `<<`, `>>`).

use crate::value::{atomize_one, Item};
use std::cmp::Ordering;
use xqr_store::Store;
use xqr_xdm::{AtomicType, AtomicValue, Error, Result, TzOffset};
use xqr_xqparser::ast::CompOp;

fn ordering_satisfies(op: CompOp, ord: Ordering) -> bool {
    match op {
        CompOp::ValEq | CompOp::GenEq => ord.is_eq(),
        CompOp::ValNe | CompOp::GenNe => !ord.is_eq(),
        CompOp::ValLt | CompOp::GenLt => ord.is_lt(),
        CompOp::ValLe | CompOp::GenLe => ord.is_le(),
        CompOp::ValGt | CompOp::GenGt => ord.is_gt(),
        CompOp::ValGe | CompOp::GenGe => ord.is_ge(),
        _ => unreachable!("node ops handled separately"),
    }
}

/// Value comparison: empty-preserving, singletons only.
pub fn value_compare(
    op: CompOp,
    lhs: &[Item],
    rhs: &[Item],
    store: &Store,
    tz: TzOffset,
) -> Result<Option<bool>> {
    let a = match atomize_one(lhs, store, op.symbol())? {
        Some(v) => v,
        None => return Ok(None),
    };
    let b = match atomize_one(rhs, store, op.symbol())? {
        Some(v) => v,
        None => return Ok(None),
    };
    match a.value_compare(&b, tz)? {
        Some(ord) => Ok(Some(ordering_satisfies(op, ord))),
        None => Ok(Some(matches!(op, CompOp::ValNe))), // NaN: only ne is true
    }
}

/// Coerce an untyped operand against the other operand's type, per the
/// general-comparison rules: vs numeric → double; vs untyped/string →
/// string; otherwise cast to the other type.
fn coerce_pair(a: &AtomicValue, b: &AtomicValue) -> Result<(AtomicValue, AtomicValue)> {
    use AtomicType as T;
    let coerce = |u: &AtomicValue, other: &AtomicValue| -> Result<AtomicValue> {
        match other.type_of() {
            t if t.is_numeric() => u.cast_to(T::Double),
            T::UntypedAtomic | T::String => Ok(AtomicValue::string(u.string_value().as_str())),
            t => u.cast_to(t),
        }
    };
    match (
        matches!(a, AtomicValue::UntypedAtomic(_)),
        matches!(b, AtomicValue::UntypedAtomic(_)),
    ) {
        (true, false) => Ok((coerce(a, b)?, b.clone())),
        (false, true) => Ok((a.clone(), coerce(b, a)?)),
        (true, true) => Ok((
            AtomicValue::string(a.string_value().as_str()),
            AtomicValue::string(b.string_value().as_str()),
        )),
        (false, false) => Ok((a.clone(), b.clone())),
    }
}

/// General comparison: true iff some pair of atomized values satisfies
/// the comparison after coercion.
pub fn general_compare(
    op: CompOp,
    lhs: &[Item],
    rhs: &[Item],
    store: &Store,
    tz: TzOffset,
) -> Result<bool> {
    // Atomize lazily on the left, eagerly once on the right.
    let rhs_vals: Vec<AtomicValue> = rhs
        .iter()
        .map(|i| i.typed_value(store))
        .collect::<Result<_>>()?;
    for li in lhs {
        let a = li.typed_value(store)?;
        for b in &rhs_vals {
            let (ca, cb) = coerce_pair(&a, b)?;
            if let Some(ord) = ca.value_compare(&cb, tz)? {
                if ordering_satisfies(op, ord) {
                    return Ok(true);
                }
            } else if matches!(op, CompOp::GenNe) {
                // NaN != anything.
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Node comparisons: `is`, `<<`, `>>`. Empty-preserving; operands must
/// be single nodes.
pub fn node_compare(op: CompOp, lhs: &[Item], rhs: &[Item]) -> Result<Option<bool>> {
    let one_node = |items: &[Item]| -> Result<Option<xqr_store::NodeRef>> {
        match items {
            [] => Ok(None),
            [Item::Node(n)] => Ok(Some(*n)),
            _ => Err(Error::type_error(format!(
                "operator {} requires single nodes",
                op.symbol()
            ))),
        }
    };
    let a = match one_node(lhs)? {
        Some(n) => n,
        None => return Ok(None),
    };
    let b = match one_node(rhs)? {
        Some(n) => n,
        None => return Ok(None),
    };
    Ok(Some(match op {
        CompOp::Is => a == b,
        CompOp::Before => a < b,
        CompOp::After => a > b,
        _ => unreachable!("value/general ops handled separately"),
    }))
}

#[cfg(test)]
// `&[x.clone()]` reads as "a one-item operand sequence" in these tests;
// `slice::from_ref` would obscure that.
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_store::NodeRef;

    fn store() -> Arc<Store> {
        Store::new()
    }

    fn int(i: i64) -> Item {
        Item::integer(i)
    }

    fn untyped(s: &str) -> Item {
        Item::Atomic(AtomicValue::untyped(s))
    }

    #[test]
    fn general_comparison_is_existential() {
        let s = store();
        // (1,2) = (2,3) → true (the talk's example)
        assert!(
            general_compare(CompOp::GenEq, &[int(1), int(2)], &[int(2), int(3)], &s, 0).unwrap()
        );
        // (1,3) = (1,2) and also != — not transitive, famously.
        assert!(general_compare(CompOp::GenNe, &[int(1), int(2)], &[int(1)], &s, 0).unwrap());
        assert!(general_compare(CompOp::GenEq, &[int(1), int(2)], &[int(1)], &s, 0).unwrap());
        // empty vs anything → false
        assert!(!general_compare(CompOp::GenEq, &[], &[int(1)], &s, 0).unwrap());
    }

    #[test]
    fn general_comparison_coerces_untyped_to_number() {
        let s = store();
        // <a>42</a> = 42 → true (untyped coerced to double)
        assert!(general_compare(CompOp::GenEq, &[untyped("42")], &[int(42)], &s, 0).unwrap());
        assert!(general_compare(
            CompOp::GenEq,
            &[untyped("42")],
            &[Item::Atomic(AtomicValue::Double(42.0))],
            &s,
            0
        )
        .unwrap());
        // <a>baz</a> = 42 → type error (cast fails)
        assert!(general_compare(CompOp::GenEq, &[untyped("baz")], &[int(42)], &s, 0).is_err());
        // untyped vs string: string comparison
        assert!(general_compare(
            CompOp::GenEq,
            &[untyped("42")],
            &[Item::string("42")],
            &s,
            0
        )
        .unwrap());
    }

    #[test]
    fn value_comparison_empty_preserving() {
        let s = store();
        assert_eq!(
            value_compare(CompOp::ValEq, &[], &[int(42)], &s, 0).unwrap(),
            None
        );
        assert_eq!(
            value_compare(CompOp::ValEq, &[int(42)], &[int(42)], &s, 0).unwrap(),
            Some(true)
        );
        assert!(value_compare(CompOp::ValEq, &[int(1), int(2)], &[int(1)], &s, 0).is_err());
    }

    #[test]
    fn value_comparison_nan() {
        let s = store();
        let nan = Item::Atomic(AtomicValue::Double(f64::NAN));
        assert_eq!(
            value_compare(CompOp::ValEq, &[nan.clone()], &[nan.clone()], &s, 0).unwrap(),
            Some(false)
        );
        assert_eq!(
            value_compare(CompOp::ValNe, &[nan.clone()], &[nan], &s, 0).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn node_comparisons() {
        let s = store();
        let d = s.load_xml("<a><b/><c/></a>", None).unwrap();
        let doc = s.document(d);
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        let c = doc.next_sibling(b).unwrap();
        let nb = Item::Node(NodeRef::new(d, b));
        let nc = Item::Node(NodeRef::new(d, c));
        assert_eq!(
            node_compare(CompOp::Is, &[nb.clone()], &[nb.clone()]).unwrap(),
            Some(true)
        );
        assert_eq!(
            node_compare(CompOp::Is, &[nb.clone()], &[nc.clone()]).unwrap(),
            Some(false)
        );
        assert_eq!(
            node_compare(CompOp::Before, &[nb.clone()], &[nc.clone()]).unwrap(),
            Some(true)
        );
        assert_eq!(
            node_compare(CompOp::After, &[nc], &[nb.clone()]).unwrap(),
            Some(true)
        );
        assert_eq!(node_compare(CompOp::Is, &[], &[nb.clone()]).unwrap(), None);
        assert!(node_compare(CompOp::Is, &[int(1)], &[nb]).is_err());
    }
}
